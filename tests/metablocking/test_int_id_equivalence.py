"""Equivalence: the int-id fast path == the retained string reference path.

The fast path must be *bit-identical*, not approximately equal: pruning
schemes compare weights against thresholds and each other, so even a
last-ulp drift could flip a survivor.  Every weighting scheme and every
pruning scheme is exercised on both a clean-clean (center synthetic) and
a dirty workload.
"""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import PRUNERS, make_pruner
from repro.metablocking.weighting import SCHEMES, make_scheme


def _build_blocks(kb1, kb2=None):
    blocks = TokenBlocking().build(kb1, kb2)
    blocks = BlockPurging().process(blocks)
    return BlockFiltering().process(blocks)


@pytest.fixture(scope="module")
def center_blocks(center_dataset):
    return _build_blocks(center_dataset.kb1, center_dataset.kb2)


@pytest.fixture(scope="module")
def dirty_blocks(dirty_dataset):
    collection, _ = dirty_dataset
    return _build_blocks(collection)


def _graph_pair(blocks, scheme_name):
    fast = BlockingGraph(blocks, make_scheme(scheme_name), fast_path=True)
    slow = BlockingGraph(blocks, make_scheme(scheme_name), fast_path=False)
    return fast, slow


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestWeightEquivalence:
    def test_center_weights_bit_identical(self, center_blocks, scheme_name):
        fast, slow = _graph_pair(center_blocks, scheme_name)
        assert fast.materialize() == slow.materialize()

    def test_dirty_weights_bit_identical(self, dirty_blocks, scheme_name):
        fast, slow = _graph_pair(dirty_blocks, scheme_name)
        assert fast.materialize() == slow.materialize()

    def test_edge_iteration_order_identical(self, center_blocks, scheme_name):
        fast, slow = _graph_pair(center_blocks, scheme_name)
        # Same insertion order too: adjacency construction (and thus any
        # float sums over neighbour lists) must agree between the paths.
        assert list(fast.materialize()) == list(slow.materialize())
        assert list(fast.edges()) == list(slow.edges())


@pytest.mark.parametrize("pruner_name", sorted(PRUNERS))
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestPruningEquivalence:
    def test_center_pruned_edges_identical(self, center_blocks, scheme_name, pruner_name):
        fast, slow = _graph_pair(center_blocks, scheme_name)
        pruner = make_pruner(pruner_name)
        assert pruner.prune(fast) == pruner.prune(slow)

    def test_dirty_pruned_edges_identical(self, dirty_blocks, scheme_name, pruner_name):
        fast, slow = _graph_pair(dirty_blocks, scheme_name)
        pruner = make_pruner(pruner_name)
        assert pruner.prune(fast) == pruner.prune(slow)


class TestStatisticsEquivalence:
    def test_packed_statistics_match_reference(self, center_blocks):
        graph = BlockingGraph(center_blocks, make_scheme("CBS"))
        common, arcs = graph._pair_statistics_ids()
        reference = graph._pair_statistics()
        uris = center_blocks.interner().uri_table()
        translated = {}
        for key, count in common.items():
            uri_a, uri_b = uris[key >> 32], uris[key & 0xFFFFFFFF]
            if uri_b < uri_a:
                uri_a, uri_b = uri_b, uri_a
            translated[(uri_a, uri_b)] = (count, arcs[key])
        assert translated == reference

    def test_top_edges_heap_matches_full_ranking(self, center_blocks):
        heap_graph = BlockingGraph(center_blocks, make_scheme("ARCS"))
        sort_graph = BlockingGraph(center_blocks, make_scheme("ARCS"))
        for count in (1, 5, 50, 10**6):
            top = heap_graph.top_edges(count)
            assert top == sort_graph.ranked_edges()[:count]
