"""scheme_defs: the one shared home of the six weighting formulas.

The numpy backbone, the MapReduce reducers and the SQL compiler all
consume :mod:`repro.metablocking.scheme_defs`, so each formula exists in
exactly one place.  Two gates here:

* **kernel consistency** — the scalar kernels agree bit-for-bit with
  their vectorized counterparts and with the raw ``math`` expressions
  they encode;
* **seed regression** — full edge lists on the sample corpora hash to
  the values the pre-refactor implementation produced.  A digest
  mismatch means the refactor changed the *math*, not just the module
  layout.  Regenerate (only after deliberately changing a formula) by
  hashing ``"{left}|{right}|{weight!r}"`` joined with ``";"`` over
  ``BlockingGraph(blocks, scheme).edges()``.
"""

from __future__ import annotations

import hashlib
import math

import pytest

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets.samples import load_movies, load_restaurants
from repro.metablocking import BlockingGraph, make_scheme
from repro.metablocking import scheme_defs
from repro.metablocking.weighting import SCHEMES

np = pytest.importorskip("numpy")

#: sha256-prefix of each scheme's full edge list on the seed
#: implementation (see module docstring for the hashing recipe)
GOLDEN = {
    "movies": {
        "ARCS": "1c1dec567abe4d2b",
        "CBS": "1c1dec567abe4d2b",
        "ECBS": "b5a784f85e968e3a",
        "EJS": "96fa163b73388d6b",
        "JS": "8c7fe75495aab13d",
        "X2": "066cd604e279fc24",
    },
    "restaurants": {
        "ARCS": "5c35829af56fa0d3",
        "CBS": "5c35829af56fa0d3",
        "ECBS": "fe7e5ba5e9132864",
        "EJS": "cdd4d96bff017c51",
        "JS": "8eccd0b5fc601559",
        "X2": "fb15d7c0c140aca1",
    },
}

CORPORA = {"movies": load_movies, "restaurants": load_restaurants}


def edges_digest(blocks, scheme_name):
    edges = list(BlockingGraph(blocks, make_scheme(scheme_name)).edges())
    text = ";".join(f"{e.left}|{e.right}|{e.weight!r}" for e in edges)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@pytest.fixture(scope="module", params=sorted(CORPORA))
def corpus_case(request):
    kb1, kb2, _ = CORPORA[request.param]()
    blocks = BlockFiltering().process(
        BlockPurging().process(TokenBlocking().build(kb1, kb2))
    )
    return request.param, blocks


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_refactored_path_matches_seed_oracle(corpus_case, scheme_name):
    corpus, blocks = corpus_case
    assert edges_digest(blocks, scheme_name) == GOLDEN[corpus][scheme_name], (
        f"{scheme_name} weights on {corpus} diverged from the seed "
        "implementation — the shared formula changed"
    )


class TestKernelConsistency:
    """Scalar kernels == vectorized kernels == the raw expressions."""

    def test_ecbs_log_factor(self):
        for total, count in [(10, 1), (10, 4), (1, 1), (100, 37)]:
            expected = math.log((total + 1) / count)
            assert scheme_defs.ecbs_log_factor(total, count) == expected
        vec = scheme_defs.ecbs_log_factors(10, [1, 4])
        assert list(vec) == [
            scheme_defs.ecbs_log_factor(10, 1),
            scheme_defs.ecbs_log_factor(10, 4),
        ]

    def test_ejs_log_factor_guards_zero_degree(self):
        assert scheme_defs.ejs_log_factor(5, 0) == math.log(6.0)
        assert scheme_defs.ejs_log_factor(5, 3) == math.log(6.0 / 3.0)
        vec = scheme_defs.ejs_log_factors(5, [0, 3])
        assert list(vec) == [
            scheme_defs.ejs_log_factor(5, 0),
            scheme_defs.ejs_log_factor(5, 3),
        ]

    def test_js_scalar_equals_vector(self):
        commons = np.array([2, 1, 3], dtype=np.int64)
        unions = scheme_defs.js_union(
            np.array([4, 2, 3]), np.array([3, 1, 3]), commons
        )
        vec = scheme_defs.js_weights(commons, unions)
        for i in range(len(commons)):
            assert vec[i] == scheme_defs.js_weight(
                int(commons[i]), int(unions[i])
            )

    def test_chi_square_scalar_equals_vector(self):
        common = np.array([2, 1], dtype=np.float64)
        counts_a = np.array([4, 2], dtype=np.float64)
        counts_b = np.array([3, 2], dtype=np.float64)
        vec = scheme_defs.chi_square_weights(common, counts_a, counts_b, 10)
        for i in range(2):
            scalar = scheme_defs.chi_square_statistic(
                float(common[i]), float(counts_a[i]), float(counts_b[i]), 10
            )
            assert vec[i] == scalar

    def test_sql_exprs_cover_every_scheme(self):
        assert set(scheme_defs.SQL_WEIGHT_EXPRS) == {
            "CBS",
            "ECBS",
            "JS",
            "EJS",
            "ARCS",
            "X2",
        }
        for expr in scheme_defs.SQL_WEIGHT_EXPRS.values():
            # expressions reference the joined tables of the compiler
            assert "ps." in expr or "fa." in expr
