"""Tests for the blocking graph."""

from __future__ import annotations

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.weighting import ARCS, CBS


def blocks() -> BlockCollection:
    return BlockCollection(
        [
            Block("k1", ["a", "b"]),          # 1 comparison: (a,b)
            Block("k2", ["a", "b", "c"]),     # 3 comparisons
            Block("k3", ["c", "d"]),          # 1 comparison
        ]
    )


class TestMaterialization:
    def test_edge_count(self):
        graph = BlockingGraph(blocks(), CBS())
        # Distinct pairs: ab, ac, bc, cd
        assert len(graph) == 4

    def test_cbs_weights(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.weight_of("a", "b") == 2.0  # k1 and k2
        assert graph.weight_of("a", "c") == 1.0
        assert graph.weight_of("c", "d") == 1.0

    def test_arcs_weights(self):
        graph = BlockingGraph(blocks(), ARCS())
        # (a,b): 1/1 + 1/3 ; (c,d): 1/1 ; (a,c): 1/3
        assert graph.weight_of("a", "b") == pytest.approx(1 + 1 / 3)
        assert graph.weight_of("c", "d") == pytest.approx(1.0)
        assert graph.weight_of("a", "c") == pytest.approx(1 / 3)

    def test_absent_edge_weight_zero(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.weight_of("a", "d") == 0.0

    def test_materialize_cached(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.materialize() is graph.materialize()

    def test_edges_deterministic_order(self):
        graph = BlockingGraph(blocks(), CBS())
        pairs = [edge.pair for edge in graph.edges()]
        assert pairs == sorted(pairs)


class TestAccessors:
    def test_nodes(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.nodes() == ["a", "b", "c", "d"]

    def test_adjacency_symmetric(self):
        graph = BlockingGraph(blocks(), CBS())
        adjacency = graph.adjacency()
        assert ("b", 2.0) in adjacency["a"]
        assert ("a", 2.0) in adjacency["b"]

    def test_neighbors_of_isolated(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.neighbors("ghost") == []

    def test_average_and_total_weight(self):
        graph = BlockingGraph(blocks(), CBS())
        assert graph.total_weight() == pytest.approx(2 + 1 + 1 + 1)
        assert graph.average_weight() == pytest.approx(5 / 4)

    def test_empty_graph(self):
        graph = BlockingGraph(BlockCollection(), CBS())
        assert len(graph) == 0
        assert graph.average_weight() == 0.0

    def test_top_edges(self):
        graph = BlockingGraph(blocks(), CBS())
        top = graph.top_edges(1)
        assert len(top) == 1
        assert top[0].pair == ("a", "b")

    def test_top_edges_ties_broken_by_pair(self):
        graph = BlockingGraph(blocks(), CBS())
        top = graph.top_edges(3)
        assert [e.pair for e in top] == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_bipartite_blocks_supported(self):
        bipartite = BlockCollection([Block("k", ["a"], ["x", "y"])])
        graph = BlockingGraph(bipartite, CBS())
        assert len(graph) == 2
        assert graph.weight_of("a", "x") == 1.0
