"""Tests for the edge-weighting schemes."""

from __future__ import annotations

import math

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.weighting import (
    ARCS,
    CBS,
    ECBS,
    EJS,
    JS,
    SCHEMES,
    make_scheme,
)


def blocks() -> BlockCollection:
    return BlockCollection(
        [
            Block("k1", ["a", "b"]),
            Block("k2", ["a", "b", "c"]),
            Block("k3", ["b", "c"]),
            Block("k4", ["d", "e"]),
        ]
    )


def weights_for(scheme) -> dict[tuple[str, str], float]:
    return BlockingGraph(blocks(), scheme).materialize()


class TestCBS:
    def test_counts_common_blocks(self):
        weights = weights_for(CBS())
        assert weights[("a", "b")] == 2.0
        assert weights[("b", "c")] == 2.0
        assert weights[("a", "c")] == 1.0
        assert weights[("d", "e")] == 1.0


class TestECBS:
    def test_discounts_promiscuous_entities(self):
        weights = weights_for(ECBS())
        # d,e appear in exactly one block each -> large IDF factors.
        # b appears in three blocks -> discounted.
        assert weights[("d", "e")] > weights[("a", "c")]

    def test_formula(self):
        weights = weights_for(ECBS())
        total = 4
        expected = 2.0 * math.log((total + 1) / 2) * math.log((total + 1) / 3)
        assert weights[("a", "b")] == pytest.approx(expected)


class TestJS:
    def test_jaccard_of_block_sets(self):
        weights = weights_for(JS())
        # a in {k1,k2}, b in {k1,k2,k3}: common 2, union 3.
        assert weights[("a", "b")] == pytest.approx(2 / 3)
        assert weights[("d", "e")] == pytest.approx(1.0)

    def test_bounded_by_one(self):
        assert all(0.0 <= w <= 1.0 for w in weights_for(JS()).values())


class TestEJS:
    def test_boosts_low_degree_nodes(self):
        weights = weights_for(EJS())
        # (d,e) has JS=1 and both endpoints have degree 1 -> strongest edge.
        assert max(weights, key=weights.get) == ("d", "e")

    def test_zero_js_stays_zero(self):
        scheme = EJS()
        stats = {("x", "y"): (0, 0.0)}
        collection = BlockCollection([Block("k", ["x", "y"])])
        scheme.prepare(collection, stats)
        assert scheme.weight("x", "y", 0, 0.0) == 0.0


class TestARCS:
    def test_small_blocks_count_more(self):
        weights = weights_for(ARCS())
        assert weights[("a", "b")] == pytest.approx(1 / 1 + 1 / 3)
        assert weights[("a", "c")] == pytest.approx(1 / 3)

    def test_selective_evidence_ranks_higher(self):
        weights = weights_for(ARCS())
        assert weights[("d", "e")] > weights[("a", "c")]


class TestChiSquare:
    def test_cooccurring_pair_beats_chance(self):
        from repro.metablocking.weighting import ChiSquare

        weights = weights_for(ChiSquare())
        # (d,e) co-occur in their only block: far above independence.
        assert weights[("d", "e")] > weights[("a", "c")]

    def test_non_negative(self):
        from repro.metablocking.weighting import ChiSquare

        assert all(w >= 0.0 for w in weights_for(ChiSquare()).values())


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(SCHEMES) == {"CBS", "ECBS", "JS", "EJS", "ARCS", "X2"}

    @pytest.mark.parametrize("name", ["CBS", "ecbs", "Js", "EJS", "arcs"])
    def test_make_scheme_case_insensitive(self, name):
        assert make_scheme(name).name == name.upper()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            make_scheme("bogus")

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_weights_non_negative(self, name):
        weights = weights_for(make_scheme(name))
        assert all(w >= 0.0 for w in weights.values())
