"""Tests for the pruning schemes."""

from __future__ import annotations

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import (
    CEP,
    CNP,
    PRUNERS,
    ReciprocalCNP,
    ReciprocalWNP,
    WEP,
    WNP,
    make_pruner,
)
from repro.metablocking.weighting import CBS


def graph() -> BlockingGraph:
    blocks = BlockCollection(
        [
            Block("k1", ["a", "b"]),
            Block("k2", ["a", "b", "c"]),
            Block("k3", ["b", "c"]),
            Block("k4", ["c", "d"]),
        ]
    )
    return BlockingGraph(blocks, CBS())
    # CBS weights: ab=2, bc=2, ac=1, cd=1


class TestWEP:
    def test_keeps_above_average(self):
        survivors = WEP().prune(graph())
        pairs = {edge.pair for edge in survivors}
        # Mean = (2+2+1+1)/4 = 1.5 -> keep ab, bc.
        assert pairs == {("a", "b"), ("b", "c")}

    def test_threshold_factor(self):
        survivors = WEP(threshold_factor=0.1).prune(graph())
        assert len(survivors) == 4

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            WEP(threshold_factor=0.0)

    def test_empty_graph(self):
        empty = BlockingGraph(BlockCollection(), CBS())
        assert WEP().prune(empty) == []


class TestCEP:
    def test_explicit_k(self):
        survivors = CEP(k=2).prune(graph())
        assert [edge.pair for edge in survivors] == [("a", "b"), ("b", "c")]

    def test_default_budget_from_assignments(self):
        g = graph()
        # total assignments = 2+3+2+2 = 9 -> K = 4.
        assert CEP().budget(g) == 4
        assert len(CEP().prune(g)) == 4

    def test_k_larger_than_edges(self):
        survivors = CEP(k=100).prune(graph())
        assert len(survivors) == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CEP(k=0)

    def test_deterministic_order(self):
        survivors = CEP(k=4).prune(graph())
        weights = [edge.weight for edge in survivors]
        assert weights == sorted(weights, reverse=True)


class TestWNP:
    def test_union_semantics(self):
        survivors = WNP().prune(graph())
        pairs = {edge.pair for edge in survivors}
        # Node thresholds: a:1.5, b:5/3, c:4/3, d:1.
        # ab kept by a and b; bc kept by b and c; cd kept by d.
        assert pairs == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_reciprocal_requires_both(self):
        survivors = ReciprocalWNP().prune(graph())
        pairs = {edge.pair for edge in survivors}
        # cd: kept by d (1 >= 1) but not by c (1 < 4/3) -> dropped.
        assert pairs == {("a", "b"), ("b", "c")}

    def test_reciprocal_subset_of_union(self):
        union = {e.pair for e in WNP().prune(graph())}
        reciprocal = {e.pair for e in ReciprocalWNP().prune(graph())}
        assert reciprocal <= union


class TestCNP:
    def test_explicit_k(self):
        survivors = CNP(k=1).prune(graph())
        pairs = {edge.pair for edge in survivors}
        # Each node keeps its single best edge (union semantics):
        # a->ab, b->ab, c->bc, d->cd.
        assert pairs == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_reciprocal_k1(self):
        survivors = ReciprocalCNP(k=1).prune(graph())
        pairs = {edge.pair for edge in survivors}
        assert pairs == {("a", "b")}

    def test_default_budget(self):
        g = graph()
        # assignments=9, entities=4 -> ceil(2.25)-1 = 2.
        assert CNP().node_budget(g) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CNP(k=0)

    def test_reciprocal_subset_of_union(self):
        union = {e.pair for e in CNP(k=2).prune(graph())}
        reciprocal = {e.pair for e in ReciprocalCNP(k=2).prune(graph())}
        assert reciprocal <= union


class TestRegistry:
    def test_all_pruners_registered(self):
        assert set(PRUNERS) == {
            "WEP",
            "CEP",
            "WNP",
            "CNP",
            "ReciprocalWNP",
            "ReciprocalCNP",
        }

    @pytest.mark.parametrize("name", ["wep", "CEP", "wnp", "CnP", "reciprocalwnp"])
    def test_make_pruner_case_insensitive(self, name):
        assert make_pruner(name).name.lower() == name.lower()

    def test_unknown_pruner_rejected(self):
        with pytest.raises(KeyError):
            make_pruner("bogus")

    @pytest.mark.parametrize("name", sorted(PRUNERS))
    def test_pruning_reduces_or_preserves_edges(self, name):
        g = graph()
        survivors = make_pruner(name).prune(g)
        assert len(survivors) <= len(g)

    @pytest.mark.parametrize("name", sorted(PRUNERS))
    def test_survivors_exist_in_graph(self, name):
        g = graph()
        edges = g.materialize()
        for edge in make_pruner(name).prune(g):
            assert edge.pair in edges
            assert edge.weight == edges[edge.pair]
