"""Execute the doctest examples embedded in module docstrings."""

from __future__ import annotations

import doctest
import importlib

import pytest

# Resolved via importlib: package __init__ re-exports can shadow submodule
# attributes (repro.blocking.qgrams names both a module and a function).
MODULE_NAMES = [
    "repro.utils.heap",
    "repro.utils.disjoint_set",
    "repro.utils.text",
    "repro.model.interner",
    "repro.model.namespaces",
    "repro.rdf.graph",
    "repro.blocking.qgrams",
    "repro.matching.clustering",
]
MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_at_least_some_examples_exist():
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert total >= 8
