"""Tests for the Altowim-style progressive relational ER baseline."""

from __future__ import annotations

import pytest

from repro.baselines.altowim import AltowimProgressiveER
from repro.blocking.block import Block, BlockCollection
from repro.core.budget import CostBudget
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def world():
    """Two blocks: one dense with duplicates, one almost empty of them."""
    kb = EntityCollection(
        [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(20)],
        name="kb",
    )
    dense_members = [f"http://e/{i}" for i in range(0, 10)]
    sparse_members = [f"http://e/{i}" for i in range(10, 20)]
    blocks = BlockCollection(
        [Block("dense", dense_members), Block("sparse", sparse_members)]
    )
    # All dense-block pairs match; no sparse pair does.
    gold = GoldStandard.from_pairs(
        [(dense_members[i], dense_members[j]) for i in range(10) for j in range(i + 1, 10)]
    )
    return kb, blocks, gold


class TestConfiguration:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AltowimProgressiveER(window_size=0)

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            AltowimProgressiveER(prior_comparisons=0)


class TestResolution:
    def test_focuses_budget_on_dense_block(self):
        kb, blocks, gold = world()
        resolver = AltowimProgressiveER(window_size=5)
        budget = CostBudget(30)
        result = resolver.run(blocks, OracleMatcher(gold.matches), [kb], budget, gold)
        # 30 comparisons; the dense block holds 45 matches, the sparse
        # block none.  Adaptive windows should spend most budget densely.
        assert result.match_graph.match_count >= 20

    def test_runs_to_completion_without_budget(self):
        kb, blocks, gold = world()
        resolver = AltowimProgressiveER(window_size=10)
        result = resolver.run(blocks, OracleMatcher(gold.matches), [kb], gold=gold)
        assert result.match_graph.match_count == 45
        assert result.curve.final("recall") == 1.0

    def test_budget_respected(self):
        kb, blocks, gold = world()
        result = AltowimProgressiveER().run(
            blocks, OracleMatcher(gold.matches), [kb], CostBudget(10), gold
        )
        assert result.comparisons_executed == 10

    def test_curve_label(self):
        kb, blocks, gold = world()
        result = AltowimProgressiveER().run(
            blocks, OracleMatcher(gold.matches), [kb], CostBudget(5)
        )
        assert result.curve.label == "altowim"

    def test_repeated_pairs_across_blocks_skipped(self):
        kb, _, gold = world()
        overlapping = BlockCollection(
            [
                Block("b1", ["http://e/0", "http://e/1"]),
                Block("b2", ["http://e/0", "http://e/1"]),
            ]
        )
        result = AltowimProgressiveER(window_size=2).run(
            overlapping, OracleMatcher(gold.matches), [kb]
        )
        assert result.comparisons_executed == 1
        assert result.skipped_decided == 1

    def test_beats_block_order_on_skewed_data(self):
        """The headline property of [1]: adaptive block selection finds
        matches faster than scanning blocks in native order."""
        kb, _, _ = world()
        # Sparse block sorts first alphabetically; dense second.
        members_dense = [f"http://e/{i}" for i in range(0, 10)]
        members_sparse = [f"http://e/{i}" for i in range(10, 20)]
        blocks = BlockCollection(
            [Block("aaa_sparse", members_sparse), Block("zzz_dense", members_dense)]
        )
        gold = GoldStandard.from_pairs(
            [
                (members_dense[i], members_dense[j])
                for i in range(10)
                for j in range(i + 1, 10)
            ]
        )
        budget = CostBudget(40)
        adaptive = AltowimProgressiveER(window_size=5).run(
            blocks, OracleMatcher(gold.matches), [kb], budget, gold
        )
        from repro.baselines.ordered import run_ordered

        native_order = [
            pair for block in blocks for pair in block.comparisons()
        ]
        native = run_ordered(
            native_order, OracleMatcher(gold.matches), [kb], budget, gold,
            label="native",
        )
        assert adaptive.curve.auc("recall") > native.curve.auc("recall")
