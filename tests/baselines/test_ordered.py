"""Tests for the order-based baselines."""

from __future__ import annotations

from repro.baselines.ordered import (
    batch_baseline,
    oracle_order_baseline,
    random_order_baseline,
    run_ordered,
)
from repro.core.budget import CostBudget
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def world(n: int = 10):
    kb1 = EntityCollection(
        [EntityDescription(f"http://a/{i}", {"p": [f"v{i}"]}, source="kb1") for i in range(n)],
        name="kb1",
    )
    kb2 = EntityCollection(
        [EntityDescription(f"http://b/{i}", {"q": [f"v{i}"]}, source="kb2") for i in range(n)],
        name="kb2",
    )
    gold = GoldStandard.from_pairs([(f"http://a/{i}", f"http://b/{i}") for i in range(n)])
    edges = [WeightedEdge(f"http://a/{i}", f"http://b/{j}", 1.0) for i in range(n) for j in range(n)]
    return kb1, kb2, gold, edges


class TestRunOrdered:
    def test_executes_in_order(self):
        kb1, kb2, gold, _ = world(3)
        pairs = sorted(gold.matches)
        result = run_ordered(pairs, OracleMatcher(gold.matches), [kb1, kb2], gold=gold)
        assert result.comparisons_executed == 3
        assert result.curve.final("recall") == 1.0

    def test_budget_respected(self):
        kb1, kb2, gold, _ = world(5)
        pairs = sorted(gold.matches)
        result = run_ordered(
            pairs, OracleMatcher(gold.matches), [kb1, kb2],
            budget=CostBudget(2), gold=gold,
        )
        assert result.comparisons_executed == 2

    def test_duplicates_skipped(self):
        kb1, kb2, gold, _ = world(2)
        pairs = sorted(gold.matches) * 3
        result = run_ordered(pairs, OracleMatcher(gold.matches), [kb1, kb2])
        assert result.comparisons_executed == 2
        assert result.skipped_decided == 4

    def test_benefit_counts_matches(self):
        kb1, kb2, gold, edges = world(4)
        pairs = [e.pair for e in edges]
        result = run_ordered(pairs, OracleMatcher(gold.matches), [kb1, kb2])
        assert result.benefit_total == 4.0


class TestRandomOrder:
    def test_deterministic_given_seed(self):
        kb1, kb2, gold, edges = world(5)
        a = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], gold=gold, seed=3)
        b = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], gold=gold, seed=3)
        assert a.curve.comparisons == b.curve.comparisons
        assert a.curve.series["recall"] == b.curve.series["recall"]

    def test_different_seeds_differ(self):
        kb1, kb2, gold, edges = world(6)
        budget = CostBudget(12)
        a = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], budget, gold, seed=1)
        b = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], budget, gold, seed=2)
        assert (
            a.match_graph.matched_pairs() != b.match_graph.matched_pairs()
            or a.curve.series["recall"] != b.curve.series["recall"]
        )

    def test_label(self):
        kb1, kb2, gold, edges = world(3)
        result = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2])
        assert result.curve.label == "random"


class TestOracleOrder:
    def test_matches_found_first(self):
        kb1, kb2, gold, edges = world(6)
        budget = CostBudget(6)  # exactly the number of gold matches
        result = oracle_order_baseline(
            edges, OracleMatcher(gold.matches), [kb1, kb2], gold, budget
        )
        assert result.match_graph.match_count == 6
        assert result.curve.final("recall") == 1.0

    def test_upper_bounds_random(self):
        kb1, kb2, gold, edges = world(8)
        budget = CostBudget(20)
        oracle = oracle_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], gold, budget)
        random_ = random_order_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], budget, gold)
        assert oracle.curve.auc("recall") >= random_.curve.auc("recall")


class TestBatch:
    def test_blocking_order(self):
        kb1, kb2, gold, edges = world(4)
        result = batch_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2], gold=gold)
        assert result.comparisons_executed == 16
        assert result.curve.final("recall") == 1.0

    def test_label(self):
        kb1, kb2, gold, edges = world(2)
        result = batch_baseline(edges, OracleMatcher(gold.matches), [kb1, kb2])
        assert result.curve.label == "batch"
