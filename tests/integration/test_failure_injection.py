"""Failure-injection and edge-case tests across the whole platform.

Every component must degrade predictably on degenerate input: empty KBs,
description sets with no shared evidence, zero budgets, gold standards
referencing unknown URIs, malformed RDF, unicode-heavy values.
"""

from __future__ import annotations

import pytest

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import evaluate_blocks, evaluate_matches
from repro.matching.matcher import OracleMatcher
from repro.matching.similarity import SimilarityIndex
from repro.metablocking import BlockingGraph, make_pruner, make_scheme
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.rdf.ntriples import NTriplesParseError
from repro.rdf.loader import load_collection


def kb(name: str, entries: dict[str, dict[str, list[str]]]) -> EntityCollection:
    return EntityCollection(
        [EntityDescription(uri, attrs, source=name) for uri, attrs in entries.items()],
        name=name,
    )


class TestEmptyInputs:
    def test_empty_collection_through_pipeline(self):
        empty1 = EntityCollection(name="e1")
        empty2 = EntityCollection(name="e2")
        result = MinoanER().resolve(empty1, empty2)
        assert result.matched_pairs() == set()
        assert result.progressive.comparisons_executed == 0

    def test_one_empty_side(self):
        full = kb("kb1", {"http://a/1": {"name": ["alpha"]}})
        result = MinoanER().resolve(full, EntityCollection(name="e2"))
        assert result.matched_pairs() == set()

    def test_empty_blocks_through_metablocking(self):
        from repro.blocking.block import BlockCollection

        graph = BlockingGraph(BlockCollection(), make_scheme("ARCS"))
        for pruner in ("WEP", "CEP", "WNP", "CNP"):
            assert make_pruner(pruner).prune(graph) == []

    def test_empty_gold_evaluation(self):
        quality = evaluate_matches({("a", "b")}, GoldStandard())
        assert quality.recall == 0.0


class TestNoSharedEvidence:
    def test_disjoint_vocabularies_and_tokens(self):
        kb1 = kb("kb1", {"http://a/1": {"p": ["aaa bbb"]}})
        kb2 = kb("kb2", {"http://b/1": {"q": ["ccc ddd"]}})
        result = MinoanER().resolve(kb1, kb2)
        assert result.matched_pairs() == set()

    def test_descriptions_with_no_literals(self):
        kb1 = kb("kb1", {"http://a/1": {"r": ["http://a/2"]}, "http://a/2": {}})
        blocks = TokenBlocking().build(kb1)
        # Only URI tokens remain; no crash, possibly no blocks.
        assert blocks.total_comparisons() >= 0


class TestDegenerateBudgets:
    def test_zero_budget(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["alpha"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["alpha"]}})
        result = MinoanER(budget=CostBudget(0)).resolve(kb1, kb2)
        assert result.progressive.comparisons_executed == 0
        assert result.matched_pairs() == set()

    def test_budget_of_one(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["alpha"]}, "http://a/2": {"name": ["beta"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["alpha"]}, "http://b/2": {"label": ["beta"]}})
        result = MinoanER(budget=CostBudget(1), match_threshold=0.1).resolve(kb1, kb2)
        assert result.progressive.comparisons_executed <= 1


class TestForeignGold:
    def test_gold_with_unknown_uris(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["alpha"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["alpha"]}})
        gold = GoldStandard.from_pairs(
            [("http://a/1", "http://b/1"), ("http://ghost/1", "http://ghost/2")]
        )
        result = MinoanER(match_threshold=0.1).resolve(kb1, kb2, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall <= 0.5  # the ghost pair is unreachable

    def test_blocking_quality_with_foreign_gold(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["alpha"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["alpha"]}})
        gold = GoldStandard.from_pairs([("http://x/1", "http://y/1")])
        blocks = TokenBlocking().build(kb1, kb2)
        quality = evaluate_blocks(blocks, gold, 1, 1)
        assert quality.pairs_completeness == 0.0


class TestMalformedRdf:
    def test_parse_error_carries_position(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text(
            '<http://a/1> <http://p> "ok" .\n'
            "this is not a triple\n"
        )
        with pytest.raises(NTriplesParseError) as excinfo:
            load_collection(str(path))
        assert excinfo.value.line_number == 2

    def test_empty_file_is_empty_collection(self, tmp_path):
        path = tmp_path / "empty.nt"
        path.write_text("")
        assert len(load_collection(str(path))) == 0

    def test_comments_only(self, tmp_path):
        path = tmp_path / "comments.nt"
        path.write_text("# nothing\n# here\n")
        assert len(load_collection(str(path))) == 0


class TestUnicode:
    def test_unicode_values_through_pipeline(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["Μίνωας παλάτι Κνωσός"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["Μίνωας παλάτι Κνωσός"]}})
        gold = GoldStandard.from_pairs([("http://a/1", "http://b/1")])
        result = MinoanER(match_threshold=0.3).resolve(kb1, kb2, gold=gold)
        assert evaluate_matches(result.matched_pairs(), gold).recall == 1.0

    def test_accented_tokens_normalize_together(self):
        kb1 = kb("kb1", {"http://a/1": {"name": ["Café Über"]}})
        kb2 = kb("kb2", {"http://b/1": {"label": ["cafe uber"]}})
        blocks = TokenBlocking().build(kb1, kb2)
        assert ("http://a/1", "http://b/1") in blocks.distinct_comparisons()

    def test_unicode_rdf_round_trip(self, tmp_path):
        from repro.rdf.ntriples import Triple, serialize_ntriples

        path = tmp_path / "u.nt"
        path.write_text(
            serialize_ntriples(
                [Triple("http://a/1", "http://p/name", "日本語 текст ελληνικά", True)]
            ),
            encoding="utf-8",
        )
        collection = load_collection(str(path))
        assert collection["http://a/1"].first("http://p/name").startswith("日本語")


class TestPostProcessingDegenerates:
    def test_purging_all_blocks(self):
        kb1 = kb(
            "kb1",
            {f"http://a/{i}": {"p": ["shared common words"]} for i in range(30)},
        )
        blocks = TokenBlocking().build(kb1)
        purged = BlockPurging(max_cardinality=1).process(blocks)
        # Every block exceeds cardinality 1: all purged; pipeline survives.
        graph = BlockingGraph(purged, make_scheme("ARCS"))
        assert make_pruner("CNP").prune(graph) == []

    def test_filtering_on_empty(self):
        from repro.blocking.block import BlockCollection

        assert len(BlockFiltering().process(BlockCollection())) == 0


class TestMatcherEdgeCases:
    def test_similarity_index_over_empty_collection(self):
        index = SimilarityIndex([EntityCollection(name="e")])
        assert len(index) == 0

    def test_oracle_matcher_with_empty_gold(self):
        oracle = OracleMatcher(set())
        assert not oracle.decide("a", "b").is_match
