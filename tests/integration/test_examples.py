"""Smoke tests: every shipped example must run and print sane output."""

from __future__ import annotations

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "movies_crosskb.py",
    "periphery_payg.py",
    "dirty_dedup.py",
    "instalment_session.py",
    "mapreduce_scaling.py",
    "streaming_serving.py",
    "declarative_pipeline.py",
]


def run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.exists(path), f"example missing: {name}"
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert len(out) > 100, f"{name} produced suspiciously little output"


class TestExampleContent:
    def test_quickstart_reports_quality(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Matching quality" in out
        assert "Resolved pairs" in out

    def test_movies_compares_strategies(self, capsys):
        out = run_example("movies_crosskb.py", capsys)
        assert "static" in out and "dynamic" in out

    def test_periphery_prints_chart_and_summary(self, capsys):
        out = run_example("periphery_payg.py", capsys)
        assert "minoan-dynamic" in out
        assert "Progressive recall" in out

    def test_dedup_reports_bcubed(self, capsys):
        out = run_example("dirty_dedup.py", capsys)
        assert "B3 F1" in out

    def test_session_stops_early(self, capsys):
        out = run_example("instalment_session.py", capsys)
        assert "Instalment-by-instalment" in out
        assert "Remaining frontier" in out

    def test_mapreduce_verifies_equivalence(self, capsys):
        out = run_example("mapreduce_scaling.py", capsys)
        assert "verified identical" in out
        assert "speedup" in out

    def test_declarative_pipeline_proves_backend_equivalence(self, capsys):
        out = run_example("declarative_pipeline.py", capsys)
        assert "One spec, three backends" in out
        assert "backends verified identical" in out
        assert "spec cache key" in out

    def test_spec_movies_json_is_valid_and_current(self):
        """The committed spec JSON must parse, validate and round-trip."""
        from repro.api import PipelineSpec

        path = os.path.join(EXAMPLES_DIR, "spec_movies.json")
        spec = PipelineSpec.load(path)
        assert spec.data is not None and spec.data.sample == "movies"
        assert PipelineSpec.from_json(spec.to_json()) == spec
