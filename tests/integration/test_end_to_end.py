"""Integration tests: the full platform on real-shaped and synthetic corpora.

These tests assert the paper's qualitative claims, end to end:

* the pipeline resolves the sample corpora accurately within small budgets;
* MinoanER's scheduler reaches recall faster than random ordering;
* the update phase recovers matches blocking missed (periphery regime);
* quality-aware benefits steer resolution toward their targeted dimension;
* the MapReduce pipeline and the sequential pipeline agree end to end.
"""

from __future__ import annotations

import pytest

from repro.baselines.ordered import random_order_baseline
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.pipeline import MinoanER
from repro.core.strategies import dynamic_strategy, static_strategy
from repro.evaluation.metrics import evaluate_blocks, evaluate_matches
from repro.matching.matcher import OracleMatcher, ThresholdMatcher
from repro.matching.similarity import SimilarityIndex


class TestSampleCorpora:
    def test_restaurants_full_resolution(self, restaurants):
        kb_a, kb_b, gold = restaurants
        platform = MinoanER(match_threshold=0.35)
        result = platform.resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall >= 0.9
        assert quality.precision >= 0.8

    def test_movies_full_resolution(self, movies):
        kb_a, kb_b, gold = movies
        platform = MinoanER(match_threshold=0.35)
        result = platform.resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.f1 >= 0.85

    def test_budget_cuts_work_not_quality_of_found(self, movies):
        kb_a, kb_b, gold = movies
        tight = MinoanER(budget=CostBudget(20), match_threshold=0.35)
        result = tight.resolve(kb_a, kb_b, gold=gold)
        assert result.progressive.comparisons_executed <= 20
        quality = evaluate_matches(result.matched_pairs(), gold)
        # What the scheduler did execute should be precise.
        assert quality.precision >= 0.8


class TestProgressiveSuperiority:
    def test_scheduler_beats_random_on_synthetic(self, center_dataset):
        dataset = center_dataset
        platform = MinoanER(update_phase=False)
        _, processed = platform.block(dataset.kb1, dataset.kb2)
        edges = platform.meta_block(processed)
        index = SimilarityIndex([dataset.kb1, dataset.kb2])
        matcher = ThresholdMatcher(index, threshold=0.35)
        budget = CostBudget(len(edges) // 2)

        engine = static_strategy(matcher, budget=budget)
        scheduled = engine.run(edges, [dataset.kb1, dataset.kb2], gold=dataset.gold)
        random_ = random_order_baseline(
            edges, matcher, [dataset.kb1, dataset.kb2], budget, dataset.gold
        )
        assert scheduled.curve.auc("recall") > random_.curve.auc("recall")

    def test_update_phase_recovers_periphery_matches(self, periphery_dataset):
        dataset = periphery_dataset
        platform = MinoanER()
        _, processed = platform.block(dataset.kb1, dataset.kb2)
        edges = platform.meta_block(processed)
        collections = [dataset.kb1, dataset.kb2]
        oracle = OracleMatcher(dataset.gold.matches)

        static = static_strategy(oracle).run(edges, collections, gold=dataset.gold)
        dynamic = dynamic_strategy(oracle).run(edges, collections, gold=dataset.gold)
        assert dynamic.match_graph.match_count >= static.match_graph.match_count
        assert dynamic.discovered_pairs > 0


class TestBlockingQualityRegimes:
    def test_center_blocks_high_pc(self, center_dataset):
        dataset = center_dataset
        platform = MinoanER()
        blocks, processed = platform.block(dataset.kb1, dataset.kb2)
        quality = evaluate_blocks(
            processed, dataset.gold, len(dataset.kb1), len(dataset.kb2)
        )
        assert quality.pairs_completeness >= 0.95
        assert quality.reduction_ratio >= 0.5

    def test_periphery_blocks_lose_recall(self, center_dataset, periphery_dataset):
        platform = MinoanER()
        center_blocks, _ = platform.block(center_dataset.kb1, center_dataset.kb2)
        periphery_blocks, _ = platform.block(
            periphery_dataset.kb1, periphery_dataset.kb2
        )
        center_q = evaluate_blocks(
            center_blocks, center_dataset.gold,
            len(center_dataset.kb1), len(center_dataset.kb2),
        )
        periphery_q = evaluate_blocks(
            periphery_blocks, periphery_dataset.gold,
            len(periphery_dataset.kb1), len(periphery_dataset.kb2),
        )
        # The paper's premise: somehow-similar descriptions co-occur in
        # fewer blocks; blocking recall is lower at the periphery.
        assert periphery_q.pairs_quality <= center_q.pairs_quality or (
            periphery_q.pairs_completeness <= center_q.pairs_completeness
        )


class TestMapReduceEndToEnd:
    def test_parallel_pipeline_agrees_with_sequential(self, movies):
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.parallel_blocking import parallel_token_blocking
        from repro.mapreduce.parallel_metablocking import parallel_metablocking
        from repro.metablocking.graph import BlockingGraph

        kb_a, kb_b, gold = movies
        platform = MinoanER()

        seq_blocks, seq_processed = platform.block(kb_a, kb_b)
        seq_edges = platform.meta_block(seq_processed)

        engine = MapReduceEngine(workers=4)
        par_blocks, _ = parallel_token_blocking(engine, kb_a, kb_b)
        par_processed = platform.purging.process(par_blocks)
        par_processed = platform.filtering.process(par_processed)
        par_edges, _ = parallel_metablocking(
            engine, par_processed, platform.weighting, platform.pruning
        )
        assert {e.pair for e in seq_edges} == {e.pair for e in par_edges}

    def test_simulated_speedup_monotone_on_average(self, center_dataset):
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.parallel_blocking import parallel_token_blocking

        costs = {}
        for workers in (1, 4):
            _, metrics = parallel_token_blocking(
                MapReduceEngine(workers=workers),
                center_dataset.kb1,
                center_dataset.kb2,
            )
            costs[workers] = metrics.critical_path_cost
        assert costs[4] < costs[1]


class TestBenefitSteering:
    @pytest.mark.parametrize(
        "benefit", ["quantity", "entity-coverage", "relationship-completeness"]
    )
    def test_each_benefit_resolves_movies(self, movies, benefit):
        kb_a, kb_b, gold = movies
        platform = MinoanER(benefit=benefit, match_threshold=0.35)
        result = platform.resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall >= 0.8

    def test_entity_coverage_prefers_new_entities(self, center_dataset):
        """Under a tight budget, entity-coverage scheduling must cover at
        least as many distinct entities as quantity scheduling."""
        dataset = center_dataset
        platform = MinoanER(update_phase=False)
        _, processed = platform.block(dataset.kb1, dataset.kb2)
        edges = platform.meta_block(processed)
        oracle = OracleMatcher(dataset.gold.matches)
        budget = CostBudget(60)

        def covered_entities(benefit_name: str) -> int:
            from repro.core.benefit import make_benefit

            engine = ProgressiveER(
                matcher=oracle, budget=budget, benefit=make_benefit(benefit_name)
            )
            result = engine.run(edges, [dataset.kb1, dataset.kb2])
            return len(result.match_graph.clusters())

        assert covered_entities("entity-coverage") >= covered_entities("quantity")
