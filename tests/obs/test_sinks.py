"""Sinks and text formats: JSONL round-trip, schema validation, exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    ManualClock,
    MetricsRegistry,
    RingBufferSink,
    Span,
    TraceSchemaError,
    Tracer,
    load_trace,
    parse_metrics_text,
    prometheus_text,
    span_from_dict,
    span_to_dict,
    validate_span_dict,
)


def _sample_span(**overrides) -> Span:
    base = dict(
        span_id=3, parent_id=1, name="stream.query",
        start_s=0.125, duration_s=0.0625, attrs={"source": "kb1"},
    )
    base.update(overrides)
    return Span(**base)


class TestJsonlRoundTrip:
    def test_span_dict_round_trips_bit_identically(self):
        span = _sample_span()
        document = json.loads(json.dumps(span_to_dict(span)))
        assert span_from_dict(document) == span

    def test_jsonl_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(clock=ManualClock(step=0.25))
        tracer.add_sink(sink)
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        sink.close()
        spans = load_trace(path)
        assert [span.name for span in spans] == ["inner", "outer"]
        assert spans[0].parent_id == spans[1].span_id
        assert spans[1].attrs == {"k": 1}
        # Floats survive the round trip exactly (repr-based rendering).
        assert spans[0].duration_s == 0.25

    def test_load_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            load_trace(str(path))

    def test_load_trace_reports_the_offending_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(span_to_dict(_sample_span(parent_id=None)))
        path.write_text(good + "\n" + json.dumps({"span_id": 1}) + "\n")
        with pytest.raises(TraceSchemaError, match=":2:"):
            load_trace(str(path))


class TestSchemaValidation:
    def test_valid_document_passes(self):
        document = span_to_dict(_sample_span())
        assert validate_span_dict(document) is document

    @pytest.mark.parametrize("mutation,needle", [
        ({"span_id": 0}, "span_id"),
        ({"span_id": True}, "span_id"),
        ({"parent_id": 0}, "parent_id"),
        ({"name": ""}, "name"),
        ({"start_s": -1.0}, "start_s"),
        ({"duration_s": "fast"}, "duration_s"),
        ({"attrs": []}, "attrs"),
    ])
    def test_bad_values_are_rejected(self, mutation, needle):
        document = span_to_dict(_sample_span())
        document.update(mutation)
        with pytest.raises(TraceSchemaError, match=needle):
            validate_span_dict(document)

    def test_missing_fields_are_rejected(self):
        document = span_to_dict(_sample_span())
        del document["duration_s"]
        with pytest.raises(TraceSchemaError, match="missing"):
            validate_span_dict(document)

    def test_non_object_is_rejected(self):
        with pytest.raises(TraceSchemaError, match="not an object"):
            validate_span_dict([1, 2])


class TestMemorySinks:
    def test_in_memory_by_name_counts(self):
        sink = InMemorySink()
        for name in ("a", "b", "a"):
            sink.emit(_sample_span(name=name))
        assert sink.by_name() == {"a": 2, "b": 1}
        assert len(sink) == 3
        sink.clear()
        assert list(sink) == []

    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        sink = RingBufferSink(capacity=2)
        for span_id in (1, 2, 3):
            sink.emit(_sample_span(span_id=span_id, parent_id=None))
        assert [span.span_id for span in sink] == [2, 3]
        assert sink.dropped == 1
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestExposition:
    def test_prometheus_text_parse_round_trip_is_exact(self):
        registry = MetricsRegistry()
        registry.counter("repro.stream.insert.count").inc(7)
        registry.gauge("repro.stream.backlog").set(2.5)
        hist = registry.histogram("repro.stream.insert.seconds")
        for value in (0.0004, 0.02, 0.003):
            hist.observe(value)
        text = prometheus_text(registry)
        parsed = parse_metrics_text(text)
        assert parsed["repro.stream.insert.count"]["value"] == 7
        assert parsed["repro.stream.backlog"]["value"] == 2.5
        entry = parsed["repro.stream.insert.seconds"]
        assert entry["count"] == 3
        # repr-rendered floats parse back bit-identically.
        assert entry["sum"] == hist.sum
        assert entry["quantiles"][0.5] == hist.percentile(0.5)
        assert entry["buckets"]["+Inf"] == 3

    def test_histogram_buckets_are_cumulative_in_text(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro.x.seconds", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 5.0):
            hist.observe(value)
        parsed = parse_metrics_text(prometheus_text(registry))
        buckets = parsed["repro.x.seconds"]["buckets"]
        assert buckets["0.01"] == 1
        assert buckets["0.1"] == 2
        assert buckets["+Inf"] == 3

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_metrics_text("") == {}

    def test_suffix_collision_with_other_metric_names(self):
        # A counter literally named *.count must not be mistaken for
        # a histogram's _count sample.
        registry = MetricsRegistry()
        registry.counter("repro.stream.insert.count").inc(3)
        hist = registry.histogram("repro.stream.insert.seconds")
        hist.observe(0.5)
        parsed = parse_metrics_text(prometheus_text(registry))
        assert parsed["repro.stream.insert.count"] == {
            "type": "counter", "value": 3
        }
        assert parsed["repro.stream.insert.seconds"]["count"] == 1
