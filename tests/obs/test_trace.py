"""Tracer: nesting mirrors call structure, deterministic under ManualClock."""

from __future__ import annotations

from repro.obs import InMemorySink, ManualClock, Observability, Tracer


def test_parent_child_nesting_matches_call_structure():
    sink = InMemorySink()
    tracer = Tracer(clock=ManualClock(step=1.0))
    tracer.add_sink(sink)
    with tracer.span("outer"):
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            with tracer.span("leaf"):
                pass
    by_name = {span.name: span for span in sink.spans}
    outer = by_name["outer"]
    assert outer.parent_id is None
    assert by_name["inner.a"].parent_id == outer.span_id
    assert by_name["inner.b"].parent_id == outer.span_id
    assert by_name["leaf"].parent_id == by_name["inner.b"].span_id


def test_children_emit_before_parents():
    sink = InMemorySink()
    tracer = Tracer()
    tracer.add_sink(sink)
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
    assert [span.name for span in sink.spans] == ["child", "parent"]
    assert tracer.span_count == 2


def test_deterministic_trace_under_manual_clock():
    def run_once():
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(start=10.0, step=0.5))
        tracer.add_sink(sink)
        with tracer.span("a", phase=1):
            with tracer.span("b"):
                pass
        tracer.event("c", duration_s=0.25)
        return [
            (s.span_id, s.parent_id, s.name, s.start_s, s.duration_s, s.attrs)
            for s in sink.spans
        ]

    first, second = run_once(), run_once()
    assert first == second
    # ManualClock(start=10, step=0.5): origin=10, a opens at 10.5,
    # b opens at 11 and closes at 11.5, a closes at 12.
    by_name = {row[2]: row for row in first}
    assert by_name["a"][3] == 0.5 and by_name["a"][4] == 1.5
    assert by_name["b"][3] == 1.0 and by_name["b"][4] == 0.5


def test_event_slots_under_the_open_span():
    sink = InMemorySink()
    tracer = Tracer(clock=ManualClock(step=1.0))
    tracer.add_sink(sink)
    with tracer.span("phase") as handle:
        tracer.event("task", duration_s=0.5, worker=2)
    event = sink.spans[0]
    assert event.name == "task"
    assert event.parent_id == handle.span.span_id
    assert event.duration_s == 0.5
    assert event.attrs == {"worker": 2}
    assert event.start_s >= 0.0


def test_span_handle_set_attaches_attributes():
    sink = InMemorySink()
    tracer = Tracer()
    tracer.add_sink(sink)
    with tracer.span("stage", fixed=True) as handle:
        handle.set(entities=7)
    assert sink.spans[0].attrs == {"fixed": True, "entities": 7}


def test_exception_inside_span_still_closes_the_stack():
    sink = InMemorySink()
    tracer = Tracer()
    tracer.add_sink(sink)
    try:
        with tracer.span("outer"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [span.name for span in sink.spans] == ["failing", "outer"]
    with tracer.span("after"):
        pass
    assert sink.spans[-1].parent_id is None


def test_observability_timed_duration_matches_span_and_histogram():
    sink = InMemorySink()
    obs = Observability(clock=ManualClock(step=1.0), sink=sink)
    with obs.timed("op", metric="repro.test.op.seconds") as timer:
        pass
    span = sink.spans[0]
    hist = obs.registry.get("repro.test.op.seconds")
    # One measured dt lands in all three places.
    assert timer.duration_s == span.duration_s == hist.values[0]


def test_metric_only_timer_pushes_no_span():
    sink = InMemorySink()
    obs = Observability(sink=sink)
    with obs.timed(metric="repro.test.seconds") as timer:
        pass
    assert len(sink.spans) == 0
    assert timer.duration_s >= 0.0
    assert obs.registry.get("repro.test.seconds").count == 1


def test_disabled_obs_measures_but_records_nothing():
    from repro.obs import DISABLED

    with DISABLED.timed("anything", metric="repro.x.seconds") as timer:
        sum(range(100))
    assert timer.duration_s > 0.0
    assert DISABLED.span_count == 0
    DISABLED.count("repro.x.count")
    DISABLED.observe("repro.x.seconds", 1.0)
    DISABLED.event("x", 1.0)
    assert len(DISABLED.registry) == 0
    assert DISABLED.metrics_text() == ""
    assert DISABLED.write_metrics() is None
    DISABLED.flush()
    DISABLED.close()
