"""The obs report renderer: tree aggregation + metric tables."""

from __future__ import annotations

import pytest

from repro.obs import (
    InMemorySink,
    ManualClock,
    MetricsRegistry,
    Observability,
    Tracer,
    prometheus_text,
)
from repro.obs.report import build_tree, render_metric_tables, render_report, render_tree


def _trace():
    sink = InMemorySink()
    tracer = Tracer(clock=ManualClock(step=1.0))
    tracer.add_sink(sink)
    with tracer.span("pipeline.run"):
        with tracer.span("pipeline.blocking"):
            pass
        with tracer.span("pipeline.matching"):
            pass
        with tracer.span("pipeline.matching"):
            pass
    return sink.spans


def test_build_tree_aggregates_by_name_path():
    root = build_tree(_trace())
    run = root.children["pipeline.run"]
    assert run.count == 1
    assert set(run.children) == {"pipeline.blocking", "pipeline.matching"}
    assert run.children["pipeline.matching"].count == 2


def test_render_tree_orders_by_total_time():
    text = render_tree(_trace())
    assert "pipeline.run ×1" in text
    # matching (2 spans × 1s) outranks blocking (1 span × 1s)
    assert text.index("pipeline.matching ×2") < text.index("pipeline.blocking ×1")
    assert "%" in text


def test_render_metric_tables_sections():
    registry = MetricsRegistry()
    registry.counter("repro.x.count").inc(4)
    hist = registry.histogram("repro.x.seconds")
    hist.observe(0.002)
    from repro.obs import parse_metrics_text

    text = render_metric_tables(parse_metrics_text(prometheus_text(registry)))
    assert "histograms (ms)" in text
    assert "counters" in text
    assert "repro.x.count" in text
    assert "2.000" in text  # 0.002 s rendered in ms


def test_render_report_end_to_end(tmp_path):
    directory = str(tmp_path)
    obs = Observability(directory=directory, clock=ManualClock(step=0.5))
    with obs.span("pipeline.run"):
        with obs.timed("pipeline.blocking", metric="repro.block.seconds"):
            pass
    obs.close()
    text = render_report(directory)
    assert f"observability report: {directory}" in text
    assert "pipeline.run" in text
    assert "pipeline.blocking" in text
    assert "repro.block.seconds" in text


def test_render_report_without_trace_is_an_error(tmp_path):
    with pytest.raises(FileNotFoundError, match="--trace-dir"):
        render_report(str(tmp_path))


class TestServingSection:
    def _metrics(self):
        from repro.obs import parse_metrics_text
        from repro.serving import ServingStats

        stats = ServingStats()
        registry = MetricsRegistry()
        stats.bind(registry)
        stats._queries.inc(10)
        stats._degraded.inc(1)
        stats._failovers.inc(2)
        stats.time_to_healthy_hist.observe(0.006)
        return parse_metrics_text(prometheus_text(registry))

    def test_absent_without_serving_metrics(self):
        from repro.obs.report import render_serving_section

        registry = MetricsRegistry()
        registry.counter("repro.x.count").inc(1)
        from repro.obs import parse_metrics_text

        metrics = parse_metrics_text(prometheus_text(registry))
        assert render_serving_section(metrics) == ""

    def test_renders_counters_and_time_to_healthy(self):
        from repro.obs.report import render_serving_section

        text = render_serving_section(self._metrics())
        assert "serving tier (fault tolerance)" in text
        assert "queries served" in text
        assert "degraded responses" in text
        assert "failovers" in text
        assert "time-to-healthy mean / p99 (ms)" in text
        assert "6.0" in text
