"""Cross-layer observability: every backend emits stage spans, span
counts match oracle event counts, and telemetry never changes results.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.datasets.samples import load_movies, load_restaurants
from repro.obs import InMemorySink, Observability
from repro.stream import StreamResolver, WorkloadDriver, uniform_workload

SPEC = PipelineSpec.from_dict(
    {
        "weighting": "ARCS",
        "pruning": "CNP",
        "matching": {
            "matcher": {"name": "threshold", "params": {"threshold": 0.35}},
        },
    }
)

PIPELINE_STAGES = (
    "pipeline.blocking",
    "pipeline.purging",
    "pipeline.filtering",
    "pipeline.weighting",
    "pipeline.pruning",
    "pipeline.matching",
    "pipeline.evaluation",
)


def _traced(spec, **execute_kwargs):
    sink = InMemorySink()
    obs = Observability(sink=sink)
    kb1, kb2, gold = load_movies()
    report = Pipeline(spec, obs=obs).execute(kb1, kb2, gold=gold, **execute_kwargs)
    return report, sink


def edge_triples(edges):
    return [(e.left, e.right, e.weight) for e in edges]


class TestEveryBackendEmitsEveryStage:
    def test_sequential(self):
        report, sink = _traced(SPEC)
        counts = sink.by_name()
        assert counts["pipeline.run"] == 1
        for stage in PIPELINE_STAGES:
            assert counts[stage] == 1, stage

    def test_mapreduce(self):
        report, sink = _traced(SPEC.with_backend(kind="mapreduce", workers=2))
        counts = sink.by_name()
        assert counts["pipeline.run"] == 1
        for stage in PIPELINE_STAGES:
            assert counts[stage] == 1, stage
        # The engine's spans nest under the (fused) weighting stage.
        assert counts["mapreduce.job"] >= 1
        for name in ("mapreduce.map", "mapreduce.shuffle", "mapreduce.reduce",
                     "mapreduce.map.task", "mapreduce.reduce.task"):
            assert counts[name] >= 1, name
        by_name = {s.name: s for s in sink.spans}
        weighting = by_name["pipeline.weighting"]
        assert weighting.attrs.get("fused") is True
        assert by_name["mapreduce.job"].parent_id == weighting.span_id

    def test_stream_bridge(self):
        report, sink = _traced(
            SPEC.with_backend(kind="stream", scenario="uniform")
        )
        counts = sink.by_name()
        assert counts["pipeline.run"] == 1
        assert counts["stream.replay"] == 1
        assert counts["stream.query"] >= 1
        for stage in PIPELINE_STAGES:
            assert counts[stage] == 1, stage

    def test_root_span_carries_backend_and_edges(self):
        report, sink = _traced(SPEC)
        root = [s for s in sink.spans if s.name == "pipeline.run"][0]
        assert root.parent_id is None
        assert root.attrs["backend"] == "sequential"
        assert root.attrs["edges"] == len(report.edges)
        # Every stage span is a child of the root.
        by_name = {s.name: s for s in sink.spans}
        for stage in PIPELINE_STAGES:
            assert by_name[stage].parent_id == root.span_id


class TestSpanCountOracle:
    """Span counts equal oracle event counts exactly — no sampling."""

    def test_streaming_replay_counts(self):
        kb1, kb2, _ = load_restaurants()
        events = uniform_workload(kb1, kb2, query_every=4)
        sink = InMemorySink()
        obs = Observability(sink=sink)
        resolver = StreamResolver(
            clean_clean=True, processed_view=True, obs=obs
        )
        stats = WorkloadDriver(resolver).run(events, scenario="uniform")
        counts = sink.by_name()

        assert counts["stream.insert"] == stats.inserts
        assert counts["stream.query"] == stats.queries
        assert counts.get("stream.delete", 0) == stats.deletes
        # Each query emits exactly one span per phase.
        for phase in ("ingest", "candidates", "weigh", "match"):
            assert counts[f"stream.query.{phase}"] == stats.queries, phase
        assert counts.get("stream.query.reconcile", 0) == stats.reconciles
        assert counts.get("stream.view.drain", 0) == resolver.view.drain_count
        # The registry agrees with the sink.
        registry = obs.registry
        assert registry.get("repro.stream.query.ingest.seconds").count == (
            stats.queries
        )

    def test_total_span_count_is_exact(self):
        kb1, kb2, _ = load_restaurants()
        events = uniform_workload(kb1, kb2, query_every=5)
        sink = InMemorySink()
        obs = Observability(sink=sink)
        resolver = StreamResolver(clean_clean=True, obs=obs)
        stats = WorkloadDriver(resolver).run(events)
        # No view: every query is exactly 5 spans, every insert 1.
        expected = stats.inserts + 5 * stats.queries
        assert obs.span_count == expected
        assert len(sink) == expected


class TestTelemetryNeverChangesResults:
    def test_batch_outputs_bit_identical_obs_on_vs_off(self):
        kb1, kb2, gold = load_movies()
        plain = Pipeline(SPEC).execute(kb1, kb2, gold=gold)
        traced, _ = _traced(SPEC)
        assert edge_triples(traced.edges) == edge_triples(plain.edges)
        assert traced.matched_pairs() == plain.matched_pairs()
        assert (
            traced.progressive.comparisons_executed
            == plain.progressive.comparisons_executed
        )

    def test_stream_state_bit_identical_obs_on_vs_off(self):
        from repro.stream.durability import capture_state

        kb1, kb2, _ = load_restaurants()
        events = uniform_workload(kb1, kb2, query_every=4)

        def replay(obs=None):
            resolver = StreamResolver(
                clean_clean=True, processed_view=True, obs=obs
            )
            WorkloadDriver(resolver).run(events)
            return resolver

        plain, traced = replay(), replay(Observability(sink=InMemorySink()))
        assert capture_state(
            plain.store, plain.index, plain.pairs, plain.view, plain.view_pairs
        ) == capture_state(
            traced.store, traced.index, traced.pairs, traced.view,
            traced.view_pairs,
        )


class TestDurabilityTelemetry:
    def test_wal_snapshot_and_recovery_metrics(self, tmp_path):
        from repro.stream.durability import Durability, recover

        kb1, kb2, _ = load_restaurants()
        events = uniform_workload(kb1, kb2, query_every=4)
        sink = InMemorySink()
        obs = Observability(sink=sink)
        resolver = StreamResolver(
            clean_clean=True,
            durability=Durability(str(tmp_path), snapshot_every=10),
            obs=obs,
        )
        WorkloadDriver(resolver).run(events)
        resolver.close()

        registry = obs.registry
        appends = registry.get("repro.durability.wal.append.count")
        assert appends is not None and appends.value == len(events)
        wal_bytes = registry.get("repro.durability.wal.append.bytes")
        assert wal_bytes.value > appends.value  # every record is >1 byte
        assert registry.get("repro.durability.wal.fsync.seconds").count > 0
        snapshots = registry.get("repro.durability.snapshot.count")
        assert snapshots.value >= 1
        assert sink.by_name()["durability.snapshot"] == snapshots.value
        assert (
            registry.get("repro.durability.snapshot.capture.seconds").count
            == snapshots.value
        )

        recovery_sink = InMemorySink()
        recovery_obs = Observability(sink=recovery_sink)
        result = recover(str(tmp_path), obs=recovery_obs)
        recovered_counts = recovery_sink.by_name()
        assert recovered_counts["durability.recover"] == 1
        replayed = recovery_obs.registry.get(
            "repro.durability.recover.replayed.count"
        )
        assert replayed is not None
        assert replayed.value == result.report.replayed_events
        restore = recovery_obs.registry.get(
            "repro.durability.snapshot.restore.seconds"
        )
        assert restore is not None and restore.count == 1


class TestJsonlEndToEnd:
    def test_directory_artifacts_validate_and_render(self, tmp_path):
        from repro.obs import load_trace, parse_metrics_text
        from repro.obs.report import render_report

        directory = str(tmp_path)
        obs = Observability(directory=directory)
        kb1, kb2, gold = load_movies()
        Pipeline(SPEC, obs=obs).execute(kb1, kb2, gold=gold)
        obs.close()

        spans = load_trace(f"{directory}/trace.jsonl")
        assert len(spans) == obs.span_count
        names = {span.name for span in spans}
        assert set(PIPELINE_STAGES) <= names
        with open(f"{directory}/metrics.txt", encoding="utf-8") as handle:
            assert parse_metrics_text(handle.read()) is not None
        text = render_report(directory)
        assert "pipeline.run" in text
