"""Metric primitives: counters, gauges, exact-percentile histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    global_registry,
    set_global_registry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.kind == "counter"

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 4.0
        assert gauge.kind == "gauge"


class TestHistogram:
    def test_exact_percentiles_on_known_inputs(self):
        hist = Histogram()
        for value in (0.005, 0.001, 0.004, 0.002, 0.003):
            hist.observe(value)
        # Nearest-rank over sorted [1,2,3,4,5]ms: index = min(f*5, 4).
        assert hist.percentile(0.50) == 0.003
        assert hist.percentile(0.90) == 0.005
        assert hist.percentile(0.99) == 0.005
        assert hist.p50 == 0.003
        assert hist.percentile(0.0) == 0.001
        assert hist.count == 5
        assert hist.mean == pytest.approx(0.003)

    def test_percentile_identical_to_legacy_rule(self):
        # The exact rule the streaming workload stats always used:
        # index = min(int(fraction * n), n - 1) over the sorted list.
        values = [0.0017 * i for i in range(1, 38)]
        hist = Histogram()
        for value in values:
            hist.observe(value)
        ordered = sorted(values)
        for fraction in (0.5, 0.9, 0.95, 0.99):
            index = min(int(fraction * len(ordered)), len(ordered) - 1)
            assert hist.percentile(fraction) == ordered[index]

    def test_summary_matches_legacy_row_shape(self):
        hist = Histogram()
        assert hist.summary() == {
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0
        }
        for value in (0.2, 0.1, 0.3):
            hist.observe(value)
        summary = hist.summary()
        assert set(summary) == {"mean", "p50", "p95", "p99", "max"}
        assert summary["max"] == 0.3
        assert summary["p50"] == 0.2

    def test_bucket_counts_are_per_bucket_with_inf_slot(self):
        hist = Histogram(buckets=(0.01, 0.1))
        hist.observe(0.005)   # <= 0.01
        hist.observe(0.01)    # boundary lands in the first bucket
        hist.observe(0.05)    # <= 0.1
        hist.observe(5.0)     # +Inf
        assert hist.bounds == (0.01, 0.1)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.sum == pytest.approx(5.065)

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_LATENCY_BUCKETS)) == DEFAULT_LATENCY_BUCKETS


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.test.count")
        counter.inc()
        assert registry.counter("repro.test.count") is counter
        assert registry.get("repro.test.count").value == 1

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.x")
        with pytest.raises(ValueError, match="counter"):
            registry.histogram("repro.test.x")

    def test_register_shares_the_live_object(self):
        registry = MetricsRegistry()
        hist = Histogram()
        registry.register("repro.test.seconds", hist)
        hist.observe(0.25)
        assert registry.get("repro.test.seconds").count == 1
        assert registry.get("repro.test.seconds") is hist

    def test_items_sorted_and_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [name for name, _ in registry.items()] == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry
        registry.reset()
        assert len(registry) == 0

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("x") is NULL_GAUGE
        assert registry.histogram("x") is NULL_HISTOGRAM
        registry.counter("x").inc()
        registry.histogram("x").observe(1.0)
        registry.register("x", Counter())
        assert NULL_COUNTER.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert len(registry) == 0

    def test_global_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_global_registry(fresh)
        try:
            assert global_registry() is fresh
        finally:
            set_global_registry(previous)
        assert global_registry() is previous
