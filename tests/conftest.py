"""Shared fixtures: sample corpora and small synthetic workloads."""

from __future__ import annotations

import pytest

from repro.datasets import (
    SyntheticConfig,
    PERIPHERY_PROFILE,
    load_movies,
    load_restaurants,
    synthesize_dirty,
    synthesize_pair,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running test (out-of-core scale); run in the CI "
        "nightly job, deselect locally with -m 'not slow'",
    )


@pytest.fixture(scope="session")
def movies():
    """The embedded movies corpus: (kb_a, kb_b, gold)."""
    return load_movies()


@pytest.fixture(scope="session")
def restaurants():
    """The embedded restaurants corpus: (kb_a, kb_b, gold)."""
    return load_restaurants()


@pytest.fixture(scope="session")
def center_dataset():
    """A small center-profile synthetic clean-clean workload."""
    return synthesize_pair(SyntheticConfig(entities=120, overlap=0.7, seed=11))


@pytest.fixture(scope="session")
def periphery_dataset():
    """A small periphery-profile synthetic clean-clean workload."""
    return synthesize_pair(
        SyntheticConfig(entities=120, overlap=0.7, seed=11, profile=PERIPHERY_PROFILE)
    )


@pytest.fixture(scope="session")
def dirty_dataset():
    """A small dirty-ER workload: (collection, gold)."""
    return synthesize_dirty(SyntheticConfig(entities=80, seed=5), max_duplicates=3)
