"""The relational backend's bit-identity gate.

Acceptance contract (ISSUE 10): one spec produces identical pruned
edges and match decisions, float-for-float, on ``backend: sql`` versus
the sequential reference — across movies/restaurants/people × all six
weighting schemes × all six pruners.  The sweep loads each corpus into
SQL once and reuses the pair statistics for every scheme/pruner cell,
exactly how the backend amortizes work in production sweeps.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline, PipelineSpec, SpecError
from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets.samples import load_movies, load_people, load_restaurants
from repro.metablocking import BlockingGraph, make_pruner, make_scheme
from repro.metablocking.pruning import PRUNERS
from repro.metablocking.weighting import SCHEMES
from repro.sqlbackend import SqlMetaBlocker, duckdb_available

CORPORA = {
    "movies": load_movies,
    "restaurants": load_restaurants,
    "people": load_people,
}

ENGINES = [
    "sqlite",
    pytest.param(
        "duckdb",
        marks=pytest.mark.skipif(
            not duckdb_available(), reason="duckdb not installed"
        ),
    ),
]


def triples(edges):
    """Exact (left, right, weight) triples — the bit-identity key."""
    return [(e.left, e.right, e.weight) for e in edges]


@pytest.fixture(scope="module", params=sorted(CORPORA))
def corpus_blocks(request):
    kb1, kb2, _ = CORPORA[request.param]()
    raw = TokenBlocking().build(kb1, kb2)
    filtered = BlockFiltering().process(BlockPurging().process(raw))
    return raw, filtered


@pytest.mark.parametrize("engine", ENGINES)
def test_full_sweep_bit_identical(corpus_blocks, engine):
    """All 6 schemes × 6 pruners over one SQL load, float-for-float."""
    raw, filtered = corpus_blocks
    with SqlMetaBlocker(engine=engine) as mb:
        mb.prepare(raw, BlockPurging(), BlockFiltering())
        for scheme_name in sorted(SCHEMES):
            mb.weight(make_scheme(scheme_name))
            for pruner_name in sorted(PRUNERS):
                reference = make_pruner(pruner_name).prune(
                    BlockingGraph(filtered, make_scheme(scheme_name))
                )
                assert triples(mb.prune(make_pruner(pruner_name))) == triples(
                    reference
                ), f"{scheme_name}/{pruner_name} diverged"


class TestSpecLevel:
    """The facade contract: spec JSON in, identical report out."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_matches_sequential_with_decisions(self, engine):
        kb1, kb2, gold = load_movies()
        spec = PipelineSpec.from_dict(
            {
                "weighting": "ARCS",
                "pruning": "CNP",
                "matching": {
                    "matcher": {
                        "name": "threshold",
                        "params": {"threshold": 0.35},
                    },
                },
            }
        )
        # round-trip through JSON: the serialized spec is what runs
        spec = PipelineSpec.from_json(
            spec.with_backend(kind="sql", engine=engine).to_json()
        )
        sequential = Pipeline.run(spec.with_backend(kind="sequential"), kb1, kb2, gold=gold)
        sql = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert triples(sql.edges) == triples(sequential.edges)
        assert sql.matched_pairs() == sequential.matched_pairs()
        seq_decisions = {
            d.pair: d.similarity
            for d in sequential.progressive.match_graph.matches()
        }
        sql_decisions = {
            d.pair: d.similarity for d in sql.progressive.match_graph.matches()
        }
        assert sql_decisions == seq_decisions
        # processed blocks are rebuilt from SQL, identical to python's
        assert [b.key for b in sql.processed_blocks] == [
            b.key for b in sequential.processed_blocks
        ]

    def test_backend_provenance_recorded(self):
        kb1, kb2, gold = load_movies()
        spec = PipelineSpec.from_dict({"backend": "sql"})
        report = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert report.backend["kind"] == "sql"
        assert report.backend["engine"] == "sqlite"
        assert report.backend["db_path"] is None
        assert report.backend["pairs"] > 0
        assert "block_s" in report.phase_seconds
        assert "metablock_s" in report.phase_seconds

    def test_processed_blocks_reused(self):
        kb1, kb2, gold = load_movies()
        raw = TokenBlocking().build(kb1, kb2)
        processed = BlockFiltering().process(BlockPurging().process(raw))
        spec = PipelineSpec.from_dict({"backend": "sql"})
        report = Pipeline(spec).execute(
            kb1, kb2, gold=gold, processed_blocks=processed
        )
        baseline = Pipeline(spec).execute(kb1, kb2, gold=gold)
        assert report.processed_blocks is processed
        assert triples(report.edges) == triples(baseline.edges)

    def test_custom_postprocess_falls_back_to_python(self):
        # a registry operator the compiler cannot express still runs —
        # purging/filtering execute in python, the rest in SQL
        kb1, kb2, gold = load_movies()
        spec = PipelineSpec.from_dict(
            {
                "blocking": {
                    "filtering": {
                        "name": "filtering",
                        "params": {"ratio": 0.6},
                    },
                },
                "backend": "sql",
            }
        )

        class CustomFiltering(BlockFiltering):
            pass

        pipeline = Pipeline(spec)
        pipeline.filtering = CustomFiltering(ratio=0.6)
        report = pipeline.execute(kb1, kb2, gold=gold)
        sequential = Pipeline(spec.with_backend(kind="sequential"))
        sequential.filtering = CustomFiltering(ratio=0.6)
        expected = sequential.execute(kb1, kb2, gold=gold)
        assert triples(report.edges) == triples(expected.edges)

    def test_db_path_round_trips(self, tmp_path):
        kb1, kb2, gold = load_movies()
        db_file = tmp_path / "pipeline.db"
        spec = PipelineSpec.from_dict(
            {"backend": {"kind": "sql", "db_path": str(db_file)}}
        )
        report = Pipeline.run(spec, kb1, kb2, gold=gold)
        memory = Pipeline.run(
            spec.with_backend(db_path=None), kb1, kb2, gold=gold
        )
        assert triples(report.edges) == triples(memory.edges)
        assert db_file.exists()
        assert report.backend["db_path"] == str(db_file)

    def test_unknown_engine_is_spec_error(self):
        with pytest.raises(SpecError, match="sqlite"):
            PipelineSpec.from_dict(
                {"backend": {"kind": "sql", "engine": "postgres"}}
            )

    def test_duckdb_without_package_is_spec_error(self):
        if duckdb_available():
            pytest.skip("duckdb is installed")
        kb1, kb2, gold = load_movies()
        spec = PipelineSpec.from_dict(
            {"backend": {"kind": "sql", "engine": "duckdb"}}
        )
        with pytest.raises(SpecError, match="duckdb"):
            Pipeline.run(spec, kb1, kb2, gold=gold)
