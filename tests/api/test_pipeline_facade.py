"""Pipeline facade: spec-driven runs, cross-backend bit-equivalence.

The facade's contract: a spec-driven run is bit-identical to the direct
construction path it replaces, and the **same** spec produces
bit-identical pruned edges and match decisions on the sequential,
mapreduce, stream and sql backends — on all three sample corpora.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline, PipelineSpec, SpecError
from repro.core.pipeline import MinoanER
from repro.datasets.samples import load_movies, load_people, load_restaurants

THRESHOLD = 0.35

SPEC = PipelineSpec.from_dict(
    {
        "weighting": "ARCS",
        "pruning": "CNP",
        "matching": {
            "matcher": {"name": "threshold", "params": {"threshold": THRESHOLD}},
        },
    }
)

CORPORA = {
    "movies": load_movies,
    "restaurants": load_restaurants,
    "people": load_people,
}


def edge_triples(edges):
    """Exact (left, right, weight) triples — the bit-identity key."""
    return [(e.left, e.right, e.weight) for e in edges]


@pytest.fixture(scope="module")
def corpus(request):
    return CORPORA[request.param]()


class TestSpecEqualsDirectConstruction:
    """The equivalence gate: facade == the constructors it replaces."""

    @pytest.mark.parametrize("corpus", sorted(CORPORA), indirect=True)
    def test_sequential_matches_minoaner(self, corpus):
        kb1, kb2, gold = corpus
        report = Pipeline.run(SPEC, kb1, kb2, gold=gold)
        direct = MinoanER(match_threshold=THRESHOLD).resolve(kb1, kb2, gold=gold)
        assert edge_triples(report.edges) == edge_triples(direct.edges)
        assert report.matched_pairs() == direct.matched_pairs()
        assert (
            report.progressive.comparisons_executed
            == direct.progressive.comparisons_executed
        )

    def test_component_spec_params_reach_components(self):
        kb1, kb2, gold = load_movies()
        spec = PipelineSpec.from_dict(
            {
                "blocking": {
                    "blocker": {"name": "qgrams", "params": {"q": 3}},
                    "filtering": {"name": "filtering", "params": {"ratio": 0.6}},
                },
                "weighting": "ECBS",
                "pruning": "WNP",
            }
        )
        from repro.blocking import BlockFiltering, BlockPurging, QGramsBlocking

        report = Pipeline(spec).execute(kb1, kb2, match=False)
        blocks = QGramsBlocking(q=3).build(kb1, kb2)
        processed = BlockFiltering(ratio=0.6).process(BlockPurging().process(blocks))
        direct = MinoanER(weighting="ECBS", pruning="WNP").meta_block(processed)
        assert edge_triples(report.edges) == edge_triples(direct)


class TestCrossBackendEquivalence:
    """One spec JSON, four backends, bit-identical candidates+decisions."""

    @pytest.mark.parametrize("corpus", sorted(CORPORA), indirect=True)
    def test_backends_bit_identical(self, corpus):
        kb1, kb2, gold = corpus
        # Round-trip through JSON first: the *serialized* spec is what
        # all three backends execute.
        spec = PipelineSpec.from_json(SPEC.to_json())
        sequential = Pipeline.run(spec, kb1, kb2, gold=gold)
        mapreduce = Pipeline.run(
            spec.with_backend(kind="mapreduce", workers=3), kb1, kb2, gold=gold
        )
        stream = Pipeline.run(
            spec.with_backend(kind="stream", scenario="bursty"), kb1, kb2, gold=gold
        )
        sql = Pipeline.run(spec.with_backend(kind="sql"), kb1, kb2, gold=gold)
        assert (
            edge_triples(sequential.edges)
            == edge_triples(mapreduce.edges)
            == edge_triples(stream.edges)
            == edge_triples(sql.edges)
        )
        assert (
            sequential.matched_pairs()
            == mapreduce.matched_pairs()
            == stream.matched_pairs()
            == sql.matched_pairs()
        )
        # Decisions, not just matched pairs: similarity values align too.
        seq_decisions = {
            d.pair: d.similarity for d in sequential.progressive.match_graph.matches()
        }
        stream_decisions = {
            d.pair: d.similarity for d in stream.progressive.match_graph.matches()
        }
        assert seq_decisions == stream_decisions

    def test_backend_provenance_recorded(self):
        kb1, kb2, gold = load_movies()
        spec = SPEC.with_backend(kind="mapreduce", workers=2, executor="serial")
        report = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert report.backend["kind"] == "mapreduce"
        assert report.backend["workers"] == 2
        assert report.backend["shuffle_records"] > 0
        assert report.job_metrics is not None

    def test_stream_replay_statistics_surface(self):
        kb1, kb2, gold = load_movies()
        report = Pipeline.run(
            SPEC.with_backend(kind="stream", scenario="uniform"), kb1, kb2, gold=gold
        )
        assert report.backend["kind"] == "stream"
        assert report.workload is not None
        assert report.workload.inserts == len(kb1) + len(kb2)
        assert report.workload.queries > 0

    def test_stream_replay_only_skips_bridge_and_matching(self):
        kb1, kb2, _ = load_movies()
        spec = SPEC.with_backend(kind="stream")
        report = Pipeline(spec).execute(kb1, kb2, stream_bridge=False)
        assert report.workload is not None
        assert report.edges == []
        assert report.progressive is None
        assert report.blocks is None
        assert "metablock_s" not in report.phase_seconds

    def test_mapreduce_reuses_prebuilt_blocks(self):
        kb1, kb2, _ = load_movies()
        spec = SPEC.with_backend(kind="mapreduce", workers=2)
        pipeline = Pipeline(spec)
        _, processed = pipeline.block(kb1, kb2)
        report = pipeline.execute(kb1, kb2, match=False, processed_blocks=processed)
        assert report.processed_blocks is processed
        direct = Pipeline(spec).execute(kb1, kb2, match=False)
        assert edge_triples(report.edges) == edge_triples(direct.edges)


class TestRunReport:
    def test_report_fields(self):
        kb1, kb2, gold = load_restaurants()
        report = Pipeline.run(SPEC, kb1, kb2, gold=gold)
        assert report.spec_key == SPEC.cache_key()
        assert report.blocks is not None and report.processed_blocks is not None
        assert {"block_s", "metablock_s", "match_s", "evaluate_s"} <= set(
            report.phase_seconds
        )
        assert report.match_quality is not None
        assert report.block_quality is not None
        digest = report.to_dict()
        assert digest["edges"] == len(report.edges)
        assert digest["match_quality"] is not None
        rows = report.summary_rows()
        assert any(row["stage"] == "matches" for row in rows)

    def test_evaluation_spec_disables_metrics(self):
        kb1, kb2, gold = load_restaurants()
        spec = PipelineSpec.from_dict(
            {"evaluation": {"blocks": False, "matches": False}}
        )
        report = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert report.match_quality is None
        assert report.block_quality is None

    def test_oracle_matcher_via_spec(self):
        kb1, kb2, gold = load_restaurants()
        spec = PipelineSpec.from_dict(
            {"matching": {"matcher": "oracle", "update_phase": False}}
        )
        report = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert report.matched_pairs() <= gold.matches

    def test_oracle_matcher_requires_gold(self):
        kb1, kb2, _ = load_restaurants()
        spec = PipelineSpec.from_dict({"matching": {"matcher": "oracle"}})
        with pytest.raises(SpecError):
            Pipeline.run(spec, kb1, kb2)


class TestDataNode:
    def test_spec_resolves_sample_corpus(self):
        spec = PipelineSpec.from_dict(
            {
                "matching": {
                    "matcher": {
                        "name": "threshold",
                        "params": {"threshold": THRESHOLD},
                    }
                },
                "data": "restaurants",
            }
        )
        report = Pipeline.run(spec)
        kb1, kb2, gold = load_restaurants()
        direct = Pipeline.run(spec, kb1, kb2, gold=gold)
        assert edge_triples(report.edges) == edge_triples(direct.edges)
        assert report.match_quality is not None

    def test_spec_resolves_paths(self, tmp_path):
        from repro.datasets.samples import sample_path

        spec = PipelineSpec.from_dict(
            {
                "data": {
                    "kb1": sample_path("movies_a.nt"),
                    "kb2": sample_path("movies_b.nt"),
                    "gold": sample_path("movies_gold.csv"),
                }
            }
        )
        report = Pipeline.run(spec)
        assert len(report.edges) > 0

    def test_missing_data_is_an_error(self):
        with pytest.raises(SpecError):
            Pipeline.run(PipelineSpec())
