"""The component registry: names, introspection, validation, plugins."""

from __future__ import annotations

import pytest

from repro.api import (
    InvalidParamsError,
    Registry,
    UnknownComponentError,
    registry,
)


class TestBuiltinRegistrations:
    """Every component kind the facade promises is populated."""

    def test_kinds_present(self):
        assert {
            "blocker",
            "postprocess",
            "weighting",
            "pruner",
            "matcher",
            "benefit",
            "scenario",
            "corpus",
        } <= set(registry.kinds())

    def test_weighting_names_match_legacy_table(self):
        from repro.metablocking.weighting import SCHEMES

        assert registry.names("weighting") == sorted(SCHEMES)

    def test_pruner_names_match_legacy_table(self):
        from repro.metablocking.pruning import PRUNERS

        assert registry.names("pruner") == sorted(PRUNERS)

    def test_benefit_names_match_legacy_table(self):
        from repro.core.benefit import BENEFITS

        assert registry.names("benefit") == sorted(BENEFITS)

    def test_blockers(self):
        assert registry.names("blocker") == [
            "attribute-clustering",
            "prefix-infix-suffix",
            "qgrams",
            "token",
        ]

    def test_scenarios_and_corpora(self):
        assert registry.names("scenario") == [
            "bursty", "churn", "erasure", "skewed", "uniform",
        ]
        assert registry.names("corpus") == ["movies", "people", "restaurants"]

    def test_every_component_documented(self):
        """Registry-exported components must carry real docstrings."""
        for kind in registry.kinds():
            for name in registry.names(kind):
                info = registry.get(kind, name)
                doc = (info.factory.__doc__ or "").strip()
                assert len(doc) > 15, f"{kind}/{name} lacks a docstring"
                assert info.summary, f"{kind}/{name} has no summary line"


class TestLookup:
    def test_case_insensitive(self):
        assert registry.get("weighting", "arcs").name == "ARCS"
        assert registry.get("pruner", "reciprocalcnp").name == "ReciprocalCNP"

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(UnknownComponentError) as err:
            registry.get("weighting", "bogus")
        message = str(err.value)
        for name in registry.names("weighting"):
            assert name in message

    def test_create_instantiates(self):
        scheme = registry.create("weighting", "ARCS")
        assert scheme.name == "ARCS"
        blocker = registry.create("blocker", "qgrams", {"q": 2})
        assert blocker.q == 2

    def test_create_rejects_unknown_params(self):
        with pytest.raises(InvalidParamsError) as err:
            registry.create("blocker", "qgrams", {"qq": 2})
        assert "qq" in str(err.value)
        assert "q" in str(err.value)

    def test_describe_rows(self):
        rows = registry.describe("pruner")
        assert {row["name"] for row in rows} == set(registry.names("pruner"))
        assert all(row["kind"] == "pruner" for row in rows)
        everything = registry.describe()
        assert len(everything) > len(rows)


class TestPluginRegistration:
    def test_decorator_and_duplicate_rejection(self):
        fresh = Registry()

        @fresh.register("widget", "frob")
        class Frob:
            """A frobnicating widget for the registry test."""

            def __init__(self, level: int = 3) -> None:
                self.level = level

        assert fresh.names("widget") == ["frob"]
        assert fresh.create("widget", "FROB", {"level": 5}).level == 5
        with pytest.raises(ValueError):
            fresh.register("widget", "frob", Frob)

    def test_introspected_params(self):
        info = registry.get("postprocess", "filtering")
        ratio = info.param("ratio")
        assert ratio is not None and ratio.default == 0.8

    def test_runtime_params_hidden_from_specs(self):
        info = registry.get("matcher", "threshold")
        assert "index" in {p.name for p in info.params}
        assert "index" not in {p.name for p in info.spec_params()}
