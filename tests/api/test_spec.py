"""PipelineSpec: eager validation, serialization round trip, hashing."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    BackendSpec,
    ComponentSpec,
    DataSpec,
    MatchingSpec,
    PipelineSpec,
    SpecError,
)


def full_spec() -> PipelineSpec:
    """A spec exercising every node with non-default values."""
    return PipelineSpec.from_dict(
        {
            "blocking": {
                "blocker": {"name": "qgrams", "params": {"q": 2}},
                "purging": {"name": "purging", "params": {"smoothing": 1.2}},
                "filtering": {"name": "filtering", "params": {"ratio": 0.7}},
            },
            "weighting": "ECBS",
            "pruning": {"name": "ReciprocalWNP"},
            "matching": {
                "matcher": {"name": "threshold", "params": {"threshold": 0.35}},
                "budget": 400,
                "benefit": "entity-coverage",
                "update_phase": False,
            },
            "evaluation": {"blocks": False},
            "backend": {
                "kind": "stream",
                "scenario": {"name": "bursty", "params": {"burst_size": 10}},
                "processed_view": True,
                "reconcile_every": 8,
                "seed": 3,
            },
            "data": {"sample": "movies"},
        }
    )


class TestRoundTrip:
    def test_dict_round_trip_exact(self):
        spec = full_spec()
        assert PipelineSpec.from_dict(spec.to_dict()) == spec
        assert PipelineSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_json_round_trip_same_hash(self):
        spec = full_spec()
        rebuilt = PipelineSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.cache_key() == spec.cache_key()

    def test_default_spec_round_trips(self):
        spec = PipelineSpec()
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "spec.json")
        spec = full_spec()
        spec.save(path)
        assert PipelineSpec.load(path) == spec
        # The file is plain JSON, editable by hand.
        with open(path) as handle:
            assert json.load(handle)["weighting"] == {"name": "ECBS"}

    def test_case_normalization_gives_same_hash(self):
        lower = PipelineSpec.from_dict({"weighting": "arcs", "pruning": "cnp"})
        upper = PipelineSpec.from_dict({"weighting": "ARCS", "pruning": "CNP"})
        assert lower == upper
        assert lower.cache_key() == upper.cache_key()

    def test_hash_sensitive_to_params(self):
        base = PipelineSpec()
        changed = base.with_matching(budget=10)
        assert base.cache_key() != changed.cache_key()

    def test_shorthand_strings_accepted(self):
        spec = PipelineSpec.from_dict(
            {"weighting": "JS", "backend": "mapreduce", "data": "movies"}
        )
        assert spec.weighting == ComponentSpec("JS")
        assert spec.backend.kind == "mapreduce"
        assert spec.data == DataSpec(sample="movies")


class TestValidation:
    def test_unknown_weighting_listed(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict({"weighting": "SUPERSCHEME"})
        assert "ARCS" in str(err.value)

    def test_unknown_pruner(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"pruning": "YOLO"})

    def test_unknown_blocker(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"blocking": {"blocker": "hashing"}})

    def test_invalid_component_param(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict(
                {"blocking": {"blocker": {"name": "qgrams", "params": {"n": 4}}}}
            )
        assert "'n'" in str(err.value)

    def test_runtime_param_rejected_in_spec(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict(
                {
                    "matching": {
                        "matcher": {"name": "threshold", "params": {"index": 1}}
                    }
                }
            )

    def test_unknown_backend_kind(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict({"backend": {"kind": "quantum"}})
        assert "sequential" in str(err.value)

    def test_bad_worker_count(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"backend": {"kind": "mapreduce", "workers": 0}})

    def test_bad_executor(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"backend": {"executor": "gpu"}})

    def test_bad_reconcile_interval(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict(
                {"backend": {"kind": "stream", "reconcile_every": 0}}
            )

    def test_bad_query_pruner(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict(
                {"backend": {"kind": "stream", "query_pruner": "chaotic"}}
            )
        # "none" is a valid query-time pruner.
        spec = PipelineSpec.from_dict(
            {"backend": {"kind": "stream", "query_pruner": "none"}}
        )
        assert spec.backend.query_pruner == "none"

    def test_unknown_scenario(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict({"backend": {"scenario": "tsunami"}})
        assert "uniform" in str(err.value)

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict({"wieghting": "ARCS"})
        assert "wieghting" in str(err.value)

    def test_unknown_node_key(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"matching": {"treshold": 0.4}})

    def test_negative_budget(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"matching": {"budget": -1}})

    def test_unknown_sample_corpus(self):
        with pytest.raises(SpecError) as err:
            PipelineSpec.from_dict({"data": {"sample": "enron"}})
        assert "movies" in str(err.value)

    def test_data_sample_and_paths_exclusive(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"data": {"sample": "movies", "kb1": "x.nt"}})

    def test_component_dict_needs_name(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_dict({"weighting": {"params": {}}})

    def test_validation_is_eager_at_construction(self):
        with pytest.raises(SpecError):
            PipelineSpec(weighting=ComponentSpec("NOPE"))
        with pytest.raises(SpecError):
            PipelineSpec(matching=MatchingSpec(checkpoint_every=0))
        with pytest.raises(SpecError):
            PipelineSpec(backend=BackendSpec(kind="cluster"))


class TestWithHelpers:
    def test_with_backend_revalidates(self):
        spec = PipelineSpec()
        mr = spec.with_backend(kind="mapreduce", workers=4)
        assert mr.backend.workers == 4
        with pytest.raises(SpecError):
            spec.with_backend(kind="warp")

    def test_with_components(self):
        spec = PipelineSpec().with_components(
            weighting="EJS", pruning="WEP", blocker="qgrams"
        )
        assert spec.weighting.name == "EJS"
        assert spec.pruning.name == "WEP"
        assert spec.blocking.blocker.name == "qgrams"

    def test_specs_are_frozen(self):
        spec = PipelineSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.weighting = ComponentSpec("CBS")

    def test_disabled_postprocessing_round_trips(self):
        spec = PipelineSpec.from_dict(
            {"blocking": {"purging": None, "filtering": None}}
        )
        assert spec.blocking.purging is None
        assert spec.blocking.filtering is None
        assert PipelineSpec.from_json(spec.to_json()) == spec
