"""Tests for the embedded sample corpora."""

from __future__ import annotations

import pytest

from repro.datasets.samples import load_movies, load_restaurants, sample_path


class TestSamplePath:
    def test_existing_file(self):
        assert sample_path("restaurants_a.nt").endswith("restaurants_a.nt")

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            sample_path("nope.nt")


class TestRestaurants:
    def test_shapes(self, restaurants):
        kb_a, kb_b, gold = restaurants
        assert len(kb_a) == 16
        assert len(kb_b) == 16
        assert len(gold) == 14

    def test_gold_uris_exist(self, restaurants):
        kb_a, kb_b, gold = restaurants
        for left, right in gold.matches:
            uris = {left, right}
            assert any(u in kb_a for u in uris)
            assert any(u in kb_b for u in uris)

    def test_sources_distinct(self, restaurants):
        kb_a, kb_b, _ = restaurants
        assert {d.source for d in kb_a} == {"restaurants-a"}
        assert {d.source for d in kb_b} == {"restaurants-b"}

    def test_noise_entities_present(self, restaurants):
        kb_a, kb_b, gold = restaurants
        matched_b = {right for _, right in gold.matches} | {
            left for left, _ in gold.matches
        }
        unmatched_b = [d.uri for d in kb_b if d.uri not in matched_b]
        assert unmatched_b  # v113, v114 have no counterpart


class TestMovies:
    def test_shapes(self, movies):
        kb_a, kb_b, gold = movies
        assert len(kb_a) == 18  # 12 films + 6 directors
        assert len(kb_b) == 18
        assert len(gold) == 16

    def test_relationships_present(self, movies):
        kb_a, kb_b, _ = movies
        film = "http://kba.example.org/film/Starfall_Odyssey"
        assert kb_a.neighbors(film) == ["http://kba.example.org/person/Miranda_Velasquez"]
        assert kb_b.neighbors("http://kbb.example.org/m/0f1a2") == [
            "http://kbb.example.org/m/0d9x1"
        ]

    def test_directors_have_inverse_neighbors(self, movies):
        kb_a, _, _ = movies
        director = "http://kba.example.org/person/Miranda_Velasquez"
        assert len(kb_a.inverse_neighbors(director)) == 2

    def test_abbreviated_titles_are_somehow_similar(self, movies):
        # 'Crimson Meridian' appears as just 'Meridian' in KB-B: the
        # periphery regime the update phase exists for.
        kb_a, kb_b, _ = movies
        assert kb_b["http://kbb.example.org/m/0f5c6"].first(
            "http://kbb.example.org/schema/label"
        ) == "Meridian"

    def test_loading_is_idempotent(self):
        a1, b1, g1 = load_movies()
        a2, b2, g2 = load_movies()
        assert a1.uris() == a2.uris()
        assert g1.matches == g2.matches
