"""Tests for the LOD-cloud workload synthesizer."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    CENTER_PROFILE,
    PERIPHERY_PROFILE,
    PerturbationProfile,
    SyntheticConfig,
    synthesize_dirty,
    synthesize_pair,
)
from repro.matching.similarity import SimilarityIndex


class TestConfigValidation:
    def test_invalid_entities(self):
        with pytest.raises(ValueError):
            synthesize_pair(SyntheticConfig(entities=0))

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            synthesize_pair(SyntheticConfig(overlap=1.5))

    def test_invalid_profile(self):
        bad = PerturbationProfile(attribute_keep=2.0)
        with pytest.raises(ValueError):
            synthesize_pair(SyntheticConfig(profile=bad))

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            synthesize_pair(SyntheticConfig(group_size=(3, 1)))


class TestCleanCleanGeneration:
    def test_sizes_match_overlap(self):
        config = SyntheticConfig(entities=100, overlap=0.6, seed=3)
        dataset = synthesize_pair(config)
        assert len(dataset.gold.matches) == 60
        # Each KB holds the shared 60 plus half of the 40 exclusive.
        assert len(dataset.kb1) == 80
        assert len(dataset.kb2) == 80

    def test_determinism(self):
        config = SyntheticConfig(entities=50, seed=9)
        a = synthesize_pair(config)
        b = synthesize_pair(config)
        assert a.kb1.uris() == b.kb1.uris()
        assert a.gold.matches == b.gold.matches
        for uri in a.kb1.uris():
            assert a.kb1[uri] == b.kb1[uri]

    def test_seed_changes_output(self):
        a = synthesize_pair(SyntheticConfig(entities=50, seed=1))
        b = synthesize_pair(SyntheticConfig(entities=50, seed=2))
        assert a.kb1.uris() != b.kb1.uris()

    def test_sources_stamped(self):
        dataset = synthesize_pair(SyntheticConfig(entities=20))
        assert all(d.source == "kb1" for d in dataset.kb1)
        assert all(d.source == "kb2" for d in dataset.kb2)

    def test_proprietary_vocabularies(self):
        dataset = synthesize_pair(SyntheticConfig(entities=20))
        props1 = {p for d in dataset.kb1 for p in d.properties()}
        props2 = {p for d in dataset.kb2 for p in d.properties()}
        assert props1.isdisjoint(props2)

    def test_relationships_materialized(self):
        dataset = synthesize_pair(SyntheticConfig(entities=100, group_size=(2, 4)))
        edges = sum(len(dataset.kb1.neighbors(u)) for u in dataset.kb1.uris())
        assert edges > 0

    def test_gold_clusters_are_cross_kb(self):
        dataset = synthesize_pair(SyntheticConfig(entities=50))
        for left, right in dataset.gold.matches:
            assert {dataset.kb1.get(left) is not None, dataset.kb2.get(left) is not None}
            sources = {
                (dataset.kb1.get(u) or dataset.kb2.get(u)).source for u in (left, right)
            }
            assert sources == {"kb1", "kb2"}

    def test_entity_graphs_reference_clusters(self):
        dataset = synthesize_pair(SyntheticConfig(entities=60, group_size=(2, 3)))
        cluster_count = len(dataset.gold.clusters)
        for graph in dataset.gold.entity_graphs:
            assert all(0 <= c < cluster_count for c in graph)

    def test_entity_of_maps_every_uri(self):
        dataset = synthesize_pair(SyntheticConfig(entities=30))
        for uri in dataset.kb1.uris() + dataset.kb2.uris():
            assert uri in dataset.entity_of


class TestProfiles:
    def profile_similarity(self, profile) -> float:
        config = SyntheticConfig(entities=80, overlap=0.8, seed=7, profile=profile)
        dataset = synthesize_pair(config)
        index = SimilarityIndex([dataset.kb1, dataset.kb2])
        values = [index.jaccard(a, b) for a, b in dataset.gold.matches]
        return sum(values) / len(values)

    def test_center_pairs_highly_similar(self):
        assert self.profile_similarity(CENTER_PROFILE) > 0.5

    def test_periphery_pairs_somehow_similar(self):
        periphery = self.profile_similarity(PERIPHERY_PROFILE)
        center = self.profile_similarity(CENTER_PROFILE)
        assert periphery < center
        assert periphery > 0.02  # still some common evidence

    def test_periphery_has_opaque_uris(self):
        dataset = synthesize_pair(
            SyntheticConfig(entities=80, seed=7, profile=PERIPHERY_PROFILE)
        )
        opaque = [u for u in dataset.kb1.uris() if "/node" in u]
        assert opaque  # name_bearing_uri < 1 produces some opaque URIs


class TestDirtyGeneration:
    def test_duplicate_clusters(self):
        collection, gold = synthesize_dirty(
            SyntheticConfig(entities=40, seed=2), max_duplicates=3
        )
        assert len(collection) >= 40
        assert all(len(c) >= 2 for c in gold.clusters)

    def test_invalid_max_duplicates(self):
        with pytest.raises(ValueError):
            synthesize_dirty(SyntheticConfig(entities=10), max_duplicates=0)

    def test_determinism(self):
        a, gold_a = synthesize_dirty(SyntheticConfig(entities=30, seed=4))
        b, gold_b = synthesize_dirty(SyntheticConfig(entities=30, seed=4))
        assert a.uris() == b.uris()
        assert gold_a.matches == gold_b.matches

    def test_single_copy_allowed(self):
        collection, gold = synthesize_dirty(
            SyntheticConfig(entities=20, seed=2), max_duplicates=1
        )
        assert len(collection) == 20
        assert len(gold.matches) == 0
