"""Tests for the Turtle-shipped people corpus."""

from __future__ import annotations

import pytest

from repro.core.pipeline import MinoanER
from repro.datasets.samples import load_people
from repro.evaluation.metrics import evaluate_matches


@pytest.fixture(scope="module")
def people():
    return load_people()


class TestShapes:
    def test_sizes(self, people):
        kb_a, kb_b, gold = people
        assert len(kb_a) == 11  # 8 researchers + 3 institutions
        assert len(kb_b) == 11
        assert len(gold) == 10

    def test_sources(self, people):
        kb_a, kb_b, _ = people
        assert {d.source for d in kb_a} == {"people-a"}
        assert {d.source for d in kb_b} == {"people-b"}

    def test_turtle_prefixes_expanded(self, people):
        kb_a, _, _ = people
        person = kb_a["http://kba.example.org/people/elena_marchetti"]
        assert person.first("http://kba.example.org/vocab/fullName") == "Elena Marchetti"

    def test_relationships_resolved(self, people):
        kb_a, kb_b, _ = people
        assert kb_a.neighbors("http://kba.example.org/people/elena_marchetti") == [
            "http://kba.example.org/org/institute_of_data_science"
        ]
        assert kb_b.neighbors("http://kbb.example.org/researcher/r001") == [
            "http://kbb.example.org/institution/i10"
        ]

    def test_institutions_have_members(self, people):
        kb_a, _, _ = people
        org = "http://kba.example.org/org/nordic_web_lab"
        assert len(kb_a.inverse_neighbors(org)) == 3

    def test_noise_researchers_present(self, people):
        kb_a, kb_b, gold = people
        gold_uris = {uri for pair in gold.matches for uri in pair}
        assert "http://kba.example.org/people/tomas_keller" not in gold_uris
        assert "http://kbb.example.org/researcher/r008" not in gold_uris


class TestResolution:
    def test_pipeline_resolves_people(self, people):
        kb_a, kb_b, gold = people
        result = MinoanER(match_threshold=0.3).resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall >= 0.9
        assert quality.f1 >= 0.8

    def test_abbreviated_name_matched(self, people):
        kb_a, kb_b, gold = people
        result = MinoanER(match_threshold=0.3).resolve(kb_a, kb_b, gold=gold)
        # "E. Marchetti" has weak value evidence; neighbour evidence via
        # the shared institution should still land the match.
        pair = (
            "http://kba.example.org/people/elena_marchetti",
            "http://kbb.example.org/researcher/r001",
        )
        assert pair in result.matched_pairs()
