"""Tests for the gold-standard container and CSV I/O."""

from __future__ import annotations

from repro.datasets.gold import GoldStandard, load_gold_csv, save_gold_csv


class TestGoldStandard:
    def test_from_pairs_canonicalizes(self):
        gold = GoldStandard.from_pairs([("b", "a"), ("a", "b")])
        assert gold.matches == {("a", "b")}
        assert len(gold) == 1

    def test_is_match_symmetric(self):
        gold = GoldStandard.from_pairs([("a", "b")])
        assert gold.is_match("b", "a")
        assert not gold.is_match("a", "c")

    def test_contains(self):
        gold = GoldStandard.from_pairs([("a", "b")])
        assert ("a", "b") in gold

    def test_clusters_generate_matches(self):
        gold = GoldStandard(clusters=[frozenset({"a", "b", "c"})])
        assert gold.matches == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_cluster_index(self):
        gold = GoldStandard(clusters=[frozenset({"a", "b"}), frozenset({"x", "y"})])
        index = gold.cluster_index()
        assert index["a"] == index["b"]
        assert index["a"] != index["x"]

    def test_explicit_matches_not_overridden(self):
        gold = GoldStandard(
            matches={("p", "q")}, clusters=[frozenset({"a", "b"})]
        )
        assert gold.matches == {("p", "q")}

    def test_entity_graphs_stored(self):
        gold = GoldStandard(
            clusters=[frozenset({"a", "b"}), frozenset({"x", "y"})],
            entity_graphs=[frozenset({0, 1})],
        )
        assert gold.entity_graphs == [frozenset({0, 1})]


class TestCsvIO:
    def test_round_trip(self, tmp_path):
        gold = GoldStandard.from_pairs([("u1", "v1"), ("u2", "v2")])
        path = str(tmp_path / "gold.csv")
        save_gold_csv(gold, path)
        loaded = load_gold_csv(path)
        assert loaded.matches == gold.matches

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "gold.csv"
        path.write_text("uri1,uri2\na,b\n")
        assert load_gold_csv(str(path)).matches == {("a", "b")}

    def test_headerless_accepted(self, tmp_path):
        path = tmp_path / "gold.csv"
        path.write_text("a,b\nc,d\n")
        assert len(load_gold_csv(str(path))) == 2

    def test_short_rows_ignored(self, tmp_path):
        path = tmp_path / "gold.csv"
        path.write_text("a,b\nmalformed\n")
        assert len(load_gold_csv(str(path))) == 1

    def test_whitespace_stripped(self, tmp_path):
        path = tmp_path / "gold.csv"
        path.write_text(" a , b \n")
        assert load_gold_csv(str(path)).matches == {("a", "b")}
