"""Tests for the static/dynamic/hybrid strategies."""

from __future__ import annotations

import pytest

from repro.core.strategies import dynamic_strategy, hybrid_strategy, static_strategy
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def chain_world(n: int = 6):
    """A chain of related entities where only the first pair is blocked.

    a_i references a_{i+1} (same for b): each confirmed match unlocks the
    next pair through neighbour evidence, so only iterative strategies can
    walk the chain.
    """
    kb1_descriptions = []
    kb2_descriptions = []
    for i in range(n):
        attrs1 = {"p": [f"value{i}"]}
        attrs2 = {"q": [f"value{i}"]}
        if i + 1 < n:
            attrs1["r"] = [f"http://a/{i + 1}"]
            attrs2["s"] = [f"http://b/{i + 1}"]
        kb1_descriptions.append(EntityDescription(f"http://a/{i}", attrs1, source="kb1"))
        kb2_descriptions.append(EntityDescription(f"http://b/{i}", attrs2, source="kb2"))
    kb1 = EntityCollection(kb1_descriptions, name="kb1")
    kb2 = EntityCollection(kb2_descriptions, name="kb2")
    gold = GoldStandard.from_pairs([(f"http://a/{i}", f"http://b/{i}") for i in range(n)])
    edges = [WeightedEdge("http://a/0", "http://b/0", 1.0)]
    return kb1, kb2, gold, edges


class TestStatic:
    def test_no_update_phase(self):
        kb1, kb2, gold, edges = chain_world()
        engine = static_strategy(OracleMatcher(gold.matches))
        assert engine.updater is None
        result = engine.run(edges, [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 1  # chain not walked


class TestDynamic:
    def test_walks_the_chain(self):
        kb1, kb2, gold, edges = chain_world()
        engine = dynamic_strategy(OracleMatcher(gold.matches))
        result = engine.run(edges, [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 6
        assert result.discovered_matches == 5

    def test_knobs_forwarded(self):
        engine = dynamic_strategy(
            OracleMatcher(set()), boost_factor=2.5, discovery_weight=0.25
        )
        assert engine.updater.boost_factor == 2.5
        assert engine.updater.discovery_weight == 0.25


class TestHybrid:
    def test_batched_propagation_still_walks_chain(self):
        kb1, kb2, gold, edges = chain_world()
        engine = hybrid_strategy(OracleMatcher(gold.matches), batch_size=1)
        result = engine.run(edges, [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 6

    def test_large_batch_defers_propagation(self):
        kb1, kb2, gold, edges = chain_world()
        engine = hybrid_strategy(OracleMatcher(gold.matches), batch_size=100)
        result = engine.run(edges, [kb1, kb2], gold=gold)
        # The batch never fills, so no propagation happens.
        assert result.match_graph.match_count == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            hybrid_strategy(OracleMatcher(set()), batch_size=0)

    def test_intermediate_batch(self):
        kb1, kb2, gold, edges = chain_world()
        engine = hybrid_strategy(OracleMatcher(gold.matches), batch_size=2)
        result = engine.run(edges, [kb1, kb2], gold=gold)
        # Every second match triggers a flush; the chain advances in steps
        # but stalls when the last unflushed match is the frontier.
        assert 1 <= result.match_graph.match_count <= 6
