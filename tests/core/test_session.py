"""Tests for resumable pay-as-you-go sessions."""

from __future__ import annotations

import pytest

from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.session import ProgressiveSession
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def world(n: int = 8):
    kb1 = EntityCollection(
        [EntityDescription(f"http://a/{i}", {"p": [f"v{i}"]}, source="kb1") for i in range(n)],
        name="kb1",
    )
    kb2 = EntityCollection(
        [EntityDescription(f"http://b/{i}", {"q": [f"v{i}"]}, source="kb2") for i in range(n)],
        name="kb2",
    )
    gold = GoldStandard.from_pairs([(f"http://a/{i}", f"http://b/{i}") for i in range(n)])
    edges = [
        WeightedEdge(f"http://a/{i}", f"http://b/{i}", float(n - i)) for i in range(n)
    ]
    return kb1, kb2, gold, edges


def make_session(**kwargs) -> tuple[ProgressiveSession, GoldStandard]:
    kb1, kb2, gold, edges = world()
    session = ProgressiveSession(
        matcher=OracleMatcher(gold.matches),
        edges=edges,
        collections=[kb1, kb2],
        gold=gold,
        **kwargs,
    )
    return session, gold


class TestInstalments:
    def test_nothing_happens_before_advance(self):
        session, _ = make_session()
        assert session.result.comparisons_executed == 0
        assert session.pending_comparisons == 8

    def test_single_instalment(self):
        session, _ = make_session()
        result = session.advance(3)
        assert result.comparisons_executed == 3
        assert session.pending_comparisons == 5
        assert session.recall == pytest.approx(3 / 8)

    def test_multiple_instalments_accumulate(self):
        session, _ = make_session()
        session.advance(3)
        result = session.advance(2)
        assert result.comparisons_executed == 5
        assert session.recall == pytest.approx(5 / 8)

    def test_curve_spans_all_instalments(self):
        session, _ = make_session(checkpoint_every=1)
        session.advance(3)
        session.advance(5)
        result = session.result
        assert result.curve.comparisons[-1] == 8
        assert result.curve.final("recall") == 1.0

    def test_unlimited_advance_drains(self):
        session, _ = make_session()
        session.advance(2)
        result = session.advance(None)
        assert result.comparisons_executed == 8
        assert session.finished

    def test_zero_instalment_is_noop(self):
        session, _ = make_session()
        result = session.advance(0)
        assert result.comparisons_executed == 0

    def test_negative_instalment_rejected(self):
        session, _ = make_session()
        with pytest.raises(ValueError):
            session.advance(-1)

    def test_advance_after_finish_is_noop(self):
        session, _ = make_session()
        session.advance(None)
        executed = session.result.comparisons_executed
        session.advance(10)
        assert session.result.comparisons_executed == executed

    def test_shared_result_object(self):
        session, _ = make_session()
        first = session.advance(1)
        second = session.advance(1)
        assert first is second

    def test_matched_pairs_accessible_between_instalments(self):
        session, _ = make_session()
        session.advance(2)
        assert len(session.matched_pairs()) == 2


class TestEngineEquivalence:
    def test_run_equals_fully_advanced_session(self):
        kb1, kb2, gold, edges = world()
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches), budget=CostBudget(5)
        )
        run_result = engine.run(edges, [kb1, kb2], gold=gold)
        session = engine.session(edges, [kb1, kb2], gold=gold)
        session_result = session.advance(5)
        assert run_result.comparisons_executed == session_result.comparisons_executed
        assert run_result.matched_pairs() == session_result.matched_pairs()
        assert run_result.curve.series["recall"] == session_result.curve.series["recall"]

    def test_split_instalments_reach_same_state(self):
        kb1, kb2, gold, edges = world()

        def run_split(splits):
            session = ProgressiveSession(
                matcher=OracleMatcher(gold.matches),
                edges=edges,
                collections=[kb1, kb2],
                gold=gold,
            )
            for instalment in splits:
                session.advance(instalment)
            return session.matched_pairs()

        assert run_split([6]) == run_split([1, 2, 3]) == run_split([2, 2, 2])


class TestUpdatePhaseInSession:
    def test_discovery_across_instalments(self):
        kb1 = EntityCollection(
            [
                EntityDescription("http://a/1", {"p": ["x"], "r": ["http://a/2"]}, source="kb1"),
                EntityDescription("http://a/2", {"p": ["y"]}, source="kb1"),
            ],
            name="kb1",
        )
        kb2 = EntityCollection(
            [
                EntityDescription("http://b/1", {"q": ["x"], "s": ["http://b/2"]}, source="kb2"),
                EntityDescription("http://b/2", {"q": ["y"]}, source="kb2"),
            ],
            name="kb2",
        )
        gold = GoldStandard.from_pairs(
            [("http://a/1", "http://b/1"), ("http://a/2", "http://b/2")]
        )
        session = ProgressiveSession(
            matcher=OracleMatcher(gold.matches),
            edges=[WeightedEdge("http://a/1", "http://b/1", 1.0)],
            collections=[kb1, kb2],
            updater=NeighborEvidencePropagator(discovery_weight=0.5),
            gold=gold,
        )
        session.advance(1)
        # The blocked pair matched; its neighbours were discovered and wait.
        assert session.pending_comparisons == 1
        session.advance(1)
        assert session.result.discovered_matches == 1
        assert session.recall == 1.0
