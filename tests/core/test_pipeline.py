"""Tests for the MinoanER facade."""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.evaluation.metrics import evaluate_matches
from repro.matching.matcher import OracleMatcher


class TestConfiguration:
    def test_defaults(self):
        platform = MinoanER()
        assert platform.weighting.name == "ARCS"
        assert platform.pruning.name == "CNP"
        assert platform.updater is not None

    def test_scheme_names_resolved(self):
        platform = MinoanER(weighting="js", pruning="wep", benefit="entity-coverage")
        assert platform.weighting.name == "JS"
        assert platform.pruning.name == "WEP"
        assert platform.benefit.name == "entity-coverage"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            MinoanER(weighting="nope")
        with pytest.raises(KeyError):
            MinoanER(pruning="nope")
        with pytest.raises(KeyError):
            MinoanER(benefit="nope")

    def test_update_phase_toggle(self):
        assert MinoanER(update_phase=False).updater is None


class TestStages:
    def test_block_stage(self, movies):
        kb_a, kb_b, _ = movies
        platform = MinoanER()
        raw, processed = platform.block(kb_a, kb_b)
        assert len(raw) > 0
        assert processed.total_comparisons() <= raw.total_comparisons()

    def test_block_stage_without_postprocessing(self, movies):
        kb_a, kb_b, _ = movies
        platform = MinoanER()
        platform.purging = None
        platform.filtering = None
        raw, processed = platform.block(kb_a, kb_b)
        assert raw is processed

    def test_meta_block_stage(self, movies):
        kb_a, kb_b, _ = movies
        platform = MinoanER()
        _, processed = platform.block(kb_a, kb_b)
        edges = platform.meta_block(processed)
        assert edges
        assert len(edges) <= len(processed.distinct_comparisons())

    def test_default_matcher_built(self, movies):
        from repro.core.evidence_matcher import NeighborAwareMatcher

        kb_a, kb_b, _ = movies
        matcher = MinoanER().build_matcher(kb_a, kb_b)
        # Update phase on -> evidence-aware wrapper around the cosine matcher.
        assert isinstance(matcher, NeighborAwareMatcher)
        assert matcher.base.measure_name == "cosine"

    def test_default_matcher_without_update_phase(self, movies):
        kb_a, kb_b, _ = movies
        matcher = MinoanER(update_phase=False).build_matcher(kb_a, kb_b)
        assert matcher.measure_name == "cosine"

    def test_custom_matcher_respected(self, movies):
        kb_a, kb_b, gold = movies
        oracle = OracleMatcher(gold.matches)
        assert MinoanER(matcher=oracle).build_matcher(kb_a, kb_b) is oracle


class TestResolve:
    def test_end_to_end_movies(self, movies):
        kb_a, kb_b, gold = movies
        platform = MinoanER(budget=CostBudget(500))
        result = platform.resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.f1 >= 0.85
        assert result.progressive.comparisons_executed <= 500

    def test_summary_keys(self, movies):
        kb_a, kb_b, gold = movies
        result = MinoanER(budget=CostBudget(200)).resolve(kb_a, kb_b, gold=gold)
        summary = result.summary()
        assert set(summary) == {
            "blocks",
            "after post-processing",
            "scheduled comparisons",
            "executed comparisons",
            "matches",
            "discovered matches",
        }

    def test_custom_stages(self, restaurants):
        kb_a, kb_b, gold = restaurants
        platform = MinoanER(
            purging=BlockPurging(max_cardinality=50),
            filtering=BlockFiltering(ratio=0.9),
            weighting="ECBS",
            pruning="WNP",
            match_threshold=0.3,
        )
        result = platform.resolve(kb_a, kb_b, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall >= 0.7

    def test_dirty_er(self, dirty_dataset):
        collection, gold = dirty_dataset
        platform = MinoanER(budget=CostBudget(3000), match_threshold=0.55)
        result = platform.resolve(collection, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        assert quality.recall > 0.4
