"""Tests for the benefit models."""

from __future__ import annotations

import pytest

from repro.core.benefit import (
    BENEFITS,
    AttributeCompletenessBenefit,
    EntityCoverageBenefit,
    QuantityBenefit,
    RelationshipCompletenessBenefit,
    make_benefit,
)
from repro.core.engine import ResolutionContext
from repro.matching.matcher import MatchDecision
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def context() -> ResolutionContext:
    kb1 = EntityCollection(
        [
            EntityDescription(
                "http://a/film",
                {"title": ["alpha"], "director": ["http://a/person"]},
                source="kb1",
            ),
            EntityDescription(
                "http://a/person", {"name": ["bob"], "born": ["1950"]}, source="kb1"
            ),
        ],
        name="kb1",
    )
    kb2 = EntityCollection(
        [
            EntityDescription(
                "http://b/film",
                {"label": ["alpha"], "maker": ["http://b/person"], "year": ["1999"]},
                source="kb2",
            ),
            EntityDescription("http://b/person", {"label": ["bob"]}, source="kb2"),
        ],
        name="kb2",
    )
    return ResolutionContext([kb1, kb2])


def match(a: str, b: str) -> MatchDecision:
    return MatchDecision(a, b, 1.0, True)


def non_match(a: str, b: str) -> MatchDecision:
    return MatchDecision(a, b, 0.0, False)


class TestQuantity:
    def test_uniform_estimate(self):
        ctx = context()
        model = QuantityBenefit()
        assert model.estimate("http://a/film", "http://b/film", ctx) == 1.0

    def test_realized_counts_matches_only(self):
        ctx = context()
        model = QuantityBenefit()
        assert model.realized(match("http://a/film", "http://b/film"), ctx) == 1.0
        assert model.realized(non_match("http://a/film", "http://b/person"), ctx) == 0.0


class TestAttributeCompleteness:
    def test_complementary_properties_estimated_higher(self):
        ctx = context()
        model = AttributeCompletenessBenefit()
        # film/film share no property names (proprietary vocabularies):
        # complementarity 1.0; sizes 2 vs 3 give imbalance 1/3.
        complementary = model.estimate("http://a/film", "http://b/film", ctx)
        assert complementary == pytest.approx(0.75 + 0.25 + 0.25 / 3)

    def test_estimates_stay_in_tiebreaker_range(self):
        ctx = context()
        model = AttributeCompletenessBenefit()
        for a in ("http://a/film", "http://a/person"):
            for b in ("http://b/film", "http://b/person"):
                assert 0.75 <= model.estimate(a, b, ctx) <= 1.25

    def test_unknown_uri_gets_default(self):
        ctx = context()
        model = AttributeCompletenessBenefit()
        assert model.estimate("ghost", "http://b/film", ctx) == 1.0

    def test_realized_rewards_new_evidence(self):
        ctx = context()
        model = AttributeCompletenessBenefit()
        decision = match("http://a/film", "http://b/film")
        ctx.match_graph.record(decision)
        assert model.realized(decision, ctx) > 0.5

    def test_realized_zero_for_non_match(self):
        ctx = context()
        model = AttributeCompletenessBenefit()
        assert model.realized(non_match("http://a/film", "http://b/film"), ctx) == 0.0


class TestEntityCoverage:
    def test_unresolved_pair_estimated_highest(self):
        ctx = context()
        model = EntityCoverageBenefit()
        assert model.estimate("http://a/film", "http://b/film", ctx) == 1.0

    def test_resolved_pair_estimated_low(self):
        ctx = context()
        ctx.match_graph.record(match("http://a/film", "http://b/film"))
        ctx.match_graph.record(match("http://a/person", "http://b/person"))
        model = EntityCoverageBenefit()
        assert (
            model.estimate("http://a/film", "http://b/person", ctx)
            == model.extension_value
        )

    def test_half_resolved_pair_estimated_mid(self):
        ctx = context()
        ctx.match_graph.record(match("http://a/film", "http://b/film"))
        model = EntityCoverageBenefit()
        assert model.estimate("http://a/film", "http://b/person", ctx) == 0.5

    def test_realized_new_entity(self):
        ctx = context()
        decision = match("http://a/film", "http://b/film")
        ctx.match_graph.record(decision)
        assert EntityCoverageBenefit().realized(decision, ctx) == 1.0

    def test_realized_extension(self):
        ctx = context()
        first = match("http://a/film", "http://b/film")
        ctx.match_graph.record(first)
        second = match("http://b/film", "http://a/person")
        ctx.match_graph.record(second)
        assert (
            EntityCoverageBenefit().realized(second, ctx)
            == EntityCoverageBenefit.extension_value
        )


class TestRelationshipCompleteness:
    def test_estimate_favours_resolved_neighbourhoods(self):
        ctx = context()
        model = RelationshipCompletenessBenefit()
        before = model.estimate("http://a/film", "http://b/film", ctx)
        # Resolve the directors; the films' neighbourhood is now resolved.
        ctx.match_graph.record(match("http://a/person", "http://b/person"))
        after = model.estimate("http://a/film", "http://b/film", ctx)
        assert after > before

    def test_realized_counts_completed_edges(self):
        ctx = context()
        model = RelationshipCompletenessBenefit()
        ctx.match_graph.record(match("http://a/person", "http://b/person"))
        decision = match("http://a/film", "http://b/film")
        ctx.match_graph.record(decision)
        # Both films reference their (resolved) director: 2 completed edges.
        assert model.realized(decision, ctx) == pytest.approx(model.base_value + 2)

    def test_no_neighbors_gets_base(self):
        ctx = context()
        model = RelationshipCompletenessBenefit()
        assert (
            model.estimate("http://a/person", "http://b/person", ctx)
            >= model.base_value
        )


class TestRegistry:
    def test_all_models_registered(self):
        assert set(BENEFITS) == {
            "quantity",
            "attribute-completeness",
            "entity-coverage",
            "relationship-completeness",
        }

    @pytest.mark.parametrize("name", sorted(BENEFITS))
    def test_make_benefit(self, name):
        assert make_benefit(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_benefit("bogus")

    @pytest.mark.parametrize("name", sorted(BENEFITS))
    def test_estimates_positive(self, name):
        ctx = context()
        model = make_benefit(name)
        assert model.estimate("http://a/film", "http://b/film", ctx) > 0
