"""The scheduler's packed int-id frontier: public behaviour unchanged."""

from __future__ import annotations

import pytest

from repro.core.benefit import QuantityBenefit
from repro.core.engine import ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def make_scheduler() -> ComparisonScheduler:
    collection = EntityCollection(
        [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(8)],
        name="kb",
    )
    return ComparisonScheduler(QuantityBenefit(), ResolutionContext([collection]))


class TestPackedFrontier:
    def test_pop_returns_canonical_uri_pairs(self):
        scheduler = make_scheduler()
        # URI-lexicographic canonicalization, independent of id order.
        scheduler.schedule("http://e/7", "http://e/0", 1.0)
        pair, _ = scheduler.pop()
        assert pair == ("http://e/0", "http://e/7")

    def test_self_comparison_rejected(self):
        scheduler = make_scheduler()
        with pytest.raises(ValueError):
            scheduler.schedule("http://e/1", "http://e/1", 1.0)

    def test_unknown_uris_do_not_get_interned_by_lookups(self):
        scheduler = make_scheduler()
        assert scheduler.base_weight("http://x", "http://y") == 0.0
        assert scheduler.boost("http://x", "http://y", 1.0) is False
        assert scheduler.refresh("http://x", "http://y") is False
        assert ("http://x", "http://y") not in scheduler
        assert len(scheduler._interner) == 0

    def test_priority_lookup(self):
        scheduler = make_scheduler()
        scheduler.schedule("http://e/1", "http://e/2", 2.5)
        assert scheduler.priority("http://e/1", "http://e/2") == pytest.approx(2.5)
        with pytest.raises(KeyError):
            scheduler.priority("http://e/3", "http://e/4")

    def test_queued_pairs_iterates_uri_tuples(self):
        scheduler = make_scheduler()
        scheduler.schedule("http://e/1", "http://e/2", 2.0)
        scheduler.schedule("http://e/3", "http://e/4", 1.0)
        queued = dict(scheduler.queued_pairs())
        assert queued == {
            ("http://e/1", "http://e/2"): pytest.approx(2.0),
            ("http://e/3", "http://e/4"): pytest.approx(1.0),
        }

    def test_refresh_involving_counts_touched_pairs(self):
        scheduler = make_scheduler()
        scheduler.schedule("http://e/1", "http://e/2", 2.0)
        scheduler.schedule("http://e/1", "http://e/3", 1.0)
        scheduler.schedule("http://e/4", "http://e/5", 1.0)
        assert scheduler.refresh_involving("http://e/1") == 2
        assert scheduler.refresh_involving("http://e/9") == 0
        scheduler.pop()
        scheduler.pop()
        scheduler.pop()
        assert scheduler.refresh_involving("http://e/1") == 0

    def test_tie_break_is_insertion_order(self):
        scheduler = make_scheduler()
        scheduler.schedule("http://e/5", "http://e/6", 1.0)
        scheduler.schedule("http://e/1", "http://e/2", 1.0)
        assert scheduler.pop()[0] == ("http://e/5", "http://e/6")
        assert scheduler.pop()[0] == ("http://e/1", "http://e/2")
