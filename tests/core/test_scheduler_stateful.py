"""Stateful test of the comparison scheduler against a naive model."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.blocking.block import comparison_pair
from repro.core.benefit import QuantityBenefit
from repro.core.engine import ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription

uris = st.integers(0, 12).map(lambda i: f"http://e/{i}")
weights = st.floats(0.01, 100, allow_nan=False)


def make_context() -> ResolutionContext:
    collection = EntityCollection(
        [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(13)],
        name="kb",
    )
    return ResolutionContext([collection])


class SchedulerMachine(RuleBasedStateMachine):
    """With the quantity benefit, priority == base weight + boosts; the
    model tracks exactly that and checks pop order and bookkeeping."""

    def __init__(self):
        super().__init__()
        self.scheduler = ComparisonScheduler(QuantityBenefit(), make_context())
        self.queued: dict[tuple[str, str], float] = {}
        self.popped: set[tuple[str, str]] = set()

    @rule(a=uris, b=uris, weight=weights)
    def schedule(self, a, b, weight):
        if a == b:
            return
        pair = comparison_pair(a, b)
        result = self.scheduler.schedule(a, b, weight)
        if pair in self.popped:
            assert result is False
        elif pair in self.queued:
            assert result is False
            # Base weight merges to the max; boosts are preserved, so the
            # model priority only changes when the new base is larger.
            current_base = self.scheduler.base_weight(a, b)
            assert current_base >= weight or current_base >= self.queued[pair]
            self.queued[pair] = self.scheduler.priority(*pair)
        else:
            assert result is True
            self.queued[pair] = weight

    @precondition(lambda self: self.queued)
    @rule(delta=st.floats(0.01, 20), data=st.data())
    def boost(self, delta, data):
        pair = data.draw(st.sampled_from(sorted(self.queued)))
        assert self.scheduler.boost(pair[0], pair[1], delta) is True
        self.queued[pair] += delta

    @rule(a=uris, b=uris, delta=weights)
    def boost_unqueued_is_noop(self, a, b, delta):
        if a == b:
            return
        pair = comparison_pair(a, b)
        if pair not in self.queued:
            assert self.scheduler.boost(a, b, delta) is False

    @precondition(lambda self: self.queued)
    @rule()
    def pop_is_maximal(self):
        pair, priority = self.scheduler.pop()
        best = max(self.queued.values())
        # Tolerances: model and scheduler accumulate boosts in different
        # float orders.
        assert priority == pytest.approx(self.queued[pair], rel=1e-9, abs=1e-9)
        assert priority >= best - max(1e-9 * abs(best), 1e-9)
        del self.queued[pair]
        self.popped.add(pair)

    @precondition(lambda self: self.popped)
    @rule(data=st.data(), weight=weights)
    def popped_pairs_never_resurrect(self, data, weight):
        pair = data.draw(st.sampled_from(sorted(self.popped)))
        assert self.scheduler.schedule(pair[0], pair[1], weight) is False
        assert pair not in self.scheduler

    @invariant()
    def sizes_agree(self):
        assert len(self.scheduler) == len(self.queued)


TestSchedulerMachine = SchedulerMachine.TestCase
TestSchedulerMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
