"""Tests for the neighbour-evidence-aware matcher."""

from __future__ import annotations

import pytest

from repro.core.engine import ResolutionContext
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.matching.matcher import MatchDecision, Matcher
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


class StubMatcher(Matcher):
    """Fixed value-similarity matrix for testing."""

    def __init__(self, scores: dict[tuple[str, str], float], threshold: float = 0.5):
        self.scores = scores
        self.threshold = threshold
        self.bound_context = None

    def bind(self, context) -> None:
        self.bound_context = context

    def similarity(self, uri_a: str, uri_b: str) -> float:
        key = (uri_a, uri_b) if (uri_a, uri_b) in self.scores else (uri_b, uri_a)
        return self.scores.get(key, 0.0)

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        score = self.similarity(uri_a, uri_b)
        return MatchDecision(uri_a, uri_b, score, score >= self.threshold)


def film_context() -> ResolutionContext:
    kb1 = EntityCollection(
        [
            EntityDescription("a_film", {"director": ["http://x/a_dir"]}, source="kb1"),
            EntityDescription("http://x/a_dir", {"n": ["d"]}, source="kb1"),
        ],
        name="kb1",
    )
    kb2 = EntityCollection(
        [
            EntityDescription("b_film", {"maker": ["http://y/b_dir"]}, source="kb2"),
            EntityDescription("http://y/b_dir", {"n": ["d"]}, source="kb2"),
        ],
        name="kb2",
    )
    return ResolutionContext([kb1, kb2])


class TestUnbound:
    def test_behaves_like_base(self):
        base = StubMatcher({("a", "b"): 0.6})
        matcher = NeighborAwareMatcher(base, evidence_weight=0.5)
        assert matcher.similarity("a", "b") == 0.6
        assert matcher.decide("a", "b").is_match

    def test_threshold_inherited(self):
        base = StubMatcher({}, threshold=0.7)
        assert NeighborAwareMatcher(base).threshold == 0.7

    def test_threshold_override(self):
        base = StubMatcher({}, threshold=0.7)
        assert NeighborAwareMatcher(base, threshold=0.2).threshold == 0.2

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            NeighborAwareMatcher(StubMatcher({}), evidence_weight=-1)

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            NeighborAwareMatcher(StubMatcher({}), min_value_similarity=-0.1)


class TestEvidence:
    def test_bind_propagates_to_base(self):
        base = StubMatcher({})
        matcher = NeighborAwareMatcher(base)
        context = film_context()
        matcher.bind(context)
        assert base.bound_context is context

    def test_no_evidence_before_any_match(self):
        matcher = NeighborAwareMatcher(StubMatcher({}))
        matcher.bind(film_context())
        assert matcher.neighbor_evidence("a_film", "b_film") == 0.0

    def test_matched_neighbors_raise_score(self):
        context = film_context()
        base = StubMatcher({("a_film", "b_film"): 0.1}, threshold=0.3)
        matcher = NeighborAwareMatcher(base, evidence_weight=0.3)
        matcher.bind(context)
        # The films fail on value alone.
        assert not matcher.decide("a_film", "b_film").is_match
        # Their directors get matched...
        context.match_graph.record(
            MatchDecision("http://x/a_dir", "http://y/b_dir", 1.0, True)
        )
        # ...and now the films pass: 0.1 + 0.3 * 1.0 = 0.4 >= 0.3.
        decision = matcher.decide("a_film", "b_film")
        assert decision.is_match
        assert decision.similarity == pytest.approx(0.4)

    def test_zero_value_similarity_never_matches(self):
        context = film_context()
        base = StubMatcher({}, threshold=0.2)  # all value scores 0
        matcher = NeighborAwareMatcher(base, evidence_weight=1.0)
        matcher.bind(context)
        context.match_graph.record(
            MatchDecision("http://x/a_dir", "http://y/b_dir", 1.0, True)
        )
        # Full neighbour evidence, but no value support: rejected.
        decision = matcher.decide("a_film", "b_film")
        assert decision.similarity >= 0.2
        assert not decision.is_match

    def test_transitive_neighbor_matches_count(self):
        context = film_context()
        base = StubMatcher({("a_film", "b_film"): 0.1}, threshold=0.3)
        matcher = NeighborAwareMatcher(base, evidence_weight=0.3)
        matcher.bind(context)
        # Directors matched transitively through a third description.
        context.match_graph.record(MatchDecision("http://x/a_dir", "z", 1.0, True))
        context.match_graph.record(MatchDecision("z", "http://y/b_dir", 1.0, True))
        assert matcher.neighbor_evidence("a_film", "b_film") == 1.0

    def test_zero_weight_disables_evidence(self):
        context = film_context()
        base = StubMatcher({("a_film", "b_film"): 0.1}, threshold=0.3)
        matcher = NeighborAwareMatcher(base, evidence_weight=0.0)
        matcher.bind(context)
        context.match_graph.record(
            MatchDecision("http://x/a_dir", "http://y/b_dir", 1.0, True)
        )
        assert not matcher.decide("a_film", "b_film").is_match

    def test_inverse_neighbors_contribute(self):
        context = film_context()
        base = StubMatcher(
            {("http://x/a_dir", "http://y/b_dir"): 0.1}, threshold=0.3
        )
        matcher = NeighborAwareMatcher(base, evidence_weight=0.3)
        matcher.bind(context)
        # The films (which *reference* the directors) are matched.
        context.match_graph.record(MatchDecision("a_film", "b_film", 1.0, True))
        decision = matcher.decide("http://x/a_dir", "http://y/b_dir")
        assert decision.is_match
