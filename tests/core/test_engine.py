"""Tests for the progressive resolution engine."""

from __future__ import annotations

import pytest

from repro.core.benefit import QuantityBenefit
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER, ResolutionContext
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def simple_world():
    """Four matching pairs with relationship structure between them."""
    kb1 = EntityCollection(
        [
            EntityDescription("http://a/1", {"p": ["x"], "r": ["http://a/2"]}, source="kb1"),
            EntityDescription("http://a/2", {"p": ["y"]}, source="kb1"),
            EntityDescription("http://a/3", {"p": ["z"]}, source="kb1"),
            EntityDescription("http://a/4", {"p": ["w"]}, source="kb1"),
        ],
        name="kb1",
    )
    kb2 = EntityCollection(
        [
            EntityDescription("http://b/1", {"q": ["x"], "s": ["http://b/2"]}, source="kb2"),
            EntityDescription("http://b/2", {"q": ["y"]}, source="kb2"),
            EntityDescription("http://b/3", {"q": ["z"]}, source="kb2"),
            EntityDescription("http://b/4", {"q": ["w"]}, source="kb2"),
        ],
        name="kb2",
    )
    gold = GoldStandard.from_pairs(
        [(f"http://a/{i}", f"http://b/{i}") for i in range(1, 5)]
    )
    return kb1, kb2, gold


def edges_for(gold, extra=()):  # candidate edges: all gold + distractors
    edges = [WeightedEdge(left, right, 1.0) for left, right in sorted(gold.matches)]
    edges.extend(WeightedEdge(a, b, w) for a, b, w in extra)
    return edges


class TestResolutionContext:
    def test_requires_collections(self):
        with pytest.raises(ValueError):
            ResolutionContext([])

    def test_description_lookup(self):
        kb1, kb2, _ = simple_world()
        context = ResolutionContext([kb1, kb2])
        assert context.description("http://a/1") is not None
        assert context.description("ghost") is None

    def test_source_and_same_source(self):
        kb1, kb2, _ = simple_world()
        context = ResolutionContext([kb1, kb2])
        assert context.source_of("http://a/1") == "kb1"
        assert context.same_source("http://a/1", "http://a/2")
        assert not context.same_source("http://a/1", "http://b/1")
        assert not context.same_source("ghost", "ghost2")

    def test_neighbors_routed_to_home_collection(self):
        kb1, kb2, _ = simple_world()
        context = ResolutionContext([kb1, kb2])
        assert context.neighbors("http://a/1") == ["http://a/2"]
        assert context.inverse_neighbors("http://b/2") == ["http://b/1"]


class TestRun:
    def test_resolves_everything_without_budget(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        result = engine.run(edges_for(gold), [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 4
        assert result.curve.final("recall") == 1.0

    def test_budget_respected(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches), budget=CostBudget(2)
        )
        result = engine.run(edges_for(gold), [kb1, kb2], gold=gold)
        assert result.comparisons_executed == 2
        assert result.budget.exhausted

    def test_benefit_accumulates(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        result = engine.run(edges_for(gold), [kb1, kb2])
        assert result.benefit_total == pytest.approx(4.0)

    def test_duplicate_edges_not_reexecuted(self):
        kb1, kb2, gold = simple_world()
        edges = edges_for(gold) + edges_for(gold)
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        result = engine.run(edges, [kb1, kb2])
        assert result.comparisons_executed == 4

    def test_curve_checkpoints_recorded(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches), checkpoint_every=1
        )
        result = engine.run(edges_for(gold), [kb1, kb2], gold=gold)
        assert len(result.curve) >= 5  # initial + one per comparison
        recall = result.curve.series["recall"]
        assert recall == sorted(recall)  # non-decreasing

    def test_gold_never_affects_decisions(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        with_gold = engine.run(edges_for(gold), [kb1, kb2], gold=gold)
        without_gold = engine.run(edges_for(gold), [kb1, kb2])
        assert with_gold.matched_pairs() == without_gold.matched_pairs()

    def test_label_defaults_to_benefit_name(self):
        kb1, kb2, gold = simple_world()
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        result = engine.run(edges_for(gold), [kb1, kb2])
        assert result.curve.label == "quantity"

    def test_invalid_checkpoint_period(self):
        with pytest.raises(ValueError):
            ProgressiveER(matcher=OracleMatcher(set()), checkpoint_every=0)


class TestUpdatePhase:
    def test_discovered_matches_counted(self):
        kb1, kb2, gold = simple_world()
        # The (1,1) pair is blocked; (2,2) is NOT blocked but is reachable
        # through the update phase: 1-1 match propagates to neighbours 2/2.
        blocked = [WeightedEdge("http://a/1", "http://b/1", 1.0)]
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches),
            updater=NeighborEvidencePropagator(discovery_weight=0.5),
        )
        result = engine.run(blocked, [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 2
        assert result.discovered_matches == 1
        assert result.discovered_pairs == 1

    def test_without_updater_unblocked_pair_unreachable(self):
        kb1, kb2, gold = simple_world()
        blocked = [WeightedEdge("http://a/1", "http://b/1", 1.0)]
        engine = ProgressiveER(matcher=OracleMatcher(gold.matches))
        result = engine.run(blocked, [kb1, kb2], gold=gold)
        assert result.match_graph.match_count == 1

    def test_scheduling_operations_charged(self):
        kb1, kb2, gold = simple_world()
        blocked = [WeightedEdge("http://a/1", "http://b/1", 1.0)]
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches),
            budget=CostBudget(100, scheduling_cost_weight=0.01),
            updater=NeighborEvidencePropagator(),
        )
        result = engine.run(blocked, [kb1, kb2])
        assert result.budget.scheduling_operations > 0
        assert result.budget.consumed > result.comparisons_executed
