"""Tests for neighbour-evidence propagation (the update phase)."""

from __future__ import annotations

import pytest

from repro.core.benefit import QuantityBenefit
from repro.core.engine import ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.core.updater import NeighborEvidencePropagator
from repro.matching.matcher import MatchDecision
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def film_context() -> ResolutionContext:
    """Two KBs: films referencing their directors."""
    kb1 = EntityCollection(
        [
            EntityDescription(
                "http://a/film1", {"director": ["http://a/dir"]}, source="kb1"
            ),
            EntityDescription(
                "http://a/film2", {"director": ["http://a/dir"]}, source="kb1"
            ),
            EntityDescription("http://a/dir", {"name": ["dee"]}, source="kb1"),
        ],
        name="kb1",
    )
    kb2 = EntityCollection(
        [
            EntityDescription(
                "http://b/film1", {"maker": ["http://b/dir"]}, source="kb2"
            ),
            EntityDescription(
                "http://b/film2", {"maker": ["http://b/dir"]}, source="kb2"
            ),
            EntityDescription("http://b/dir", {"label": ["dee"]}, source="kb2"),
        ],
        name="kb2",
    )
    return ResolutionContext([kb1, kb2])


def director_match() -> MatchDecision:
    return MatchDecision("http://a/dir", "http://b/dir", 1.0, True)


class TestPropagation:
    def test_boosts_queued_neighbor_pairs(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        scheduler.schedule("http://a/film1", "http://b/film1", 1.0)
        scheduler.schedule("http://a/film2", "http://b/film2", 1.0)
        propagator = NeighborEvidencePropagator(boost_factor=2.0, discovery_weight=0)
        operations = propagator.on_match(director_match(), scheduler, context)
        # Inverse neighbours of the directors are film1/film2 on each side:
        # 2x2 cross pairs, all eligible.
        assert operations == 4
        assert propagator.boosted == 2
        assert scheduler.peek()[1] == pytest.approx(3.0)

    def test_discovers_unblocked_pairs(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator(discovery_weight=0.7)
        propagator.on_match(director_match(), scheduler, context)
        assert propagator.discovered == 4
        assert len(scheduler) == 4
        assert scheduler.discovered_pairs == 4

    def test_discovery_disabled(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator(discovery_weight=0.0)
        propagator.on_match(director_match(), scheduler, context)
        assert len(scheduler) == 0

    def test_non_match_ignored(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator()
        decision = MatchDecision("http://a/dir", "http://b/dir", 0.1, False)
        assert propagator.on_match(decision, scheduler, context) == 0

    def test_same_source_pairs_skipped(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator()
        propagator.on_match(director_match(), scheduler, context)
        for pair, _ in scheduler.queued_pairs():
            assert not context.same_source(pair[0], pair[1])

    def test_already_matched_neighbors_skipped(self):
        context = film_context()
        context.match_graph.record(
            MatchDecision("http://a/film1", "http://b/film1", 1.0, True)
        )
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator()
        propagator.on_match(director_match(), scheduler, context)
        assert ("http://a/film1", "http://b/film1") not in scheduler

    def test_fanout_cap(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator(max_neighbor_pairs=1)
        operations = propagator.on_match(director_match(), scheduler, context)
        assert operations <= 1

    def test_outgoing_neighbors_used_for_films(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator(discovery_weight=0.5)
        film_match = MatchDecision("http://a/film1", "http://b/film1", 1.0, True)
        propagator.on_match(film_match, scheduler, context)
        # The films' out-neighbours are the directors.
        assert ("http://a/dir", "http://b/dir") in scheduler

    def test_inverse_neighbors_can_be_disabled(self):
        context = film_context()
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator(use_inverse_neighbors=False)
        operations = propagator.on_match(director_match(), scheduler, context)
        # Directors have no out-neighbours, so nothing propagates.
        assert operations == 0

    def test_no_neighbors_no_operations(self):
        collection = EntityCollection(
            [
                EntityDescription("http://a/x", {"p": ["v"]}, source="kb1"),
                EntityDescription("http://b/y", {"p": ["v"]}, source="kb2"),
            ]
        )
        context = ResolutionContext([collection])
        scheduler = ComparisonScheduler(QuantityBenefit(), context)
        propagator = NeighborEvidencePropagator()
        decision = MatchDecision("http://a/x", "http://b/y", 1.0, True)
        assert propagator.on_match(decision, scheduler, context) == 0


class TestValidation:
    def test_negative_boost_rejected(self):
        with pytest.raises(ValueError):
            NeighborEvidencePropagator(boost_factor=-1)

    def test_negative_discovery_rejected(self):
        with pytest.raises(ValueError):
            NeighborEvidencePropagator(discovery_weight=-0.1)

    def test_zero_fanout_rejected(self):
        with pytest.raises(ValueError):
            NeighborEvidencePropagator(max_neighbor_pairs=0)
