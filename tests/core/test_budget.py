"""Tests for the cost budget."""

from __future__ import annotations

import pytest

from repro.core.budget import CostBudget


class TestBasics:
    def test_unlimited_by_default(self):
        budget = CostBudget()
        assert not budget.exhausted
        assert budget.remaining == float("inf")

    def test_charging_comparisons(self):
        budget = CostBudget(max_cost=3)
        budget.charge_comparison()
        budget.charge_comparison()
        assert budget.comparisons_executed == 2
        assert budget.consumed == 2

    def test_exhaustion(self):
        budget = CostBudget(max_cost=2)
        budget.charge_comparison()
        assert not budget.exhausted
        budget.charge_comparison()
        assert budget.exhausted

    def test_charging_past_budget_raises(self):
        budget = CostBudget(max_cost=1)
        budget.charge_comparison()
        with pytest.raises(RuntimeError):
            budget.charge_comparison()

    def test_remaining(self):
        budget = CostBudget(max_cost=5)
        budget.charge_comparison()
        assert budget.remaining == 4.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CostBudget(max_cost=-1)

    def test_zero_budget_immediately_exhausted(self):
        assert CostBudget(max_cost=0).exhausted


class TestSchedulingCost:
    def test_free_by_default(self):
        budget = CostBudget(max_cost=10)
        budget.charge_scheduling(1000)
        assert budget.consumed == 0.0
        assert not budget.exhausted

    def test_weighted_scheduling_consumes(self):
        budget = CostBudget(max_cost=10, scheduling_cost_weight=0.1)
        budget.charge_scheduling(50)
        assert budget.consumed == pytest.approx(5.0)

    def test_scheduling_can_exhaust(self):
        budget = CostBudget(max_cost=2, scheduling_cost_weight=1.0)
        budget.charge_scheduling(2)
        assert budget.exhausted

    def test_negative_operations_rejected(self):
        with pytest.raises(ValueError):
            CostBudget().charge_scheduling(-1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CostBudget(scheduling_cost_weight=-0.5)


class TestCopy:
    def test_copy_is_fresh(self):
        budget = CostBudget(max_cost=5, scheduling_cost_weight=0.2)
        budget.charge_comparison()
        clone = budget.copy()
        assert clone.max_cost == 5
        assert clone.scheduling_cost_weight == 0.2
        assert clone.comparisons_executed == 0

    def test_repr_readable(self):
        assert "comparisons" in repr(CostBudget(max_cost=5))
        assert "∞" in repr(CostBudget())
