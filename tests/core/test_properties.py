"""Property-based tests of core invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benefit import QuantityBenefit
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER, ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import OracleMatcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def make_context(n: int = 40) -> ResolutionContext:
    collection = EntityCollection(
        [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(n)],
        name="kb",
    )
    return ResolutionContext([collection])


edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20), st.floats(0.01, 100)),
    max_size=60,
).map(
    lambda raw: [
        WeightedEdge(f"http://e/{min(a, b)}", f"http://e/{max(a, b)}", w)
        for a, b, w in raw
        if a != b
    ]
)


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_quantity_pop_order_is_weight_order(self, edges):
        scheduler = ComparisonScheduler(QuantityBenefit(), make_context())
        scheduler.add_edges(edges)
        popped = []
        while scheduler:
            popped.append(scheduler.pop()[1])
        assert popped == sorted(popped, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_duplicate_edges_keep_max_weight(self, edges):
        scheduler = ComparisonScheduler(QuantityBenefit(), make_context())
        scheduler.add_edges(edges)
        best: dict[tuple[str, str], float] = {}
        for edge in edges:
            best[edge.pair] = max(best.get(edge.pair, 0.0), edge.weight)
        assert len(scheduler) == len(best)
        for pair, weight in best.items():
            assert scheduler.base_weight(*pair) == pytest.approx(weight)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists, st.floats(0.1, 10))
    def test_boost_only_raises_priority(self, edges, delta):
        scheduler = ComparisonScheduler(QuantityBenefit(), make_context())
        scheduler.add_edges(edges)
        if not scheduler:
            return
        pair, before = scheduler.peek()
        scheduler.boost(pair[0], pair[1], delta)
        _, after = scheduler.peek()
        assert after >= before


class TestBudgetProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 50), st.integers(0, 100))
    def test_comparisons_never_exceed_budget(self, max_cost, available):
        budget = CostBudget(max_cost)
        executed = 0
        for _ in range(available):
            if budget.exhausted:
                break
            budget.charge_comparison()
            executed += 1
        assert executed == min(max_cost, available)
        assert budget.consumed <= max_cost

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 30),
        st.lists(st.integers(1, 20), max_size=20),
        st.floats(0.0, 1.0),
    )
    def test_scheduling_weight_accounting(self, max_cost, ops, weight):
        budget = CostBudget(max_cost, scheduling_cost_weight=weight)
        for count in ops:
            budget.charge_scheduling(count)
        assert budget.consumed == pytest.approx(sum(ops) * weight)


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(edge_lists, st.integers(0, 30), st.sets(st.integers(0, 20), max_size=10))
    def test_budget_and_recall_invariants(self, edges, max_cost, match_ids):
        gold = GoldStandard.from_pairs(
            [(f"http://e/{i}", f"http://e/{(i + 1) % 21}") for i in match_ids if i != (i + 1) % 21]
        )
        engine = ProgressiveER(
            matcher=OracleMatcher(gold.matches), budget=CostBudget(max_cost)
        )
        collection = EntityCollection(
            [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(21)],
            name="kb",
        )
        result = engine.run(edges, [collection], gold=gold if gold.matches else None)
        # Budget invariant.
        assert result.comparisons_executed <= max_cost
        distinct_pairs = {e.pair for e in edges}
        assert result.comparisons_executed <= len(distinct_pairs)
        # Matches are a subset of executed comparisons and of gold.
        assert len(result.matched_pairs()) <= result.comparisons_executed
        assert result.matched_pairs() <= gold.matches
        # Recall series is non-decreasing.
        recall = result.curve.series.get("recall", [])
        assert recall == sorted(recall)
