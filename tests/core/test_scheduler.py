"""Tests for the comparison scheduler."""

from __future__ import annotations

import pytest

from repro.core.benefit import EntityCoverageBenefit, QuantityBenefit
from repro.core.engine import ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.matching.matcher import MatchDecision
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def make_context() -> ResolutionContext:
    collection = EntityCollection(
        [EntityDescription(f"http://e/{i}", {"p": [f"v{i}"]}) for i in range(6)],
        name="kb",
    )
    return ResolutionContext([collection])


def make_scheduler(benefit=None) -> ComparisonScheduler:
    return ComparisonScheduler(benefit or QuantityBenefit(), make_context())


class TestScheduling:
    def test_add_edges_and_pop_order(self):
        scheduler = make_scheduler()
        scheduler.add_edges(
            [
                WeightedEdge("http://e/0", "http://e/1", 1.0),
                WeightedEdge("http://e/2", "http://e/3", 5.0),
                WeightedEdge("http://e/4", "http://e/5", 3.0),
            ]
        )
        assert len(scheduler) == 3
        pair, priority = scheduler.pop()
        assert pair == ("http://e/2", "http://e/3")
        assert priority == pytest.approx(5.0)

    def test_duplicate_edges_keep_max_weight(self):
        scheduler = make_scheduler()
        assert scheduler.schedule("a", "b", 1.0) is True
        assert scheduler.schedule("b", "a", 3.0) is False
        assert scheduler.base_weight("a", "b") == 3.0
        assert len(scheduler) == 1

    def test_lower_duplicate_ignored(self):
        scheduler = make_scheduler()
        scheduler.schedule("a", "b", 3.0)
        scheduler.schedule("a", "b", 1.0)
        assert scheduler.base_weight("a", "b") == 3.0

    def test_popped_pairs_not_resurrected(self):
        scheduler = make_scheduler()
        scheduler.schedule("a", "b", 1.0)
        scheduler.pop()
        assert scheduler.schedule("a", "b", 9.0) is False
        assert len(scheduler) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            make_scheduler().pop()

    def test_contains_and_peek(self):
        scheduler = make_scheduler()
        scheduler.schedule("a", "b", 2.0)
        assert ("a", "b") in scheduler
        assert scheduler.peek()[0] == ("a", "b")


class TestBoosting:
    def test_boost_reorders(self):
        scheduler = make_scheduler()
        scheduler.schedule("a", "b", 1.0)
        scheduler.schedule("c", "d", 2.0)
        assert scheduler.boost("a", "b", 5.0) is True
        assert scheduler.pop()[0] == ("a", "b")

    def test_boost_unqueued_returns_false(self):
        scheduler = make_scheduler()
        assert scheduler.boost("x", "y", 1.0) is False

    def test_discover_counts_new_pairs(self):
        scheduler = make_scheduler()
        scheduler.schedule("a", "b", 1.0)
        assert scheduler.discover("c", "d", 0.5) is True
        assert scheduler.discovered_pairs == 1
        # Re-discovering a queued pair raises weight but is not "new".
        assert scheduler.discover("a", "b", 2.0) is False
        assert scheduler.discovered_pairs == 1

    def test_refresh_recomputes_benefit(self):
        context = make_context()
        scheduler = ComparisonScheduler(EntityCoverageBenefit(), context)
        scheduler.schedule("http://e/0", "http://e/1", 2.0)
        initial = scheduler.peek()[1]
        # Resolving e0 elsewhere drops the pair's coverage estimate.
        context.match_graph.record(
            MatchDecision("http://e/0", "http://e/5", 1.0, True)
        )
        assert scheduler.refresh("http://e/0", "http://e/1") is True
        assert scheduler.peek()[1] < initial

    def test_refresh_unqueued_returns_false(self):
        assert make_scheduler().refresh("x", "y") is False


class TestBenefitWeighting:
    def test_priority_multiplies_weight_and_estimate(self):
        context = make_context()
        scheduler = ComparisonScheduler(EntityCoverageBenefit(), context)
        # Resolve e0-e1; pairs touching them become low priority.
        context.match_graph.record(MatchDecision("http://e/0", "http://e/1", 1.0, True))
        scheduler.schedule("http://e/0", "http://e/2", 2.0)  # estimate 0.5
        scheduler.schedule("http://e/3", "http://e/4", 1.5)  # estimate 1.0
        # 1.5 * 1.0 > 2.0 * 0.5 -> the unresolved pair wins.
        assert scheduler.pop()[0] == ("http://e/3", "http://e/4")

    def test_quantity_benefit_is_pure_weight_order(self):
        scheduler = make_scheduler(QuantityBenefit())
        scheduler.schedule("a", "b", 1.0)
        scheduler.schedule("c", "d", 2.0)
        assert scheduler.pop()[1] == pytest.approx(2.0)
