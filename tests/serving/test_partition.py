"""Candidate-space partitioning: stability, totality, coverage shape."""

from __future__ import annotations

import pytest

from repro.serving import owner_of, split_by_owner
from repro.utils.rng import stable_hash_int


class TestOwnerOf:
    def test_matches_stable_hash(self):
        for entity_id in range(200):
            assert owner_of(entity_id, 4) == stable_hash_int(entity_id, 4)

    def test_within_range(self):
        for n in (1, 2, 3, 7, 8):
            assert all(0 <= owner_of(i, n) < n for i in range(500))

    def test_single_partition_owns_everything(self):
        assert {owner_of(i, 1) for i in range(100)} == {0}

    def test_spread_is_not_degenerate(self):
        owners = [owner_of(i, 4) for i in range(400)]
        counts = [owners.count(p) for p in range(4)]
        assert all(count > 0 for count in counts)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            owner_of(3, 0)


class TestSplitByOwner:
    def test_every_partition_present_even_when_empty(self):
        split = split_by_owner([], 5)
        assert sorted(split) == [0, 1, 2, 3, 4]
        assert all(ids == [] for ids in split.values())

    def test_partition_of_each_candidate(self):
        candidates = list(range(123))
        split = split_by_owner(candidates, 3)
        for partition, ids in split.items():
            assert all(owner_of(i, 3) == partition for i in ids)

    def test_disjoint_and_complete(self):
        candidates = list(range(97))
        split = split_by_owner(candidates, 4)
        recombined = [i for ids in split.values() for i in ids]
        assert sorted(recombined) == candidates

    def test_order_preserved_within_partition(self):
        candidates = [9, 5, 13, 2, 30, 21, 44]
        split = split_by_owner(candidates, 2)
        for ids in split.values():
            positions = [candidates.index(i) for i in ids]
            assert positions == sorted(positions)
