"""Fault-spec parsing and open-loop report mechanics (no processes)."""

from __future__ import annotations

import pytest

from repro.serving import Fault, LoadReport, parse_fault, spawn_budgets


class TestParseFault:
    def test_kill_at_time(self):
        fault = parse_fault("kill:1@t=5")
        assert (fault.kind, fault.shard, fault.at_s) == ("kill", 1, 5.0)
        assert fault.at_event is None and not fault.at_spawn

    def test_kill_at_event(self):
        fault = parse_fault("kill:2@e=120")
        assert (fault.kind, fault.shard, fault.at_event) == ("kill", 2, 120)

    def test_stall_with_duration(self):
        fault = parse_fault("stall:0@t=2:dur=0.8")
        assert fault.kind == "stall"
        assert fault.duration_s == pytest.approx(0.8)

    def test_freeze(self):
        fault = parse_fault("freeze:0@t=3")
        assert fault.kind == "freeze" and fault.at_s == 3.0

    def test_torn_at_spawn(self):
        fault = parse_fault("torn:1@spawn:budget=4096")
        assert fault.kind == "torn" and fault.at_spawn
        assert fault.budget == 4096

    def test_round_trips_through_spec(self):
        for spec in (
            "kill:1@t=5", "kill:1@e=120", "stall:0@t=2:dur=0.8",
            "freeze:0@t=3", "torn:1@spawn:budget=4096",
        ):
            assert parse_fault(spec).spec() == spec

    @pytest.mark.parametrize("bad", [
        "kill:1",                      # no trigger
        "explode:1@t=5",               # unknown kind
        "kill:1@x=5",                  # unknown trigger
        "stall:0@t=2",                 # stall without duration
        "torn:1@t=5:budget=10",        # torn must be @spawn
        "torn:1@spawn",                # torn without budget
        "kill:1@spawn",                # @spawn is torn-only
        "kill:1@t=5:volume=11",        # unknown option
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)


class TestSpawnBudgets:
    def test_collects_only_torn_faults(self):
        faults = [
            parse_fault("kill:0@t=1"),
            parse_fault("torn:1@spawn:budget=512"),
            parse_fault("torn:2@spawn:budget=1024"),
        ]
        assert spawn_budgets(faults) == {1: 512, 2: 1024}


class TestLoadReport:
    def make_report(self):
        # Three one-second periods; a degraded burst in the second one.
        samples = [
            (0, 0.1, 0.002, False),
            (1, 0.6, 0.004, False),
            (2, 1.2, 0.250, True),
            (3, 1.7, 0.180, True),
            (4, 2.3, 0.003, False),
            (5, 2.8, 0.005, False),
        ]
        return LoadReport(
            duration_s=3.0, events=6, queries=6, degraded_queries=2,
            achieved_eps=2.0, target_eps=2.0, samples=samples, fault_log=[],
        )

    def test_degraded_after_counts_from_cutoff(self):
        report = self.make_report()
        assert report.degraded_after(0.0) == 2
        assert report.degraded_after(1.5) == 1
        assert report.degraded_after(2.0) == 0

    def test_period_rows_bucket_by_schedule(self):
        rows = self.make_report().period_rows(period_s=1.0)
        assert [row["period"] for row in rows] == ["0-1s", "1-2s", "2-3s"]
        assert [row["ops"] for row in rows] == ["2", "2", "2"]
        assert [row["degraded"] for row in rows] == ["0", "2", "0"]
        # The degraded period's tail is visibly worse.
        assert float(rows[1]["p99_ms"]) > float(rows[0]["p99_ms"])

    def test_latencies_series(self):
        report = self.make_report()
        assert len(report.latencies_s()) == 6
        assert max(report.latencies_s()) == pytest.approx(0.250)
