"""Supervisor unit behavior over fake shard handles (no processes)."""

from __future__ import annotations

import random

import pytest

from repro.serving import (
    DEAD,
    LIVE,
    RECOVERING,
    HedgePolicy,
    RetryPolicy,
    ServingStats,
    Supervisor,
)


class FakeHandle:
    """A ShardHandle stand-in with scriptable liveness."""

    def __init__(self, shard_id):
        self.shard_id = shard_id
        self.state = LIVE
        self.alive = True
        self.heartbeat_age = 0.0
        self.spawn_count = 1
        self.down_since = None
        self.killed = 0

    def is_alive(self):
        return self.alive

    def heartbeat_age_s(self, _now=None):
        return self.heartbeat_age

    def kill(self):
        self.killed += 1
        self.alive = False

    def spawn(self, crash_budget=None):
        self.alive = True
        self.spawn_count += 1
        self.state = RECOVERING


def make_supervisor(n=3, **kwargs):
    handles = [FakeHandle(i) for i in range(n)]
    stats = ServingStats()
    supervisor = Supervisor(handles, stats=stats, **kwargs)
    return supervisor, handles, stats


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3, jitter=0.0)
        rng = random.Random(1)
        assert policy.backoff_s(1, rng) == pytest.approx(0.1)
        assert policy.backoff_s(2, rng) == pytest.approx(0.2)
        assert policy.backoff_s(3, rng) == pytest.approx(0.3)
        assert policy.backoff_s(9, rng) == pytest.approx(0.3)

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 6):
            delay = policy.backoff_s(attempt, rng)
            base = min(0.1 * 2 ** (attempt - 1), policy.max_delay_s)
            assert base <= delay <= base * 1.5


class TestHedgePolicy:
    def test_default_delay_before_enough_samples(self):
        policy = HedgePolicy(min_samples=5, default_delay_s=0.08)
        assert policy.delay_s([0.01] * 4) == 0.08

    def test_quantile_scaled_after_warmup(self):
        policy = HedgePolicy(
            min_samples=5, quantile=0.5, multiplier=2.0, min_delay_s=0.0
        )
        latencies = sorted([0.01, 0.02, 0.03, 0.04, 0.05])
        # index = int(0.5 * 5) = 2 → the 0.03 sample, doubled.
        assert policy.delay_s(latencies) == pytest.approx(2.0 * 0.03)

    def test_floor_applies(self):
        policy = HedgePolicy(min_samples=1, multiplier=1.0, min_delay_s=0.5)
        assert policy.delay_s([0.001]) == 0.5


class TestSupervision:
    def test_dead_shard_respawned_and_counted(self):
        supervisor, handles, stats = make_supervisor()
        handles[1].alive = False
        supervisor.tick(force=True)
        assert handles[1].state == RECOVERING
        assert handles[1].spawn_count == 2
        assert stats.shard_deaths == 1
        assert stats.respawns == 1

    def test_stale_heartbeat_is_killed_then_respawned(self):
        supervisor, handles, _ = make_supervisor(heartbeat_deadline_s=1.0)
        handles[0].heartbeat_age = 5.0
        supervisor.tick(force=True)
        assert handles[0].killed == 1
        assert handles[0].state == RECOVERING
        assert ("stuck" in [e for _, e, _ in supervisor.events])

    def test_no_respawn_when_disabled(self):
        supervisor, handles, stats = make_supervisor(auto_respawn=False)
        handles[2].alive = False
        supervisor.tick(force=True)
        assert handles[2].state == DEAD
        assert stats.respawns == 0

    def test_crash_loop_exhausts_respawn_budget(self):
        supervisor, handles, _ = make_supervisor(max_respawns=3)
        handle = handles[0]
        for _ in range(10):
            handle.alive = False
            supervisor.tick(force=True)
            if handle.state == DEAD:
                break
            # Dies again while still RECOVERING (never reaches ready).
        assert handle.state == DEAD
        assert handle.spawn_count <= 4
        assert ("gave-up" in [e for _, e, _ in supervisor.events])

    def test_on_ready_redrives_before_going_live(self):
        order = []
        supervisor, handles, stats = make_supervisor()
        supervisor.on_respawn = lambda shard_id, version: order.append(
            ("redrive", handles[shard_id].state)
        )
        handles[1].alive = False
        supervisor.tick(force=True)
        handles[1].down_since = 0.0
        supervisor.on_ready(1, version=0)
        # The re-drive callback ran while the shard was still RECOVERING.
        assert order == [("redrive", RECOVERING)]
        assert handles[1].state == LIVE
        assert stats.time_to_healthy_hist.count == 1

    def test_on_ready_ignores_live_shards(self):
        supervisor, handles, _ = make_supervisor()
        called = []
        supervisor.on_respawn = lambda *a: called.append(a)
        supervisor.on_ready(0, version=3)
        assert called == []

    def test_pick_other_prefers_lowest_live(self):
        supervisor, handles, _ = make_supervisor(n=4)
        handles[0].state = DEAD
        assert supervisor.pick_other({2}) == 1
        assert supervisor.pick_other({1, 2, 3}) is None

    def test_all_live(self):
        supervisor, handles, _ = make_supervisor()
        assert supervisor.all_live()
        handles[0].state = RECOVERING
        assert not supervisor.all_live()
