"""Property tests: the shard merge plan is bit-identical to one store.

:class:`~repro.serving.local.LocalTier` executes the router's exact
query plan — split candidates by partition owner, weigh per partition,
merge, prune, match — over one in-process replica.  Hypothesis drives
shard counts (1–8), merge interleavings and weighting schemes through
it and demands byte-equality with a plain single-store
:class:`~repro.stream.resolver.StreamResolver` on the same events; a
separate case pins the degradation contract (down partitions drop their
candidates, coverage is accounted, nothing is silent).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.description import EntityDescription
from repro.serving import LocalTier, owner_of
from repro.stream import StreamResolver
from repro.stream.store import StreamingEntityStore

SCHEMES = ["CBS", "ECBS", "JS", "EJS", "ARCS", "X2"]
TOKENS = ["alpha", "beta", "gamma", "delta", "kappa", "sigma"]


descriptions = st.builds(
    lambda i, props: EntityDescription(
        f"http://e/{i}",
        {"p": [" ".join(sorted(props))]} if props else {"q": ["solo"]},
    ),
    st.integers(0, 11),
    st.sets(st.sampled_from(TOKENS), max_size=4),
)


def _resolve_both(tier, resolver, arrivals, scheme, orders):
    """Resolve every arrival on both sides, asserting bit-identity."""
    for position, description in enumerate(arrivals):
        order = orders[position % len(orders)] if orders else None
        got = tier.resolve(description.copy(), scheme=scheme, order=order)
        want = resolver.resolve(description.copy(), scheme=scheme)
        assert got.matches == want.matches
        assert got.candidates == want.candidates
        assert got.scheduled == want.scheduled
        assert got.comparisons == want.comparisons
        assert got.skipped_decided == want.skipped_decided
        assert not got.degraded
        assert got.coverage == 1.0


@settings(max_examples=40, deadline=None)
@given(
    arrivals=st.lists(descriptions, min_size=1, max_size=12),
    n_partitions=st.integers(1, 8),
    scheme=st.sampled_from(SCHEMES),
    data=st.data(),
)
def test_merge_is_bit_identical_for_any_interleaving(
    arrivals, n_partitions, scheme, data
):
    tier = LocalTier(n_partitions, clean_clean=False)
    resolver = StreamResolver(StreamingEntityStore(sources=("stream",)))
    orders = [
        data.draw(st.permutations(range(n_partitions)))
        for _ in range(min(3, len(arrivals)))
    ]
    _resolve_both(tier, resolver, arrivals, scheme, orders)


@settings(max_examples=25, deadline=None)
@given(
    arrivals=st.lists(descriptions, min_size=2, max_size=10),
    scheme=st.sampled_from(SCHEMES),
    down=st.integers(0, 3),
)
def test_degraded_partition_drops_only_its_candidates(arrivals, scheme, down):
    """With one partition down: degraded flag set, coverage accounted,
    and the merge equals a full merge minus that partition's owners."""
    n_partitions = 4
    healthy = LocalTier(n_partitions, clean_clean=False)
    degraded = LocalTier(n_partitions, clean_clean=False)
    degraded.down = {down}
    for description in arrivals:
        healthy.ingest(description.copy())
        degraded.ingest(description.copy())
    for description in arrivals:
        full = healthy.resolve(description.copy(), scheme=scheme, ingest=False)
        partial = degraded.resolve(
            description.copy(), scheme=scheme, ingest=False
        )
        assert partial.degraded
        assert partial.coverage == pytest.approx(3 / 4)
        assert partial.missing_partitions == (down,)
        expected = {
            entity_id: weight
            for entity_id, weight in full.weights.items()
            if owner_of(entity_id, n_partitions) != down
        }
        assert partial.weights == expected


def test_all_partitions_down_yields_empty_but_labelled_result():
    tier = LocalTier(2, clean_clean=False)
    tier.ingest(EntityDescription("http://e/1", {"p": ["alpha beta"]}))
    tier.down = {0, 1}
    result = tier.resolve(
        EntityDescription("http://e/2", {"p": ["alpha beta"]})
    )
    assert result.degraded
    assert result.coverage == 0.0
    assert result.missing_partitions == (0, 1)
    assert result.matches == []
    assert result.weights == {}


def test_order_must_be_a_permutation():
    tier = LocalTier(3, clean_clean=False)
    with pytest.raises(ValueError, match="permutation"):
        tier.resolve(
            EntityDescription("http://e/1", {"p": ["alpha"]}), order=[0, 1]
        )
