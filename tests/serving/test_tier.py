"""The real multiprocessing tier: equivalence, faults, recovery.

Each test spawns actual shard processes (fork), injects the fault it
studies — SIGKILL death, SIGSTOP freeze, main-loop stall, torn
durability writes — and pins the robustness contract: queries keep
answering (failover), respawned shards catch up (WAL recovery +
re-drive), results stay bit-identical to a single-store oracle, and
when recovery is disabled the degradation is labelled, never silent.

Process tests are kept small (dozens of events) so the whole module
stays a few seconds; scale behavior lives in the benchmark.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import load_restaurants
from repro.serving import messages
from repro.serving import (
    DEAD,
    LIVE,
    HedgePolicy,
    RetryPolicy,
    Router,
    parse_fault,
    run_open_loop,
    verify_equivalence,
)
from repro.stream import StreamResolver
from repro.stream.store import StreamingEntityStore
from repro.stream.workload import uniform_workload

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="the serving tier needs fork + POSIX signals"
)


@pytest.fixture(scope="module")
def events():
    kb1, kb2, _ = load_restaurants()
    return uniform_workload(kb1, kb2, query_every=4, seed=3)


def drive(router, events):
    """Replay events through the tier; returns the non-delete results."""
    results = []
    for event in events:
        if event.kind == "delete":
            router.delete(event.description.uri)
        else:
            results.append(
                router.resolve(
                    event.description,
                    event.source,
                    ingest=event.kind == "insert",
                )
            )
    return results


def oracle_results(events):
    resolver = StreamResolver(StreamingEntityStore(sources=("kb1", "kb2")))
    out = []
    for event in events:
        if event.kind == "delete":
            resolver.delete(event.description.uri)
        else:
            out.append(
                resolver.resolve(
                    event.description,
                    source=event.source,
                    ingest=event.kind == "insert",
                )
            )
    return out


def queries_of(events, limit=15):
    return [
        (event.description, event.source)
        for event in events
        if event.kind != "delete"
    ][:limit]


class TestHealthyTier:
    def test_live_path_bit_identical_to_single_store(self, events):
        with Router(2, query_timeout_s=10.0) as router:
            got = drive(router, events)
        want = oracle_results(events)
        assert len(got) == len(want)
        for tier, oracle in zip(got, want):
            assert tier.matches == oracle.matches
            assert tier.candidates == oracle.candidates
            assert tier.comparisons == oracle.comparisons
            assert not tier.degraded

    def test_verify_equivalence_passes(self, events):
        with Router(3, query_timeout_s=10.0) as router:
            drive(router, events[:40])
            report = verify_equivalence(router, queries_of(events[:40]))
        assert report.ok, report.mismatches
        assert report.checked == len(queries_of(events[:40]))

    def test_sync_reaches_all_shards(self, events):
        with Router(2, query_timeout_s=10.0) as router:
            for event in events[:20]:
                if event.kind != "delete":
                    router.ingest(event.description, event.source)
            assert router.sync(timeout_s=10.0)


class TestKillAndRecovery:
    def test_kill_fails_over_without_degradation(self, events):
        with Router(
            2, query_timeout_s=10.0, heartbeat_deadline_s=0.5,
            retry=RetryPolicy(attempts=3, timeout_s=0.5),
        ) as router:
            results = []
            for index, event in enumerate(events[:60]):
                if index == 15:
                    router.shards[1].kill()
                if event.kind == "delete":
                    router.delete(event.description.uri)
                else:
                    results.append(
                        router.resolve(
                            event.description, event.source,
                            ingest=event.kind == "insert",
                        )
                    )
            assert all(not r.degraded for r in results)
            assert router.stats.shard_deaths == 1
            assert router.stats.respawns == 1
            assert router.stats.failovers >= 1
            assert router.stats.time_to_healthy_hist.count == 1
            # The respawned shard caught up: full-tier sync + oracle
            # equivalence both hold after recovery.
            report = verify_equivalence(router, queries_of(events[:60]))
            assert report.ok, report.mismatches

    def test_post_recovery_results_match_oracle(self, events):
        subset = events[:50]
        with Router(
            2, query_timeout_s=10.0, heartbeat_deadline_s=0.5,
            retry=RetryPolicy(attempts=3, timeout_s=0.5),
        ) as router:
            got = []
            for index, event in enumerate(subset):
                if index == 10:
                    router.shards[0].kill()
                if event.kind == "delete":
                    router.delete(event.description.uri)
                else:
                    got.append(
                        router.resolve(
                            event.description, event.source,
                            ingest=event.kind == "insert",
                        )
                    )
        want = oracle_results(subset)
        for tier, oracle in zip(got, want):
            assert tier.matches == oracle.matches
            assert tier.comparisons == oracle.comparisons

    def test_freeze_detected_as_stuck_and_respawned(self, events):
        with Router(
            2, query_timeout_s=15.0, heartbeat_deadline_s=0.4,
            retry=RetryPolicy(attempts=4, timeout_s=0.3),
        ) as router:
            for event in events[:10]:
                if event.kind != "delete":
                    router.resolve(
                        event.description, event.source,
                        ingest=event.kind == "insert",
                    )
            router.shards[1].freeze()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                router.pump()
                if any(e == "stuck" for _, e, _ in router.supervisor.events):
                    break
                time.sleep(0.05)
            assert any(
                e == "stuck" for _, e, _ in router.supervisor.events
            ), router.supervisor.events
            assert router.sync(timeout_s=10.0)
            report = verify_equivalence(router, queries_of(events[:10], 5))
            assert report.ok, report.mismatches


class TestGracefulDegradation:
    def test_no_failover_no_respawn_serves_labelled_partials(self, events):
        with Router(
            2, failover=False, auto_respawn=False,
            heartbeat_deadline_s=0.5, query_timeout_s=5.0,
            retry=RetryPolicy(attempts=1, timeout_s=0.2, base_delay_s=0.01),
        ) as router:
            for event in events[:12]:
                if event.kind != "delete":
                    router.ingest(event.description, event.source)
            router.shards[1].kill()
            router.supervisor.tick(force=True)
            assert router.shards[1].state == DEAD
            query = next(e for e in events if e.kind == "query")
            result = router.resolve(
                query.description, query.source, ingest=False
            )
            assert result.degraded
            assert result.coverage == pytest.approx(0.5)
            assert result.missing_partitions == (1,)
            assert router.stats.degraded == 1

    def test_degrade_disabled_raises_instead(self, events):
        with Router(
            2, failover=False, auto_respawn=False, degrade=False,
            heartbeat_deadline_s=0.5, query_timeout_s=5.0,
            retry=RetryPolicy(attempts=1, timeout_s=0.2, base_delay_s=0.01),
        ) as router:
            for event in events[:8]:
                if event.kind != "delete":
                    router.ingest(event.description, event.source)
            router.shards[0].kill()
            router.supervisor.tick(force=True)
            with pytest.raises(RuntimeError, match="unavailable"):
                router.resolve(
                    events[0].description, events[0].source, ingest=False
                )


class TestHedging:
    def test_stall_triggers_hedge_to_other_shard(self, events):
        with Router(
            2, query_timeout_s=15.0,
            hedge=HedgePolicy(
                enabled=True, min_samples=10_000, default_delay_s=0.05
            ),
            retry=RetryPolicy(attempts=2, timeout_s=5.0),
        ) as router:
            for event in events[:12]:
                if event.kind != "delete":
                    router.resolve(
                        event.description, event.source,
                        ingest=event.kind == "insert",
                    )
            assert router.stats.hedges == 0
            # Stall shard 0's main loop well past the hedge delay; its
            # heartbeat keeps beating so it is *slow*, not stuck.
            router.shards[0].send(messages.Stall(1.0))
            query = next(e for e in events if e.kind == "query")
            result = router.resolve(
                query.description, query.source, ingest=False
            )
            assert not result.degraded
            assert router.stats.hedges >= 1
            assert router.stats.hedge_wins >= 1
            assert not any(
                e in ("died", "stuck") for _, e, _ in router.supervisor.events
            )


class TestDurabilityIntegration:
    def test_torn_write_crash_recovers_from_wal(self, events, tmp_path):
        root = str(tmp_path / "tier")
        with Router(
            2, durability_root=root, heartbeat_deadline_s=0.5,
            query_timeout_s=15.0,
            retry=RetryPolicy(attempts=4, timeout_s=0.5),
            crash_budgets={1: 6_000},
        ) as router:
            results = drive(router, events[:60])
            # The budget ran out mid-stream: shard 1 crashed like a
            # power cut and was respawned from its WAL.
            assert router.stats.shard_deaths >= 1
            assert router.stats.respawns >= 1
            assert router.shards[1].spawn_count >= 2
            assert all(not r.degraded for r in results)
            report = verify_equivalence(router, queries_of(events[:60]))
            assert report.ok, report.mismatches
            # The recovered shard's durability dir is the real thing:
            # it reported a recovered version > 0 on its second spawn.
            assert os.path.isdir(os.path.join(root, "shard-1"))

    def test_kill_with_durability_recovers_state_from_disk(
        self, events, tmp_path
    ):
        root = str(tmp_path / "tier")
        with Router(
            2, durability_root=root, heartbeat_deadline_s=0.5,
            query_timeout_s=15.0,
            retry=RetryPolicy(attempts=4, timeout_s=0.5),
        ) as router:
            for event in events[:30]:
                if event.kind != "delete":
                    router.ingest(event.description, event.source)
            assert router.sync(timeout_s=10.0)
            router.shards[0].kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                router.pump()
                if router.shards[0].state == LIVE:
                    break
                time.sleep(0.02)
            assert router.shards[0].state == LIVE
            report = verify_equivalence(router, queries_of(events[:30], 10))
            assert report.ok, report.mismatches


class TestOpenLoopHarness:
    def test_run_with_injected_kill_recovers_cleanly(self, events):
        router = Router(
            2, query_timeout_s=10.0, heartbeat_deadline_s=0.5,
            retry=RetryPolicy(attempts=3, timeout_s=0.5),
        )
        try:
            faults = [parse_fault("kill:1@e=20")]
            report = run_open_loop(
                router, events[:60], rate_eps=400.0, faults=faults,
            )
            assert faults[0].fired
            assert report.fault_log and report.fault_log[0][0] == "kill:1@e=20"
            assert report.queries == len(
                [e for e in events[:60] if e.kind != "delete"]
            )
            recovered_at = max(
                (at - report.start_monotonic
                 for _, e, at in router.supervisor.events if e == "live"),
                default=0.0,
            )
            assert report.degraded_after(recovered_at) == 0
            assert router.stats.respawns == 1
            verdict = verify_equivalence(router, queries_of(events[:60]))
            assert verdict.ok, verdict.mismatches
        finally:
            router.close()

    def test_report_periods_cover_the_run(self, events):
        router = Router(2, query_timeout_s=10.0)
        try:
            report = run_open_loop(router, events[:30], rate_eps=500.0)
            rows = report.period_rows(period_s=0.5)
            assert rows
            assert sum(int(row["ops"]) for row in rows) == report.queries
        finally:
            router.close()


class TestShutdown:
    def test_close_is_idempotent_and_stops_all_shards(self, events):
        router = Router(2, query_timeout_s=10.0)
        drive(router, events[:10])
        pids = [handle.pid for handle in router.shards]
        router.close()
        router.close()
        for handle in router.shards:
            assert not handle.is_alive()
        assert all(pid is not None for pid in pids)
