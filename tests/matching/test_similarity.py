"""Unit and property tests for similarity functions."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.matching.similarity import (
    SimilarityIndex,
    cosine_tfidf,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap_coefficient,
    weighted_jaccard,
)
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription

tokens = st.lists(st.sampled_from("abcdefgh"), max_size=10)
words = st.text(alphabet="abcdz", max_size=12)


class TestSetMeasures:
    def test_jaccard_basic(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_jaccard_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_jaccard_empty(self):
        assert jaccard([], []) == 0.0
        assert jaccard(["a"], []) == 0.0

    def test_dice_basic(self):
        assert dice(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_overlap_coefficient(self):
        assert overlap_coefficient(["a", "b", "c"], ["a"]) == 1.0
        assert overlap_coefficient(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    @given(tokens, tokens)
    def test_symmetry(self, a, b):
        for measure in (jaccard, dice, overlap_coefficient):
            assert measure(a, b) == pytest.approx(measure(b, a))

    @given(tokens, tokens)
    def test_bounds(self, a, b):
        for measure in (jaccard, dice, overlap_coefficient):
            assert 0.0 <= measure(a, b) <= 1.0

    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=10))
    def test_self_similarity_is_one(self, a):
        for measure in (jaccard, dice, overlap_coefficient):
            assert measure(a, a) == 1.0

    @given(tokens, tokens)
    def test_dice_geq_jaccard(self, a, b):
        assert dice(a, b) >= jaccard(a, b) - 1e-12


class TestWeightedJaccard:
    def test_multiset_semantics(self):
        a = Counter({"x": 2, "y": 1})
        b = Counter({"x": 1, "y": 1})
        assert weighted_jaccard(a, b) == pytest.approx(2 / 3)

    def test_empty(self):
        assert weighted_jaccard(Counter(), Counter()) == 0.0

    @given(tokens, tokens)
    def test_matches_jaccard_on_sets(self, a, b):
        set_a, set_b = set(a), set(b)
        counts_a = Counter(dict.fromkeys(set_a, 1))
        counts_b = Counter(dict.fromkeys(set_b, 1))
        assert weighted_jaccard(counts_a, counts_b) == pytest.approx(
            jaccard(set_a, set_b)
        )


class TestCosine:
    def test_plain_cosine_identical(self):
        counts = Counter({"a": 2, "b": 1})
        assert cosine_tfidf(counts, counts) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_tfidf(Counter({"a": 1}), Counter({"b": 1})) == 0.0

    def test_idf_can_zero_out_common_tokens(self):
        idf = {"common": 0.0, "rare": 2.0}
        a = Counter({"common": 5, "rare": 1})
        b = Counter({"common": 5})
        assert cosine_tfidf(a, b, idf) == 0.0

    def test_empty(self):
        assert cosine_tfidf(Counter(), Counter({"a": 1})) == 0.0

    @given(
        st.dictionaries(st.sampled_from("abcde"), st.integers(1, 5), max_size=5),
        st.dictionaries(st.sampled_from("abcde"), st.integers(1, 5), max_size=5),
    )
    def test_bounds_and_symmetry(self, da, db):
        a, b = Counter(da), Counter(db)
        value = cosine_tfidf(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(cosine_tfidf(b, a))


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("kitten", "sitting", 3),
            ("", "xyz", 3),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_similarity_normalization(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b), 0)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_winkler_scale_validated(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(words, words)
    def test_bounds_and_symmetry(self, a, b):
        value = jaro_winkler(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(jaro_winkler(b, a))


class TestSimilarityIndex:
    def make_index(self) -> SimilarityIndex:
        collection = EntityCollection(
            [
                EntityDescription("http://e/a", {"name": ["alpha beta"]}),
                EntityDescription("http://e/b", {"name": ["beta gamma"]}),
                EntityDescription("http://e/c", {"name": ["delta"]}),
            ],
            name="kb",
        )
        return SimilarityIndex([collection])

    def test_len_and_contains(self):
        index = self.make_index()
        assert len(index) == 3
        assert "http://e/a" in index
        assert "http://e/x" not in index

    def test_jaccard_by_uri(self):
        index = self.make_index()
        assert index.jaccard("http://e/a", "http://e/b") > 0
        assert index.jaccard("http://e/a", "http://e/c") == 0.0

    def test_common_tokens(self):
        index = self.make_index()
        assert "beta" in index.common_tokens("http://e/a", "http://e/b")

    def test_idf_rare_above_common(self):
        index = self.make_index()
        assert index.idf("delta") > index.idf("beta")
        assert index.idf("unseen") == 0.0

    def test_cosine_self_similarity(self):
        index = self.make_index()
        assert index.cosine("http://e/a", "http://e/a") == pytest.approx(1.0)

    def test_unindexed_uri_raises(self):
        index = self.make_index()
        with pytest.raises(KeyError):
            index.jaccard("http://e/a", "http://e/ghost")
