"""Tests for match-graph clustering."""

from __future__ import annotations

from repro.matching.clustering import connected_components, unique_mapping_clustering
from repro.matching.matcher import MatchDecision


class TestConnectedComponents:
    def test_chains_merge(self):
        clusters = connected_components([("a", "b"), ("b", "c"), ("x", "y")])
        assert frozenset({"a", "b", "c"}) in clusters
        assert frozenset({"x", "y"}) in clusters

    def test_largest_first(self):
        clusters = connected_components([("a", "b"), ("b", "c"), ("x", "y")])
        assert len(clusters[0]) >= len(clusters[1])

    def test_empty(self):
        assert connected_components([]) == []


class TestUniqueMapping:
    def decisions(self) -> list[MatchDecision]:
        return [
            MatchDecision("a1", "b1", 0.9, True),
            MatchDecision("a1", "b2", 0.8, True),   # a1 already taken
            MatchDecision("a2", "b2", 0.7, True),
            MatchDecision("a3", "b3", 0.2, False),  # not a match
        ]

    def test_greedy_one_to_one(self):
        accepted = unique_mapping_clustering(self.decisions())
        assert ("a1", "b1") in accepted
        assert ("a2", "b2") in accepted
        assert len(accepted) == 2

    def test_non_matches_ignored(self):
        accepted = unique_mapping_clustering(self.decisions())
        assert ("a3", "b3") not in accepted

    def test_similarity_order_wins(self):
        decisions = [
            MatchDecision("a", "b", 0.5, True),
            MatchDecision("a", "c", 0.9, True),
        ]
        accepted = unique_mapping_clustering(decisions)
        assert accepted == [("a", "c")]

    def test_same_source_rejected(self):
        decisions = [MatchDecision("a1", "a2", 0.9, True)]
        accepted = unique_mapping_clustering(
            decisions, sources={"a1": "kb1", "a2": "kb1"}
        )
        assert accepted == []

    def test_cross_source_accepted(self):
        decisions = [MatchDecision("a1", "b1", 0.9, True)]
        accepted = unique_mapping_clustering(
            decisions, sources={"a1": "kb1", "b1": "kb2"}
        )
        assert accepted == [("a1", "b1")]

    def test_deterministic_tie_breaking(self):
        decisions = [
            MatchDecision("a", "c", 0.9, True),
            MatchDecision("a", "b", 0.9, True),
        ]
        accepted = unique_mapping_clustering(decisions)
        # Equal similarity: canonical pair order decides -> (a, b) first.
        assert accepted == [("a", "b")]

    def test_empty(self):
        assert unique_mapping_clustering([]) == []
