"""Tests for matchers and the match graph."""

from __future__ import annotations

import pytest

from repro.matching.matcher import (
    MatchDecision,
    MatchGraph,
    OracleMatcher,
    ThresholdMatcher,
)
from repro.matching.similarity import SimilarityIndex
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def index() -> SimilarityIndex:
    collection = EntityCollection(
        [
            EntityDescription("http://e/a1", {"name": ["green fork cafe"]}),
            EntityDescription("http://e/a2", {"name": ["green fork cafe "]}),
            EntityDescription("http://e/b", {"name": ["blue anchor oyster"]}),
        ],
        name="kb",
    )
    return SimilarityIndex([collection])


class TestThresholdMatcher:
    def test_match_above_threshold(self):
        # Token sets are {green, fork, cafe, a1} vs {green, fork, cafe, a2}
        # (URI infixes contribute), so Jaccard is 3/5.
        matcher = ThresholdMatcher(index(), threshold=0.5, measure="jaccard")
        decision = matcher.decide("http://e/a1", "http://e/a2")
        assert decision.is_match
        assert decision.similarity == pytest.approx(0.6)

    def test_non_match_below_threshold(self):
        matcher = ThresholdMatcher(index(), threshold=0.5, measure="jaccard")
        decision = matcher.decide("http://e/a1", "http://e/b")
        assert not decision.is_match

    def test_measure_selection(self):
        for measure in ("jaccard", "weighted-jaccard", "cosine"):
            matcher = ThresholdMatcher(index(), measure=measure)
            assert matcher.measure_name == measure

    def test_callable_measure(self):
        matcher = ThresholdMatcher(index(), threshold=0.5, measure=lambda a, b: 0.7)
        assert matcher.decide("http://e/a1", "http://e/b").is_match

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            ThresholdMatcher(index(), measure="soundex")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdMatcher(index(), threshold=1.5)


class TestOracleMatcher:
    def test_uses_gold(self):
        oracle = OracleMatcher({("a", "b")})
        assert oracle.decide("b", "a").is_match
        assert not oracle.decide("a", "c").is_match


class TestMatchGraph:
    def test_record_and_lookup(self):
        graph = MatchGraph()
        decision = MatchDecision("a", "b", 0.9, True)
        assert graph.record(decision) is True
        assert ("a", "b") in graph
        assert graph.decision_for("b", "a") == decision

    def test_duplicate_record_ignored(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 0.9, True))
        assert graph.record(MatchDecision("b", "a", 0.1, False)) is False
        assert graph.match_count == 1

    def test_negative_decisions_tracked_but_not_matched(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 0.1, False))
        assert len(graph) == 1
        assert graph.match_count == 0
        assert not graph.are_matched("a", "b")

    def test_transitive_clustering(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 1.0, True))
        graph.record(MatchDecision("b", "c", 1.0, True))
        assert graph.are_matched("a", "c")
        assert graph.cluster_of("a") == frozenset({"a", "b", "c"})

    def test_partners_direct_only(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 1.0, True))
        graph.record(MatchDecision("b", "c", 1.0, True))
        assert graph.partners("b") == {"a", "c"}
        assert graph.partners("a") == {"b"}
        assert graph.partners("ghost") == set()

    def test_is_resolved(self):
        graph = MatchGraph()
        assert not graph.is_resolved("a")
        graph.record(MatchDecision("a", "b", 1.0, True))
        assert graph.is_resolved("a")
        assert graph.is_resolved("b")
        assert not graph.is_resolved("c")

    def test_clusters_non_singleton(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 1.0, True))
        graph.record(MatchDecision("x", "y", 0.2, False))
        clusters = graph.clusters()
        assert clusters == [frozenset({"a", "b"})]

    def test_cluster_of_unmatched_is_singleton(self):
        graph = MatchGraph()
        assert graph.cluster_of("solo") == frozenset({"solo"})

    def test_transitive_pairs(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 1.0, True))
        graph.record(MatchDecision("b", "c", 1.0, True))
        assert graph.transitive_pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_matched_pairs_direct(self):
        graph = MatchGraph()
        graph.record(MatchDecision("a", "b", 1.0, True))
        graph.record(MatchDecision("b", "c", 1.0, True))
        assert graph.matched_pairs() == {("a", "b"), ("b", "c")}

    def test_matches_in_execution_order(self):
        graph = MatchGraph()
        graph.record(MatchDecision("x", "y", 1.0, True))
        graph.record(MatchDecision("a", "b", 1.0, True))
        assert [d.pair for d in graph.matches()] == [("x", "y"), ("a", "b")]
