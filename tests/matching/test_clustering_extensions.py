"""Tests for center and merge-center clustering."""

from __future__ import annotations

from repro.matching.clustering import center_clustering, merge_center_clustering
from repro.matching.matcher import MatchDecision


def d(a: str, b: str, sim: float) -> MatchDecision:
    return MatchDecision(a, b, sim, True)


class TestCenterClustering:
    def test_simple_star(self):
        decisions = [d("c", "m1", 0.9), d("c", "m2", 0.8)]
        clusters = center_clustering(decisions)
        assert clusters == [frozenset({"c", "m1", "m2"})]

    def test_no_chaining_through_members(self):
        # a-b strong, b-c weaker: center clustering must NOT chain c into
        # the cluster through member b.
        decisions = [d("a", "b", 0.9), d("b", "c", 0.5)]
        clusters = center_clustering(decisions)
        assert clusters == [frozenset({"a", "b"})]

    def test_two_separate_clusters(self):
        decisions = [d("a", "b", 0.9), d("x", "y", 0.8)]
        clusters = center_clustering(decisions)
        assert frozenset({"a", "b"}) in clusters
        assert frozenset({"x", "y"}) in clusters

    def test_center_to_center_edge_ignored(self):
        decisions = [d("a", "b", 0.9), d("x", "y", 0.8), d("a", "x", 0.7)]
        clusters = center_clustering(decisions)
        assert len(clusters) == 2

    def test_non_matches_ignored(self):
        decisions = [MatchDecision("a", "b", 0.9, False)]
        assert center_clustering(decisions) == []

    def test_diameter_at_most_two(self):
        decisions = [d("a", "b", 0.9), d("b", "c", 0.8), d("c", "e", 0.7)]
        for cluster in center_clustering(decisions):
            assert len(cluster) <= 3  # center + direct members only

    def test_deterministic(self):
        decisions = [d("a", "b", 0.9), d("b", "c", 0.5), d("x", "y", 0.8)]
        assert center_clustering(decisions) == center_clustering(decisions)


class TestMergeCenterClustering:
    def test_member_to_center_edge_merges(self):
        # b is a member of a's cluster; c is a center; edge b-c merges.
        decisions = [d("a", "b", 0.9), d("c", "z", 0.8), d("b", "c", 0.7)]
        clusters = merge_center_clustering(decisions)
        assert clusters == [frozenset({"a", "b", "c", "z"})]

    def test_superset_of_center_clustering(self):
        decisions = [
            d("a", "b", 0.9),
            d("c", "z", 0.85),
            d("b", "c", 0.7),
            d("x", "y", 0.6),
        ]
        center = center_clustering(decisions)
        merged = merge_center_clustering(decisions)
        # Every center cluster is contained in some merge-center cluster.
        for cluster in center:
            assert any(cluster <= big for big in merged)

    def test_member_member_edges_still_ignored(self):
        decisions = [d("a", "b", 0.9), d("x", "y", 0.85), d("b", "y", 0.5)]
        clusters = merge_center_clustering(decisions)
        assert len(clusters) == 2

    def test_empty(self):
        assert merge_center_clustering([]) == []
