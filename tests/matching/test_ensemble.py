"""Tests for the ensemble matcher."""

from __future__ import annotations

import pytest

from repro.matching.matcher import EnsembleMatcher, Matcher, MatchDecision


class FixedMatcher(Matcher):
    def __init__(self, score: float):
        self.score = score
        self.bound = None

    def bind(self, context) -> None:
        self.bound = context

    def similarity(self, uri_a: str, uri_b: str) -> float:
        return self.score

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        return MatchDecision(uri_a, uri_b, self.score, self.score >= 0.5)


class TestValidation:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            EnsembleMatcher([])

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            EnsembleMatcher([(FixedMatcher(0.5), 0.0)])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            EnsembleMatcher([(FixedMatcher(0.5), 1.0)], threshold=2.0)


class TestCombination:
    def test_weighted_mean(self):
        ensemble = EnsembleMatcher(
            [(FixedMatcher(1.0), 3.0), (FixedMatcher(0.0), 1.0)]
        )
        assert ensemble.similarity("a", "b") == pytest.approx(0.75)

    def test_single_member_passthrough(self):
        ensemble = EnsembleMatcher([(FixedMatcher(0.7), 1.0)])
        assert ensemble.similarity("a", "b") == pytest.approx(0.7)

    def test_decision_uses_combined_threshold(self):
        ensemble = EnsembleMatcher(
            [(FixedMatcher(0.9), 1.0), (FixedMatcher(0.2), 1.0)], threshold=0.5
        )
        assert ensemble.decide("a", "b").is_match
        strict = EnsembleMatcher(
            [(FixedMatcher(0.9), 1.0), (FixedMatcher(0.2), 1.0)], threshold=0.6
        )
        assert not strict.decide("a", "b").is_match

    def test_bind_propagates_to_members(self):
        members = [FixedMatcher(0.5), FixedMatcher(0.5)]
        ensemble = EnsembleMatcher([(m, 1.0) for m in members])
        sentinel = object()
        ensemble.bind(sentinel)
        assert all(m.bound is sentinel for m in members)

    def test_combined_beats_single_measure(self):
        """Jaccard misses near-duplicate strings; Jaro-Winkler misses
        token re-orderings; the ensemble covers both."""
        from repro.matching.similarity import SimilarityIndex, jaro_winkler
        from repro.matching.matcher import ThresholdMatcher
        from repro.model.collection import EntityCollection
        from repro.model.description import EntityDescription

        kb = EntityCollection(
            [
                EntityDescription("http://e/1", {"name": ["kubrick stanley"]}),
                EntityDescription("http://e/2", {"name": ["stanley kubrik"]}),
            ],
            name="kb",
        )
        index = SimilarityIndex([kb])

        def char_measure(a: str, b: str) -> float:
            return jaro_winkler(
                " ".join(sorted(index.tokens_of(a))),
                " ".join(sorted(index.tokens_of(b))),
            )

        token_matcher = ThresholdMatcher(index, threshold=0.5, measure="jaccard")
        char_matcher = ThresholdMatcher(index, threshold=0.5, measure=char_measure)
        ensemble = EnsembleMatcher(
            [(token_matcher, 1.0), (char_matcher, 1.0)], threshold=0.5
        )
        # 'kubrick' vs 'kubrik' breaks token identity but not char similarity.
        assert ensemble.decide("http://e/1", "http://e/2").is_match
