"""The vectorized batch cosine path: bit-identity and wiring."""

from __future__ import annotations

import pytest

from repro.datasets import load_movies, load_restaurants
from repro.matching.matcher import ThresholdMatcher
from repro.matching.similarity import SimilarityIndex
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


@pytest.fixture(scope="module")
def movie_index():
    kb1, kb2, _ = load_movies()
    return SimilarityIndex([kb1, kb2]), kb1, kb2


def all_cross_pairs(kb1, kb2, limit=300):
    pairs = [(a, b) for a in kb1.uris() for b in kb2.uris()]
    return pairs[:limit]


class TestCosineMany:
    def test_bit_identical_to_scalar(self, movie_index):
        index, kb1, kb2 = movie_index
        pairs = all_cross_pairs(kb1, kb2)
        scores = index.cosine_many([a for a, _ in pairs], [b for _, b in pairs])
        for (a, b), score in zip(pairs, scores):
            assert float(score) == index.cosine(a, b)

    def test_symmetric_and_order_preserving(self, movie_index):
        index, kb1, kb2 = movie_index
        pairs = all_cross_pairs(kb1, kb2, limit=50)
        forward = index.cosine_many([a for a, _ in pairs], [b for _, b in pairs])
        backward = index.cosine_many([b for _, b in pairs], [a for a, _ in pairs])
        assert [float(s) for s in forward] == pytest.approx(
            [float(s) for s in backward]
        )

    def test_empty_input(self, movie_index):
        index, _, _ = movie_index
        assert len(index.cosine_many([], [])) == 0

    def test_length_mismatch_rejected(self, movie_index):
        index, kb1, _ = movie_index
        with pytest.raises(ValueError):
            index.cosine_many(kb1.uris()[:2], kb1.uris()[:1])

    def test_unknown_uri_raises(self, movie_index):
        index, kb1, _ = movie_index
        with pytest.raises(KeyError):
            index.cosine_many([kb1.uris()[0]], ["http://nope"])

    def test_tokenless_description_scores_zero(self):
        collection = EntityCollection(
            [
                EntityDescription("http://e/a", {"p": ["!!"]}),
                EntityDescription("http://e/b", {"p": ["alpha beta"]}),
            ]
        )
        index = SimilarityIndex([collection])
        scores = index.cosine_many(["http://e/a"], ["http://e/b"])
        assert float(scores[0]) == 0.0 == index.cosine("http://e/a", "http://e/b")


class TestMatcherBatchPath:
    def test_decide_many_equals_decide(self, movie_index):
        index, kb1, kb2 = movie_index
        matcher = ThresholdMatcher(index, threshold=0.3, measure="cosine")
        pairs = all_cross_pairs(kb1, kb2, limit=120)
        batch = matcher.decide_many(pairs)
        for pair, decision in zip(pairs, batch):
            single = matcher.decide(*pair)
            assert decision.similarity == single.similarity
            assert decision.is_match == single.is_match

    def test_prime_caches_bit_identical_scores(self, movie_index):
        index, kb1, kb2 = movie_index
        primed = ThresholdMatcher(index, threshold=0.3, measure="cosine")
        plain = ThresholdMatcher(index, threshold=0.3, measure="cosine")
        pairs = all_cross_pairs(kb1, kb2, limit=120)
        primed.prime(pairs)
        assert primed._primed  # the cache actually filled
        for a, b in pairs:
            assert primed.similarity(a, b) == plain.similarity(a, b)

    def test_prime_skips_non_cosine_measures(self, movie_index):
        index, kb1, kb2 = movie_index
        matcher = ThresholdMatcher(index, threshold=0.3, measure="jaccard")
        matcher.prime(all_cross_pairs(kb1, kb2, limit=10))
        assert not matcher._primed

    def test_prime_skips_unindexed_pairs(self, movie_index):
        index, kb1, _ = movie_index
        matcher = ThresholdMatcher(index, threshold=0.3, measure="cosine")
        matcher.prime([(kb1.uris()[0], "http://nope")])
        assert not matcher._primed

    def test_primed_cache_invalidated_when_index_drifts(self):
        from repro.model.description import EntityDescription
        from repro.stream import StreamResolver

        resolver = StreamResolver()
        resolver.ingest(EntityDescription("http://e/x", {"p": ["kappa sigma"]}))
        resolver.ingest(EntityDescription("http://e/y", {"p": ["kappa tau"]}))
        matcher = ThresholdMatcher(resolver.similarity, threshold=0.1, measure="cosine")
        pair = ("http://e/x", "http://e/y")
        matcher.prime([pair])
        # A later insert shifts IDF; the primed score must not survive it.
        resolver.ingest(EntityDescription("http://e/z", {"p": ["kappa omega"]}))
        assert matcher.similarity(*pair) == resolver.similarity.cosine(*pair)

    def test_restaurants_decisions_stable_end_to_end(self):
        # The primed batch path must not flip any pipeline decision.
        from repro.core.pipeline import MinoanER

        kb1, kb2, gold = load_restaurants()
        result = MinoanER().resolve(kb1, kb2, gold=gold)
        rerun = MinoanER().resolve(kb1, kb2, gold=gold)
        assert result.matched_pairs() == rerun.matched_pairs()
