"""Tests for the canned experiment workflows."""

from __future__ import annotations

import pytest

from repro.core.pipeline import MinoanER
from repro.evaluation.reporting import format_table
from repro.matching.matcher import OracleMatcher
from repro.workflows import (
    compare_blocking_methods,
    compare_progressive_strategies,
    sweep_budgets,
    sweep_metablocking,
)


class TestCompareBlockingMethods:
    def test_default_methods(self, movies):
        kb_a, kb_b, gold = movies
        report = compare_blocking_methods(kb_a, kb_b, gold)
        assert len(report.rows) == 3
        methods = {row["method"] for row in report.rows}
        assert "token-blocking" in methods
        # Rows render cleanly.
        assert "PC" in format_table(report.rows)

    def test_raw_objects_accessible(self, movies):
        kb_a, kb_b, gold = movies
        report = compare_blocking_methods(kb_a, kb_b, gold)
        blocks, quality = report.raw["token-blocking"]
        assert len(blocks) > 0
        assert 0.0 <= quality.pairs_completeness <= 1.0


class TestSweepMetablocking:
    def test_full_matrix(self, movies):
        kb_a, kb_b, gold = movies
        report = sweep_metablocking(
            kb_a, kb_b, gold, weighting=["ARCS", "CBS"], pruning=["WEP", "CNP"]
        )
        assert len(report.rows) == 4
        assert ("ARCS", "CNP") in report.raw

    def test_every_registered_combination_runs(self, movies):
        kb_a, kb_b, gold = movies
        report = sweep_metablocking(kb_a, kb_b, gold)
        # 6 weighting schemes x 4 pruning algorithms
        assert len(report.rows) == 24


class TestCompareProgressive:
    def test_all_strategies_present(self, movies):
        kb_a, kb_b, gold = movies
        report = compare_progressive_strategies(
            kb_a, kb_b, gold, OracleMatcher(gold.matches), budget=40
        )
        strategies = {row["strategy"] for row in report.rows}
        assert strategies == {
            "minoan-dynamic",
            "minoan-static",
            "altowim",
            "random",
            "batch",
            "oracle",
        }

    def test_oracle_optional(self, movies):
        kb_a, kb_b, gold = movies
        report = compare_progressive_strategies(
            kb_a, kb_b, gold, OracleMatcher(gold.matches), budget=40,
            include_oracle=False,
        )
        assert "oracle" not in report.raw

    def test_scheduler_dominates_random(self, center_dataset):
        dataset = center_dataset
        gold = dataset.gold
        report = compare_progressive_strategies(
            dataset.kb1, dataset.kb2, gold, OracleMatcher(gold.matches), budget=100
        )
        auc = {row["strategy"]: float(row["AUC"]) for row in report.rows}
        assert auc["minoan-static"] > auc["random"]
        assert auc["oracle"] >= auc["minoan-dynamic"] - 1e-9


class TestSweepBudgets:
    def test_recall_monotone_in_budget(self, movies):
        kb_a, kb_b, gold = movies
        report = sweep_budgets(
            kb_a, kb_b, gold, budgets=[5, 50, 500],
            platform=MinoanER(match_threshold=0.35),
        )
        recalls = [float(row["recall"]) for row in report.rows]
        assert recalls == sorted(recalls)
        assert len(report.raw) == 3

    def test_rows_render(self, movies):
        kb_a, kb_b, gold = movies
        report = sweep_budgets(kb_a, kb_b, gold, budgets=[10])
        table = format_table(report.rows, title=report.title)
        assert "budget" in table


class TestLegacyPlatformComponentsHonoured:
    """A platform= argument keeps its concrete component instances.

    The instances may carry parameters the registry names cannot
    express; the sweeps must run blocking through the platform itself,
    not a default-token facade translation.
    """

    def test_sweep_metablocking_uses_platform_blocker(self, movies):
        from repro.blocking import QGramsBlocking

        kb_a, kb_b, gold = movies
        platform = MinoanER(blocker=QGramsBlocking(q=3))
        report = sweep_metablocking(
            kb_a, kb_b, gold, weighting=["ARCS"], pruning=["CNP"], platform=platform
        )
        _, processed = platform.block(kb_a, kb_b)
        edges = platform.meta_block(processed)
        assert [
            (e.left, e.right, e.weight) for e in report.raw[("ARCS", "CNP")]
        ] == [(e.left, e.right, e.weight) for e in edges]

    def test_sweep_budgets_uses_platform_blocker(self, movies):
        from repro.blocking import QGramsBlocking

        kb_a, kb_b, gold = movies
        platform = MinoanER(blocker=QGramsBlocking(q=3), match_threshold=0.35)
        report = sweep_budgets(kb_a, kb_b, gold, budgets=[200], platform=platform)
        from repro.core.budget import CostBudget

        direct = MinoanER(
            blocker=QGramsBlocking(q=3),
            match_threshold=0.35,
            budget=CostBudget(200),
        ).resolve(kb_a, kb_b, gold=gold)
        assert report.raw[200].matched_pairs() == direct.matched_pairs()

    def test_progressive_uses_platform_stages(self, movies):
        from repro.blocking import QGramsBlocking

        kb_a, kb_b, gold = movies
        platform = MinoanER(blocker=QGramsBlocking(q=3))
        report = compare_progressive_strategies(
            kb_a, kb_b, gold, OracleMatcher(gold.matches), budget=40,
            platform=platform, include_oracle=False,
        )
        assert "minoan-dynamic" in report.raw
