"""Tests for the command-line interface."""

from __future__ import annotations

import csv
import os

import pytest

from repro.cli import main
from repro.datasets.samples import sample_path


@pytest.fixture
def movies_paths():
    return (
        sample_path("movies_a.nt"),
        sample_path("movies_b.nt"),
        sample_path("movies_gold.csv"),
    )


class TestStats:
    def test_single_kb(self, capsys, movies_paths):
        assert main(["stats", movies_paths[0]]) == 0
        out = capsys.readouterr().out
        assert "descriptions" in out
        assert "interlinking density" in out

    def test_two_kbs_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert main(["stats", kb_a, kb_b, "--gold", gold]) == 0
        out = capsys.readouterr().out
        assert "Vocabulary overlap" in out
        assert "Match-similarity regime" in out
        assert "regime" in out


class TestBlock:
    def test_without_gold(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b]) == 0
        out = capsys.readouterr().out
        assert "Blocking summary" in out
        assert "token-blocking" in out

    def test_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b, "--gold", gold]) == 0
        out = capsys.readouterr().out
        assert "PC" in out and "RR" in out

    @pytest.mark.parametrize(
        "method", ["token", "attribute-clustering", "prefix-infix-suffix", "qgrams"]
    )
    def test_all_methods(self, capsys, movies_paths, method):
        kb_a, kb_b, _ = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b, "--method", method]) == 0

    def test_unknown_method_rejected(self, movies_paths):
        kb_a, kb_b, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["block", "--kb1", kb_a, "--method", "bogus"])


class TestResolve:
    def test_end_to_end_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--gold", gold,
                    "--budget", "300",
                    "--threshold", "0.35",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Pipeline summary" in out
        assert "Matching quality" in out

    def test_output_csv(self, capsys, tmp_path, movies_paths):
        kb_a, kb_b, gold = movies_paths
        out_path = str(tmp_path / "matches.csv")
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--threshold", "0.35",
                    "--out", out_path,
                ]
            )
            == 0
        )
        with open(out_path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["uri1", "uri2"]
        assert len(rows) > 10

    def test_benefit_and_schemes_options(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--benefit", "entity-coverage",
                    "--weighting", "ECBS",
                    "--pruning", "WNP",
                    "--no-update",
                ]
            )
            == 0
        )

    def test_dirty_er_single_kb(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["resolve", "--kb1", kb_a, "--threshold", "0.9"]) == 0


class TestStream:
    def test_clean_clean_replay(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "stream", "--kb1", kb_a, "--kb2", kb_b,
                    "--scenario", "bursty", "--weighting", "ARCS",
                    "--pruning", "CNP",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Streaming workload: bursty" in out
        assert "throughput" in out
        assert "insert mean by quartile" in out

    def test_dirty_replay_with_budget(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["stream", "--kb1", kb_a, "--budget", "2"]) == 0
        assert "Streaming workload: uniform" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["stream", "--kb1", kb_a, "--scenario", "nope"])


class TestSynthesize:
    def test_writes_workload(self, capsys, tmp_path):
        out_dir = str(tmp_path / "workload")
        assert (
            main(
                [
                    "synthesize",
                    "--entities", "40",
                    "--regime", "periphery",
                    "--seed", "3",
                    "--out-dir", out_dir,
                ]
            )
            == 0
        )
        for name in ("kb1.nt", "kb2.nt", "gold.csv"):
            assert os.path.exists(os.path.join(out_dir, name))

    def test_synthesized_workload_is_loadable_and_resolvable(self, capsys, tmp_path):
        out_dir = str(tmp_path / "workload")
        main(["synthesize", "--entities", "40", "--out-dir", out_dir, "--seed", "5"])
        capsys.readouterr()
        assert (
            main(
                [
                    "resolve",
                    "--kb1", os.path.join(out_dir, "kb1.nt"),
                    "--kb2", os.path.join(out_dir, "kb2.nt"),
                    "--gold", os.path.join(out_dir, "gold.csv"),
                    "--budget", "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recall" in out

    def test_round_trip_preserves_gold_size(self, capsys, tmp_path):
        from repro.datasets.gold import load_gold_csv
        from repro.datasets.synthetic import SyntheticConfig, synthesize_pair

        out_dir = str(tmp_path / "w")
        main(["synthesize", "--entities", "40", "--out-dir", out_dir, "--seed", "5"])
        reference = synthesize_pair(SyntheticConfig(entities=40, overlap=0.7, seed=5))
        loaded = load_gold_csv(os.path.join(out_dir, "gold.csv"))
        assert loaded.matches == reference.gold.matches


class TestWorkflow:
    def test_blocking_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(["workflow", "blocking", "--kb1", kb_a, "--kb2", kb_b, "--gold", gold])
            == 0
        )
        out = capsys.readouterr().out
        assert "token-blocking" in out and "PC" in out

    def test_progressive_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "progressive",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budget", "60", "--threshold", "0.35",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "minoan-dynamic" in out and "oracle" in out

    def test_budget_sweep_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "budgets",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budgets", "10", "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Budget sweep" in out

    def test_gold_required(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["workflow", "blocking", "--kb1", kb_a])


class TestMapReduce:
    def test_serial_sweep(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "mapreduce", "--kb1", kb_a, "--kb2", kb_b,
                    "--workers", "1", "2",
                    "--executor", "serial", "--formulation", "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MapReduce meta-blocking sweep" in out
        assert "string" in out and "int" in out
        assert "speedup" in out

    def test_process_executor(self, capsys, movies_paths):
        from repro.mapreduce import ProcessExecutor

        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        kb_a, _, _ = movies_paths
        assert (
            main(
                [
                    "mapreduce", "--kb1", kb_a,
                    "--workers", "2",
                    "--executor", "process",
                    "--weighting", "CBS", "--pruning", "WEP",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "process" in out

    def test_unknown_executor_rejected(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["mapreduce", "--kb1", kb_a, "--executor", "gpu"])


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
