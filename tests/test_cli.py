"""Tests for the command-line interface."""

from __future__ import annotations

import csv
import os

import pytest

from repro.cli import main
from repro.datasets.samples import sample_path


@pytest.fixture
def movies_paths():
    return (
        sample_path("movies_a.nt"),
        sample_path("movies_b.nt"),
        sample_path("movies_gold.csv"),
    )


class TestStats:
    def test_single_kb(self, capsys, movies_paths):
        assert main(["stats", movies_paths[0]]) == 0
        out = capsys.readouterr().out
        assert "descriptions" in out
        assert "interlinking density" in out

    def test_two_kbs_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert main(["stats", kb_a, kb_b, "--gold", gold]) == 0
        out = capsys.readouterr().out
        assert "Vocabulary overlap" in out
        assert "Match-similarity regime" in out
        assert "regime" in out


class TestBlock:
    def test_without_gold(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b]) == 0
        out = capsys.readouterr().out
        assert "Blocking summary" in out
        assert "token-blocking" in out

    def test_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b, "--gold", gold]) == 0
        out = capsys.readouterr().out
        assert "PC" in out and "RR" in out

    @pytest.mark.parametrize(
        "method", ["token", "attribute-clustering", "prefix-infix-suffix", "qgrams"]
    )
    def test_all_methods(self, capsys, movies_paths, method):
        kb_a, kb_b, _ = movies_paths
        assert main(["block", "--kb1", kb_a, "--kb2", kb_b, "--method", method]) == 0

    def test_unknown_method_rejected(self, movies_paths):
        kb_a, kb_b, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["block", "--kb1", kb_a, "--method", "bogus"])


class TestResolve:
    def test_end_to_end_with_gold(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--gold", gold,
                    "--budget", "300",
                    "--threshold", "0.35",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Pipeline summary" in out
        assert "Matching quality" in out

    def test_output_csv(self, capsys, tmp_path, movies_paths):
        kb_a, kb_b, gold = movies_paths
        out_path = str(tmp_path / "matches.csv")
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--threshold", "0.35",
                    "--out", out_path,
                ]
            )
            == 0
        )
        with open(out_path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["uri1", "uri2"]
        assert len(rows) > 10

    def test_benefit_and_schemes_options(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "resolve",
                    "--kb1", kb_a,
                    "--kb2", kb_b,
                    "--benefit", "entity-coverage",
                    "--weighting", "ECBS",
                    "--pruning", "WNP",
                    "--no-update",
                ]
            )
            == 0
        )

    def test_dirty_er_single_kb(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["resolve", "--kb1", kb_a, "--threshold", "0.9"]) == 0


class TestStream:
    def test_clean_clean_replay(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "stream", "--kb1", kb_a, "--kb2", kb_b,
                    "--scenario", "bursty", "--weighting", "ARCS",
                    "--pruning", "CNP",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Streaming workload: bursty" in out
        assert "throughput" in out
        assert "insert mean by quartile" in out

    def test_dirty_replay_with_budget(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["stream", "--kb1", kb_a, "--budget", "2"]) == 0
        assert "Streaming workload: uniform" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["stream", "--kb1", kb_a, "--scenario", "nope"])

    def test_full_pruner_table_accepted(self, capsys, movies_paths):
        """`stream --pruning` offers the same registered table as
        `resolve` (reciprocal variants degrade to their base algorithm
        per query) plus the stream-only 'none'."""
        kb_a, _, _ = movies_paths
        assert (
            main(["stream", "--kb1", kb_a, "--pruning", "ReciprocalCNP"]) == 0
        )
        capsys.readouterr()
        assert main(["stream", "--kb1", kb_a, "--pruning", "none"]) == 0


class TestStreamDurability:
    def test_churn_scenario_reports_deletes(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(["stream", "--kb1", kb_a, "--kb2", kb_b,
                  "--scenario", "churn"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Streaming workload: churn" in out
        assert "deletes" in out

    def test_durable_replay_then_recover_only(self, capsys, tmp_path,
                                              movies_paths):
        kb_a, kb_b, _ = movies_paths
        directory = str(tmp_path / "state")
        assert (
            main(["stream", "--kb1", kb_a, "--kb2", kb_b,
                  "--scenario", "erasure", "--durability-dir", directory,
                  "--snapshot-every", "25"])
            == 0
        )
        assert os.path.exists(os.path.join(directory, "wal.log"))
        capsys.readouterr()
        # A bare --recover-dir inspects what the directory restores to.
        assert main(["stream", "--recover-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "Recovered streaming state" in out
        assert "live descriptions" in out

    def test_crash_harness_verifies_equivalence(self, capsys, tmp_path,
                                                movies_paths):
        kb_a, kb_b, _ = movies_paths
        directory = str(tmp_path / "crash")
        assert (
            main(["stream", "--kb1", kb_a, "--kb2", kb_b,
                  "--scenario", "churn", "--processed-view",
                  "--snapshot-every", "15",
                  "--crash-at", "40", "--recover-dir", directory])
            == 0
        )
        out = capsys.readouterr().out
        assert "Crash harness: churn @ event 40" in out
        assert "recovery equivalence: OK" in out

    def test_crash_at_requires_recover_dir(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["stream", "--kb1", kb_a, "--crash-at", "5"]) == 1
        assert "--recover-dir" in capsys.readouterr().out

    def test_recover_only_without_state_fails(self, capsys, tmp_path):
        assert main(["stream", "--recover-dir", str(tmp_path)]) == 1
        assert "no usable write-ahead log" in capsys.readouterr().out

    def test_no_kb1_and_no_recover_dir_rejected(self, capsys):
        assert main(["stream"]) == 1
        assert "--kb1" in capsys.readouterr().out

    def test_durability_dir_rejects_interval_sweep(self, capsys, tmp_path,
                                                   movies_paths):
        kb_a, _, _ = movies_paths
        assert (
            main(["stream", "--kb1", kb_a, "--processed-view",
                  "--reconcile-interval", "8,16",
                  "--durability-dir", str(tmp_path / "x")])
            == 1
        )
        assert "sweep" in capsys.readouterr().out


class TestSynthesize:
    def test_writes_workload(self, capsys, tmp_path):
        out_dir = str(tmp_path / "workload")
        assert (
            main(
                [
                    "synthesize",
                    "--entities", "40",
                    "--regime", "periphery",
                    "--seed", "3",
                    "--out-dir", out_dir,
                ]
            )
            == 0
        )
        for name in ("kb1.nt", "kb2.nt", "gold.csv"):
            assert os.path.exists(os.path.join(out_dir, name))

    def test_synthesized_workload_is_loadable_and_resolvable(self, capsys, tmp_path):
        out_dir = str(tmp_path / "workload")
        main(["synthesize", "--entities", "40", "--out-dir", out_dir, "--seed", "5"])
        capsys.readouterr()
        assert (
            main(
                [
                    "resolve",
                    "--kb1", os.path.join(out_dir, "kb1.nt"),
                    "--kb2", os.path.join(out_dir, "kb2.nt"),
                    "--gold", os.path.join(out_dir, "gold.csv"),
                    "--budget", "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recall" in out

    def test_round_trip_preserves_gold_size(self, capsys, tmp_path):
        from repro.datasets.gold import load_gold_csv
        from repro.datasets.synthetic import SyntheticConfig, synthesize_pair

        out_dir = str(tmp_path / "w")
        main(["synthesize", "--entities", "40", "--out-dir", out_dir, "--seed", "5"])
        reference = synthesize_pair(SyntheticConfig(entities=40, overlap=0.7, seed=5))
        loaded = load_gold_csv(os.path.join(out_dir, "gold.csv"))
        assert loaded.matches == reference.gold.matches


class TestRun:
    SPEC = os.path.join(
        os.path.dirname(__file__), "..", "examples", "spec_movies.json"
    )

    def test_spec_with_embedded_data(self, capsys):
        assert main(["run", "--spec", self.SPEC]) == 0
        out = capsys.readouterr().out
        assert "Pipeline summary" in out
        assert "Matching quality" in out
        assert "cache key" in out

    def test_backend_override(self, capsys):
        assert main(["run", "--spec", self.SPEC, "--backend", "mapreduce"]) == 0
        out = capsys.readouterr().out
        assert "mapreduce" in out

    def test_kb_override(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "run", "--spec", self.SPEC,
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                ]
            )
            == 0
        )
        assert "Pipeline summary" in capsys.readouterr().out

    def test_stream_backend_prints_replay(self, capsys):
        assert main(["run", "--spec", self.SPEC, "--backend", "stream"]) == 0
        out = capsys.readouterr().out
        assert "Streaming replay" in out

    def test_output_csv(self, capsys, tmp_path):
        out_path = str(tmp_path / "m.csv")
        assert main(["run", "--spec", self.SPEC, "--out", out_path]) == 0
        with open(out_path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["uri1", "uri2"]
        assert len(rows) > 10

    def test_invalid_spec_fails_eagerly(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"weighting": "BOGUS"}, handle)
        assert main(["run", "--spec", path]) == 2
        out = capsys.readouterr().out
        assert "invalid spec" in out
        # The error names the registered alternatives.
        assert "ARCS" in out

    def test_missing_spec_file_reports_cleanly(self, capsys):
        assert main(["run", "--spec", "/nonexistent/spec.json"]) == 2
        assert "not found" in capsys.readouterr().out

    def test_kb2_without_kb1_rejected(self, capsys, movies_paths):
        _, kb_b, _ = movies_paths
        assert main(["run", "--spec", self.SPEC, "--kb2", kb_b]) == 2
        assert "kb2" in capsys.readouterr().out


class TestComponents:
    def test_lists_registry(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        assert "Registered components" in out
        for name in ("ARCS", "CNP", "token", "uniform", "quantity"):
            assert name in out

    def test_kind_filter(self, capsys):
        assert main(["components", "--kind", "pruner"]) == 0
        out = capsys.readouterr().out
        assert "ReciprocalCNP" in out
        assert "qgrams" not in out


class TestWorkflow:
    def test_blocking_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(["workflow", "blocking", "--kb1", kb_a, "--kb2", kb_b, "--gold", gold])
            == 0
        )
        out = capsys.readouterr().out
        assert "token-blocking" in out and "PC" in out

    def test_progressive_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "progressive",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budget", "60", "--threshold", "0.35",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "minoan-dynamic" in out and "oracle" in out

    def test_budget_sweep_workflow(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "budgets",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budgets", "10", "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Budget sweep" in out

    def test_gold_required(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["workflow", "blocking", "--kb1", kb_a])

    def test_unused_flag_rejected_not_ignored(self, capsys, movies_paths):
        """Flags a workflow ignores are an error, not a silent no-op."""
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "blocking",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budget", "50",
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "--budget is not used" in out
        assert "progressive" in out

    def test_budgets_flag_rejected_for_progressive(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "progressive",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budgets", "10", "20",
                ]
            )
            == 2
        )
        assert "--budgets is not used" in capsys.readouterr().out

    def test_seed_accepted_by_progressive(self, capsys, movies_paths):
        kb_a, kb_b, gold = movies_paths
        assert (
            main(
                [
                    "workflow", "progressive",
                    "--kb1", kb_a, "--kb2", kb_b, "--gold", gold,
                    "--budget", "40", "--seed", "11",
                ]
            )
            == 0
        )
        assert "minoan-dynamic" in capsys.readouterr().out


class TestMapReduce:
    def test_serial_sweep(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "mapreduce", "--kb1", kb_a, "--kb2", kb_b,
                    "--workers", "1", "2",
                    "--executor", "serial", "--formulation", "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MapReduce meta-blocking sweep" in out
        assert "string" in out and "int" in out
        assert "speedup" in out

    def test_process_executor(self, capsys, movies_paths):
        from repro.mapreduce import ProcessExecutor

        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        kb_a, _, _ = movies_paths
        assert (
            main(
                [
                    "mapreduce", "--kb1", kb_a,
                    "--workers", "2",
                    "--executor", "process",
                    "--weighting", "CBS", "--pruning", "WEP",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "process" in out

    def test_unknown_executor_rejected(self, movies_paths):
        kb_a, _, _ = movies_paths
        with pytest.raises(SystemExit):
            main(["mapreduce", "--kb1", kb_a, "--executor", "gpu"])


class TestObservability:
    """--trace-dir/--metrics on run/stream/mapreduce + `repro obs report`."""

    def _telemetry(self, directory):
        from repro.obs import load_trace, parse_metrics_text

        spans = load_trace(os.path.join(directory, "trace.jsonl"))
        with open(
            os.path.join(directory, "metrics.txt"), encoding="utf-8"
        ) as handle:
            metrics = parse_metrics_text(handle.read())
        return spans, metrics

    def test_stream_writes_and_reports_telemetry(self, capsys, movies_paths, tmp_path):
        kb_a, kb_b, _ = movies_paths
        directory = str(tmp_path / "telemetry")
        assert (
            main(
                [
                    "stream", "--kb1", kb_a, "--kb2", kb_b,
                    "--trace-dir", directory,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"telemetry written to {directory}" in out
        spans, metrics = self._telemetry(directory)
        names = {span.name for span in spans}
        assert {"pipeline.run", "stream.replay", "stream.query"} <= names
        assert metrics["repro.stream.insert.count"]["value"] > 0

        assert main(["obs", "report", directory]) == 0
        report_out = capsys.readouterr().out
        assert "span tree" in report_out
        assert "stream.query" in report_out
        assert "histograms (ms)" in report_out

    def test_metrics_flag_prints_exposition(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert main(["stream", "--kb1", kb_a, "--kb2", kb_b, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stream_insert_count counter" in out

    def test_run_and_mapreduce_accept_trace_dir(self, capsys, movies_paths, tmp_path):
        kb_a, kb_b, _ = movies_paths
        run_dir = str(tmp_path / "run")
        assert (
            main(
                [
                    "run", "--spec", TestRun.SPEC,
                    "--kb1", kb_a, "--kb2", kb_b, "--trace-dir", run_dir,
                ]
            )
            == 0
        )
        spans, _ = self._telemetry(run_dir)
        assert {"pipeline.blocking", "pipeline.matching"} <= {
            s.name for s in spans
        }

        mr_dir = str(tmp_path / "mr")
        assert (
            main(
                [
                    "mapreduce", "--kb1", kb_a, "--kb2", kb_b,
                    "--workers", "2", "--executor", "serial",
                    "--formulation", "string", "--trace-dir", mr_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        spans, metrics = self._telemetry(mr_dir)
        assert "mapreduce.job" in {s.name for s in spans}
        assert metrics["repro.mapreduce.jobs.count"]["value"] > 0

    def test_trace_dir_rejected_with_sweep_and_crash_harness(
        self, capsys, movies_paths, tmp_path
    ):
        kb_a, _, _ = movies_paths
        directory = str(tmp_path / "t")
        assert (
            main(
                [
                    "stream", "--kb1", kb_a,
                    "--reconcile-interval", "8,16", "--trace-dir", directory,
                ]
            )
            == 1
        )
        assert "sweep" in capsys.readouterr().out
        assert (
            main(
                [
                    "stream", "--kb1", kb_a, "--crash-at", "5",
                    "--recover-dir", str(tmp_path / "wal"),
                    "--trace-dir", directory,
                ]
            )
            == 1
        )
        assert "crash harness" in capsys.readouterr().out

    def test_obs_report_without_trace_fails_cleanly(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path)]) == 1
        assert "--trace-dir" in capsys.readouterr().out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    pytestmark = pytest.mark.skipif(
        os.name != "posix", reason="serving tier needs fork + POSIX signals"
    )

    def test_kill_fault_run_recovers_and_verifies(self, capsys, movies_paths):
        kb_a, kb_b, _ = movies_paths
        assert (
            main(
                [
                    "serve", "--kb1", kb_a, "--kb2", kb_b,
                    "--shards", "2", "--rate", "500",
                    "--fault", "kill:1@e=10",
                    "--heartbeat-deadline", "0.5",
                    "--max-events", "40",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault fired: kill:1@e=10" in out
        assert "degraded queries: 0 after recovery" in out
        assert "recovery equivalence: OK" in out
        assert "Serving tier statistics" in out

    def test_malformed_fault_spec_rejected(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert main(["serve", "--kb1", kb_a, "--fault", "explode:0@t=1"]) == 1
        assert "explode" in capsys.readouterr().out

    def test_fault_on_missing_shard_rejected(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert (
            main(["serve", "--kb1", kb_a, "--shards", "2",
                  "--fault", "kill:5@t=1"])
            == 1
        )
        assert "shards 0..1" in capsys.readouterr().out

    def test_torn_fault_requires_durability_root(self, capsys, movies_paths):
        kb_a, _, _ = movies_paths
        assert (
            main(["serve", "--kb1", kb_a,
                  "--fault", "torn:1@spawn:budget=4096"])
            == 1
        )
        assert "--durability-root" in capsys.readouterr().out


class TestStreamSigterm:
    pytestmark = pytest.mark.skipif(
        os.name != "posix", reason="needs POSIX signals"
    )

    def test_sigterm_mid_replay_exits_143_with_partial_stats(
        self, capsys, movies_paths, monkeypatch
    ):
        import signal

        from repro.stream.workload import WorkloadDriver

        original = WorkloadDriver.run
        fired = []

        def run_with_sigterm(self, events, *args, **kwargs):
            def terminate(_result):
                if not fired:
                    fired.append(True)
                    os.kill(os.getpid(), signal.SIGTERM)

            kwargs["on_query"] = terminate
            return original(self, events, *args, **kwargs)

        monkeypatch.setattr(WorkloadDriver, "run", run_with_sigterm)
        kb_a, kb_b, _ = movies_paths
        assert (
            main(["stream", "--kb1", kb_a, "--kb2", kb_b]) == 143
        )
        out = capsys.readouterr().out
        assert "yes (SIGTERM, partial replay)" in out
