"""Guard rails on the public API surface.

Everything advertised in ``repro.__all__`` must exist, be importable from
the top level, and carry a docstring — the contract a downstream user
relies on.
"""

from __future__ import annotations

import inspect

import pytest

import repro


class TestAllExports:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_documented(self, name):
        obj = getattr(repro, name)
        if inspect.ismodule(obj) or isinstance(obj, (dict, frozenset, str)):
            return
        doc = inspect.getdoc(obj)
        assert doc, f"repro.{name} has no docstring"
        assert len(doc) > 15, f"repro.{name} docstring is a stub"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_present(self):
        assert repro.__version__.count(".") == 2


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.model",
            "repro.rdf",
            "repro.blocking",
            "repro.metablocking",
            "repro.matching",
            "repro.mapreduce",
            "repro.core",
            "repro.baselines",
            "repro.datasets",
            "repro.evaluation",
            "repro.stream",
            "repro.utils",
            "repro.api",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a package docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


class TestFacadeSignatureStability:
    """The documented keyword surface of the main entry points."""

    def test_minoaner_kwargs(self):
        from repro import MinoanER

        params = set(inspect.signature(MinoanER).parameters)
        expected = {
            "blocker",
            "purging",
            "filtering",
            "weighting",
            "pruning",
            "matcher",
            "match_threshold",
            "budget",
            "benefit",
            "update_phase",
            "boost_factor",
            "discovery_weight",
            "evidence_weight",
            "checkpoint_every",
        }
        assert expected <= params

    def test_synthetic_config_fields(self):
        from repro import SyntheticConfig

        fields = set(SyntheticConfig.__dataclass_fields__)
        assert {"entities", "overlap", "profile", "seed", "group_size"} <= fields

    def test_session_advance_signature(self):
        from repro.core import ProgressiveSession

        params = inspect.signature(ProgressiveSession.advance).parameters
        assert "instalment" in params
