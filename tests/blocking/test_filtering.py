"""Tests for block filtering."""

from __future__ import annotations

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering


def blocks_for_entity_x() -> BlockCollection:
    """Entity x appears in blocks of very different sizes."""
    return BlockCollection(
        [
            Block("tiny", ["x", "a"]),
            Block("mid", ["x", "a", "b", "c"]),
            Block("huge", ["x"] + [f"n{i}" for i in range(30)]),
        ]
    )


class TestFiltering:
    def test_entity_leaves_largest_blocks(self):
        filtered = BlockFiltering(ratio=0.67).process(blocks_for_entity_x())
        # x keeps ceil(0.67*3)=2 smallest blocks: tiny and mid.
        assert "x" in filtered["tiny"].entities1
        assert "x" in filtered["mid"].entities1
        assert "huge" not in filtered or "x" not in filtered["huge"].entities1

    def test_ratio_one_keeps_everything(self):
        original = blocks_for_entity_x()
        filtered = BlockFiltering(ratio=1.0).process(original)
        assert filtered.total_assignments() == original.total_assignments()

    def test_every_entity_keeps_at_least_one_block(self):
        filtered = BlockFiltering(ratio=0.1).process(blocks_for_entity_x())
        index = filtered.entity_index()
        # x survives somewhere (its smallest block).
        assert index.get("x") == ["tiny"]

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            BlockFiltering(ratio=0.0)
        with pytest.raises(ValueError):
            BlockFiltering(ratio=1.2)

    def test_bipartite_sides_filtered_independently(self):
        blocks = BlockCollection(
            [
                Block("small", ["x"], ["y"]),
                Block("large", ["x", "a", "b"], ["y", "c", "d"]),
            ]
        )
        filtered = BlockFiltering(ratio=0.5).process(blocks)
        assert "small" in filtered
        # x and y keep only their smallest block.
        if "large" in filtered:
            assert "x" not in filtered["large"].entities1
            assert "y" not in (filtered["large"].entities2 or [])

    def test_degenerate_blocks_dropped(self):
        blocks = BlockCollection([Block("k", ["x", "y"]), Block("big", ["x", "y", "z"])])
        filtered = BlockFiltering(ratio=0.5).process(blocks)
        for block in filtered:
            assert block.cardinality() >= 1

    def test_filtering_shrinks_comparison_count(self, center_dataset):
        from repro.blocking.token_blocking import TokenBlocking

        blocks = TokenBlocking().build(center_dataset.kb1, center_dataset.kb2)
        filtered = BlockFiltering(ratio=0.5).process(blocks)
        assert filtered.total_comparisons() < blocks.total_comparisons()

    def test_determinism(self):
        a = BlockFiltering(ratio=0.5).process(blocks_for_entity_x())
        b = BlockFiltering(ratio=0.5).process(blocks_for_entity_x())
        assert a.keys() == b.keys()
        for key in a.keys():
            assert a[key].entities1 == b[key].entities1
