"""Tests for attribute-clustering blocking."""

from __future__ import annotations

import pytest

from repro.blocking.attribute_clustering import GLUE_CLUSTER, AttributeClusteringBlocking
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def make_kbs() -> tuple[EntityCollection, EntityCollection]:
    kb1 = EntityCollection(
        [
            EntityDescription(
                "http://a/1",
                {"name": ["alpha beta"], "city": ["paris lyon"]},
                source="kb1",
            ),
            EntityDescription(
                "http://a/2",
                {"name": ["gamma delta"], "city": ["berlin"]},
                source="kb1",
            ),
        ],
        name="kb1",
    )
    kb2 = EntityCollection(
        [
            EntityDescription(
                "http://b/1",
                {"label": ["alpha beta"], "location": ["paris"]},
                source="kb2",
            ),
            EntityDescription(
                "http://b/2",
                {"label": ["gamma"], "location": ["berlin lyon"]},
                source="kb2",
            ),
        ],
        name="kb2",
    )
    return kb1, kb2


class TestFit:
    def test_similar_attributes_clustered(self):
        kb1, kb2 = make_kbs()
        blocker = AttributeClusteringBlocking()
        mapping = blocker.fit(kb1, kb2)
        assert mapping[("kb1", "name")] == mapping[("kb2", "label")]
        assert mapping[("kb1", "city")] == mapping[("kb2", "location")]
        assert mapping[("kb1", "name")] != mapping[("kb1", "city")]

    def test_dissimilar_attribute_goes_to_glue(self):
        kb1, kb2 = make_kbs()
        kb1.add(
            EntityDescription(
                "http://a/3", {"isbn": ["999888777"]}, source="kb1"
            )
        )
        mapping = AttributeClusteringBlocking(similarity_threshold=0.2).fit(kb1, kb2)
        assert mapping[("kb1", "isbn")] == GLUE_CLUSTER

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            AttributeClusteringBlocking(similarity_threshold=1.5)

    def test_keys_before_fit_rejected(self):
        blocker = AttributeClusteringBlocking()
        with pytest.raises(RuntimeError):
            blocker.keys_for(EntityDescription("u", {"p": ["v"]}))


class TestBuild:
    def test_cluster_scoped_keys_separate_contexts(self):
        # 'paris' as a city and 'paris' as a name must not collide.
        kb1 = EntityCollection(
            [
                EntityDescription(
                    "http://a/person",
                    {"name": ["paris hilton"], "city": ["london york"]},
                    source="kb1",
                )
            ],
            name="kb1",
        )
        kb2 = EntityCollection(
            [
                EntityDescription(
                    "http://b/place",
                    {"label": ["paris hilton"], "location": ["london york"]},
                    source="kb2",
                )
            ],
            name="kb2",
        )
        blocker = AttributeClusteringBlocking()
        blocks = blocker.build(kb1, kb2)
        # Keys are cluster-scoped: the same token appears under distinct
        # cluster prefixes for name-cluster and city-cluster.
        keys = set(blocks.keys())
        assert all("#" in key for key in keys)

    def test_recall_retained_on_movies(self, movies):
        kb_a, kb_b, gold = movies
        blocker = AttributeClusteringBlocking()
        blocks = blocker.build(kb_a, kb_b)
        covered = blocks.distinct_comparisons()
        hit = sum(1 for pair in gold.matches if pair in covered)
        assert hit / len(gold.matches) >= 0.7

    def test_precision_improves_over_token_blocking(self, movies):
        from repro.blocking.token_blocking import TokenBlocking
        from repro.model.tokenizer import Tokenizer

        kb_a, kb_b, _ = movies
        token_blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(kb_a, kb_b)
        ac_blocks = AttributeClusteringBlocking().build(kb_a, kb_b)
        assert (
            len(ac_blocks.distinct_comparisons())
            <= len(token_blocks.distinct_comparisons())
        )

    def test_dirty_er_clustering(self):
        kb1, _ = make_kbs()
        blocker = AttributeClusteringBlocking()
        blocks = blocker.build(kb1)
        assert len(blocks) >= 0  # runs without a second collection
