"""Tests for prefix-infix(-suffix) URI blocking."""

from __future__ import annotations

from repro.blocking.prefix_infix_suffix import PrefixInfixSuffixBlocking
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def description(uri: str, **attrs) -> EntityDescription:
    return EntityDescription(uri, {k: [v] for k, v in attrs.items()})


class TestKeys:
    def test_infix_tokens_are_keys(self):
        blocker = PrefixInfixSuffixBlocking()
        keys = blocker.keys_for(description("http://dbpedia.org/resource/New_York"))
        assert {"new", "york"} <= keys

    def test_prefix_not_a_key(self):
        blocker = PrefixInfixSuffixBlocking()
        keys = blocker.keys_for(description("http://dbpedia.org/resource/Berlin"))
        assert "dbpedia" not in keys
        assert "resource" not in keys

    def test_reference_infixes_included_by_default(self):
        blocker = PrefixInfixSuffixBlocking()
        keys = blocker.keys_for(
            description(
                "http://kb.org/film/f123",
                director="http://kb.org/person/Stanley_Kubrick",
            )
        )
        assert {"stanley", "kubrick"} <= keys

    def test_reference_infixes_can_be_disabled(self):
        blocker = PrefixInfixSuffixBlocking(include_reference_infixes=False)
        keys = blocker.keys_for(
            description(
                "http://kb.org/film/f123",
                director="http://kb.org/person/Stanley_Kubrick",
            )
        )
        assert "kubrick" not in keys

    def test_literal_tokens_excluded_by_default(self):
        blocker = PrefixInfixSuffixBlocking()
        keys = blocker.keys_for(description("http://kb.org/x1", name="Some Label"))
        assert "label" not in keys

    def test_total_description_variant(self):
        blocker = PrefixInfixSuffixBlocking(include_literals=True)
        assert blocker.name == "total-description"
        keys = blocker.keys_for(description("http://kb.org/x1", name="Some Label"))
        assert {"some", "label", "x1"} <= keys


class TestBuild:
    def test_name_bearing_uris_block_together(self):
        kb1 = EntityCollection(
            [description("http://kb1.org/resource/Miranda_Velasquez")], name="kb1"
        )
        kb2 = EntityCollection(
            [description("http://kb2.org/people/miranda-velasquez.html")], name="kb2"
        )
        blocks = PrefixInfixSuffixBlocking().build(kb1, kb2)
        assert "miranda" in blocks
        assert blocks["miranda"].cardinality() == 1

    def test_periphery_recall_beats_nothing(self, movies):
        kb_a, kb_b, gold = movies
        blocks = PrefixInfixSuffixBlocking().build(kb_a, kb_b)
        covered = blocks.distinct_comparisons()
        hit = sum(1 for pair in gold.matches if pair in covered)
        # KB-B URIs are opaque (/m/0f1a2) so URI-only blocking catches few
        # movie matches — but it must still produce some candidates via
        # reference infixes without exploding the comparison count.
        assert len(covered) < len(kb_a) * len(kb_b)
