"""Tests for block purging."""

from __future__ import annotations

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.blocking.purging import BlockPurging


def skewed_blocks() -> BlockCollection:
    """Many small blocks plus one stop-token block."""
    blocks = [Block(f"small{i}", [f"a{i}", f"b{i}"]) for i in range(20)]
    blocks.append(Block("stopword", [f"e{i}" for i in range(60)]))
    return BlockCollection(blocks)


class TestExplicitThreshold:
    def test_oversized_blocks_removed(self):
        purged = BlockPurging(max_cardinality=10).process(skewed_blocks())
        assert "stopword" not in purged
        assert len(purged) == 20

    def test_small_blocks_survive(self):
        purged = BlockPurging(max_cardinality=1).process(skewed_blocks())
        assert all(block.cardinality() <= 1 for block in purged)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            BlockPurging(max_cardinality=0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            BlockPurging(smoothing=0.5)


class TestAdaptiveThreshold:
    def test_adaptive_removes_stop_token_block(self):
        blocks = skewed_blocks()
        purging = BlockPurging()
        threshold = purging.adaptive_threshold(blocks)
        assert threshold < Block("stopword", [f"e{i}" for i in range(60)]).cardinality()
        purged = purging.process(blocks)
        assert "stopword" not in purged

    def test_uniform_blocks_untouched(self):
        blocks = BlockCollection(
            [Block(f"k{i}", [f"a{i}", f"b{i}", f"c{i}"]) for i in range(10)]
        )
        purged = BlockPurging().process(blocks)
        assert len(purged) == 10

    def test_empty_collection(self):
        assert len(BlockPurging().process(BlockCollection())) == 0

    def test_purging_preserves_block_contents(self):
        blocks = skewed_blocks()
        purged = BlockPurging(max_cardinality=10).process(blocks)
        assert set(purged["small0"].entities1) == {"a0", "b0"}

    def test_original_collection_untouched(self):
        blocks = skewed_blocks()
        BlockPurging(max_cardinality=10).process(blocks)
        assert "stopword" in blocks

    def test_reduces_comparisons_on_synthetic(self, center_dataset):
        from repro.blocking.token_blocking import TokenBlocking

        blocks = TokenBlocking().build(center_dataset.kb1, center_dataset.kb2)
        purged = BlockPurging().process(blocks)
        assert purged.total_comparisons() < blocks.total_comparisons()
