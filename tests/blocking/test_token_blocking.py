"""Tests for token blocking (and the Blocker base behaviour)."""

from __future__ import annotations

from repro.blocking.token_blocking import TokenBlocking
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer


def kb(name: str, entries: dict[str, dict[str, list[str]]]) -> EntityCollection:
    return EntityCollection(
        [EntityDescription(uri, attrs, source=name) for uri, attrs in entries.items()],
        name=name,
    )


class TestDirtyBlocking:
    def test_shared_token_groups(self):
        collection = kb(
            "kb",
            {
                "http://e/a": {"name": ["alpha beta"]},
                "http://e/b": {"name": ["beta gamma"]},
                "http://e/c": {"name": ["delta"]},
            },
        )
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(collection)
        assert "beta" in blocks
        assert set(blocks["beta"].entities1) == {"http://e/a", "http://e/b"}

    def test_singletons_dropped_by_default(self):
        collection = kb("kb", {"http://e/a": {"name": ["unique"]}})
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(collection)
        assert len(blocks) == 0

    def test_singletons_kept_on_request(self):
        collection = kb("kb", {"http://e/a": {"name": ["unique"]}})
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(
            collection, drop_singletons=False
        )
        assert len(blocks) == 1

    def test_uri_tokens_create_blocks(self):
        collection = kb(
            "kb",
            {
                "http://e/shared_name": {"p": ["x1"]},
                "http://e/shared_label": {"p": ["y1"]},
            },
        )
        blocks = TokenBlocking().build(collection)
        assert "shared" in blocks

    def test_deterministic_block_order(self):
        collection = kb(
            "kb",
            {
                "http://e/a": {"name": ["zeta alpha"]},
                "http://e/b": {"name": ["zeta alpha"]},
            },
        )
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(collection)
        assert blocks.keys() == sorted(blocks.keys())


class TestCleanCleanBlocking:
    def test_bipartite_blocks(self):
        kb1 = kb("kb1", {"http://a/x": {"name": ["rho sigma"]}})
        kb2 = kb("kb2", {"http://b/y": {"title": ["sigma tau"]}})
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(kb1, kb2)
        assert "sigma" in blocks
        block = blocks["sigma"]
        assert block.is_bipartite
        assert block.entities1 == ["http://a/x"]
        assert block.entities2 == ["http://b/y"]

    def test_one_sided_blocks_dropped(self):
        kb1 = kb("kb1", {"http://a/x": {"name": ["only left"]}})
        kb2 = kb("kb2", {"http://b/y": {"title": ["right only"]}})
        blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(kb1, kb2)
        assert "left" not in blocks
        assert "right" not in blocks
        assert "only" in blocks  # shared by both sides

    def test_gold_pair_coverage_on_movies(self, movies):
        kb_a, kb_b, gold = movies
        blocks = TokenBlocking().build(kb_a, kb_b)
        covered = blocks.distinct_comparisons()
        hit = sum(1 for pair in gold.matches if pair in covered)
        # Token blocking is the high-recall method: nearly every gold match
        # shares at least one token.
        assert hit / len(gold.matches) >= 0.9
