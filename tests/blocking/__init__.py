"""Test subpackage (unique module paths for duplicate basenames)."""
