"""Property-based tests of blocking invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.blocking.block import comparison_pair
from repro.blocking.composite import CompositeBlocking
from repro.blocking.filtering import BlockFiltering
from repro.blocking.prefix_infix_suffix import PrefixInfixSuffixBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer

# Small pseudo-word values so collisions actually happen.
words = st.sampled_from(["alpha", "beta", "gamma", "delta", "nile", "kudu", "lima"])
values = st.lists(words, min_size=1, max_size=4).map(" ".join)


@st.composite
def collections(draw, max_size=12):
    count = draw(st.integers(2, max_size))
    descriptions = []
    for i in range(count):
        attrs = {}
        for prop in range(draw(st.integers(1, 3))):
            attrs[f"p{prop}"] = [draw(values)]
        descriptions.append(
            EntityDescription(f"http://e/{i}", attrs, source="kb")
        )
    return EntityCollection(descriptions, name="kb")


TOKENIZER = Tokenizer(include_uri_infix=False)


class TestTokenBlockingProperties:
    @settings(max_examples=40, deadline=None)
    @given(collections())
    def test_pairs_sharing_a_token_are_covered(self, collection):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        covered = blocks.distinct_comparisons()
        descriptions = list(collection)
        for i in range(len(descriptions)):
            for j in range(i + 1, len(descriptions)):
                a, b = descriptions[i], descriptions[j]
                shared = TOKENIZER.token_set(a) & TOKENIZER.token_set(b)
                if shared:
                    assert comparison_pair(a.uri, b.uri) in covered

    @settings(max_examples=40, deadline=None)
    @given(collections())
    def test_blocks_contain_only_key_holders(self, collection):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        for block in blocks:
            for uri in block.entities():
                assert block.key in TOKENIZER.token_set(collection[uri])

    @settings(max_examples=40, deadline=None)
    @given(collections())
    def test_no_self_comparisons(self, collection):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        for left, right in blocks.distinct_comparisons():
            assert left != right


class TestPostProcessingProperties:
    @settings(max_examples=30, deadline=None)
    @given(collections(), st.floats(0.1, 1.0))
    def test_filtering_never_adds_comparisons(self, collection, ratio):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        filtered = BlockFiltering(ratio=ratio).process(blocks)
        assert filtered.distinct_comparisons() <= blocks.distinct_comparisons()

    @settings(max_examples=30, deadline=None)
    @given(collections(), st.integers(1, 50))
    def test_purging_never_adds_comparisons(self, collection, cardinality):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        purged = BlockPurging(max_cardinality=cardinality).process(blocks)
        assert purged.distinct_comparisons() <= blocks.distinct_comparisons()
        for block in purged:
            assert block.cardinality() <= cardinality

    @settings(max_examples=30, deadline=None)
    @given(collections())
    def test_adaptive_purging_is_idempotent(self, collection):
        blocks = TokenBlocking(TOKENIZER).build(collection)
        once = BlockPurging().process(blocks)
        twice = BlockPurging().process(once)
        assert once.keys() == twice.keys()


class TestCompositeProperties:
    @settings(max_examples=30, deadline=None)
    @given(collections())
    def test_composite_covers_union_of_members(self, collection):
        token = TokenBlocking(TOKENIZER)
        pis = PrefixInfixSuffixBlocking(include_reference_infixes=False)
        composite = CompositeBlocking([token, pis])
        composite_pairs = composite.build(collection).distinct_comparisons()
        for member in (token, pis):
            assert member.build(collection).distinct_comparisons() <= composite_pairs
