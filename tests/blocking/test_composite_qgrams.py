"""Tests for composite and q-grams blocking."""

from __future__ import annotations

import pytest

from repro.blocking.composite import CompositeBlocking
from repro.blocking.prefix_infix_suffix import PrefixInfixSuffixBlocking
from repro.blocking.qgrams import QGramsBlocking, qgrams
from repro.blocking.token_blocking import TokenBlocking
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer


def description(uri: str, **attrs) -> EntityDescription:
    return EntityDescription(uri, {k: [v] for k, v in attrs.items()})


class TestQgramsFunction:
    def test_basic(self):
        assert qgrams("abcd", 3) == {"abc", "bcd"}

    def test_short_token_kept_whole(self):
        assert qgrams("ab", 3) == {"ab"}

    def test_exact_length(self):
        assert qgrams("abc", 3) == {"abc"}

    def test_count(self):
        assert len(qgrams("abcdef", 2)) == 5


class TestQGramsBlocking:
    def test_typo_robustness(self):
        # 'kubrick' vs 'kubrik' share no token but share q-grams.
        kb1 = EntityCollection(
            [description("http://a/1", name="kubrick")], name="kb1"
        )
        kb2 = EntityCollection(
            [description("http://b/1", name="kubrik")], name="kb2"
        )
        token_blocks = TokenBlocking(Tokenizer(include_uri_infix=False)).build(kb1, kb2)
        qgram_blocks = QGramsBlocking(
            q=3, tokenizer=Tokenizer(include_uri_infix=False)
        ).build(kb1, kb2)
        assert len(token_blocks.distinct_comparisons()) == 0
        assert ("http://a/1", "http://b/1") in qgram_blocks.distinct_comparisons()

    def test_superset_of_token_recall(self, movies):
        kb_a, kb_b, gold = movies
        tokenizer = Tokenizer(include_uri_infix=True)
        token_pairs = TokenBlocking(tokenizer).build(kb_a, kb_b).distinct_comparisons()
        qgram_pairs = QGramsBlocking(3, tokenizer).build(kb_a, kb_b).distinct_comparisons()
        # Every token implies its own q-grams: q-gram candidates are a superset.
        assert token_pairs <= qgram_pairs

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramsBlocking(q=1)

    def test_name_reflects_q(self):
        assert QGramsBlocking(q=4).name == "4grams-blocking"


class TestCompositeBlocking:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositeBlocking([])

    def test_union_semantics(self):
        blocker = CompositeBlocking(
            [
                TokenBlocking(Tokenizer(include_uri_infix=False)),
                PrefixInfixSuffixBlocking(include_reference_infixes=False),
            ]
        )
        desc = description("http://kb.org/resource/Berlin_City", name="hauptstadt")
        keys = blocker.keys_for(desc)
        assert "hauptstadt" in keys   # from token blocking
        assert "berlin" in keys       # from the URI infix

    def test_namespaced_keys(self):
        blocker = CompositeBlocking(
            [TokenBlocking(Tokenizer(include_uri_infix=False))], namespaced=True
        )
        keys = blocker.keys_for(description("http://a/1", name="alpha"))
        assert keys == {"token-blocking:alpha"}

    def test_merged_keys_reproduce_paper_stage1(self):
        """Token OR URI-token semantics: same block for a value token and
        an identical URI-infix token."""
        kb1 = EntityCollection(
            [description("http://a/resource/arnie", note="something")], name="kb1"
        )
        kb2 = EntityCollection(
            [description("http://b/venue/v1", title="arnie diner")], name="kb2"
        )
        blocker = CompositeBlocking(
            [
                TokenBlocking(Tokenizer(include_uri_infix=False)),
                PrefixInfixSuffixBlocking(include_reference_infixes=False),
            ]
        )
        blocks = blocker.build(kb1, kb2)
        assert "arnie" in blocks
        assert blocks["arnie"].cardinality() == 1

    def test_composite_name(self):
        blocker = CompositeBlocking(
            [TokenBlocking(), PrefixInfixSuffixBlocking()]
        )
        assert blocker.name == "composite(token-blocking+prefix-infix-suffix)"

    def test_recall_at_least_best_member(self, movies):
        kb_a, kb_b, gold = movies
        token = TokenBlocking()
        pis = PrefixInfixSuffixBlocking()
        composite = CompositeBlocking([token, pis])
        composite_pairs = composite.build(kb_a, kb_b).distinct_comparisons()
        for member in (token, pis):
            member_pairs = member.build(kb_a, kb_b).distinct_comparisons()
            assert member_pairs <= composite_pairs
