"""Tests for Block, BlockCollection and comparison identities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.blocking.block import Block, BlockCollection, comparison_pair


class TestComparisonPair:
    def test_canonical_order(self):
        assert comparison_pair("b", "a") == ("a", "b")
        assert comparison_pair("a", "b") == ("a", "b")

    def test_self_comparison_rejected(self):
        with pytest.raises(ValueError):
            comparison_pair("a", "a")

    @given(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))
    def test_symmetry(self, a, b):
        if a == b:
            return
        assert comparison_pair(a, b) == comparison_pair(b, a)


class TestDirtyBlock:
    def test_cardinality(self):
        block = Block("k", ["a", "b", "c"])
        assert block.cardinality() == 3
        assert len(block) == 3
        assert not block.is_bipartite

    def test_comparisons_enumerated(self):
        block = Block("k", ["a", "b", "c"])
        assert set(block.comparisons()) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_members_deduplicated(self):
        block = Block("k", ["a", "a", "b"])
        assert block.entities1 == ["a", "b"]

    def test_singleton_block(self):
        block = Block("k", ["a"])
        assert block.cardinality() == 0
        assert list(block.comparisons()) == []

    def test_contains_pair(self):
        block = Block("k", ["a", "b", "c"])
        assert block.contains_pair("a", "c")
        assert not block.contains_pair("a", "x")


class TestBipartiteBlock:
    def test_cardinality(self):
        block = Block("k", ["a", "b"], ["x", "y", "z"])
        assert block.cardinality() == 6
        assert len(block) == 5
        assert block.is_bipartite

    def test_comparisons_cross_only(self):
        block = Block("k", ["a", "b"], ["x"])
        assert set(block.comparisons()) == {("a", "x"), ("b", "x")}

    def test_one_sided_block_empty(self):
        block = Block("k", ["a", "b"], [])
        assert block.cardinality() == 0
        assert list(block.comparisons()) == []

    def test_entities_both_sides(self):
        block = Block("k", ["a"], ["x"])
        assert block.entities() == ["a", "x"]

    def test_contains_pair_cross(self):
        block = Block("k", ["a"], ["x"])
        assert block.contains_pair("x", "a")
        assert not block.contains_pair("a", "a2")

    def test_cardinality_subtracts_side_overlap(self):
        # 'b' sits on both sides; comparisons() skips the (b, b) pair, so
        # cardinality must not count it.
        block = Block("k", ["a", "b"], ["b", "x"])
        assert block.cardinality() == 3
        assert block.cardinality() == len(list(block.comparisons()))

    @given(
        st.lists(st.sampled_from("abcdef"), min_size=0, max_size=5),
        st.lists(st.sampled_from("abcdef"), min_size=0, max_size=5),
    )
    def test_cardinality_consistent_with_comparisons(self, side1, side2):
        block = Block("k", side1, side2)
        assert block.cardinality() == len(list(block.comparisons()))


class TestBlockCollection:
    def collection(self) -> BlockCollection:
        return BlockCollection(
            [
                Block("k1", ["a", "b"]),
                Block("k2", ["b", "c", "d"]),
                Block("k3", ["a", "b"]),
            ]
        )

    def test_len_iter_getitem(self):
        blocks = self.collection()
        assert len(blocks) == 3
        assert blocks["k2"].cardinality() == 3
        assert "k1" in blocks

    def test_duplicate_keys_rejected(self):
        blocks = self.collection()
        with pytest.raises(ValueError):
            blocks.add(Block("k1", ["x", "y"]))

    def test_remove(self):
        blocks = self.collection()
        blocks.remove("k2")
        assert len(blocks) == 2
        assert "k2" not in blocks

    def test_total_comparisons_with_repetitions(self):
        assert self.collection().total_comparisons() == 1 + 3 + 1

    def test_distinct_comparisons_deduplicated(self):
        distinct = self.collection().distinct_comparisons()
        assert ("a", "b") in distinct
        assert len(distinct) == 4  # ab, bc, bd, cd

    def test_total_assignments(self):
        assert self.collection().total_assignments() == 2 + 3 + 2

    def test_entity_count(self):
        assert self.collection().entity_count() == 4

    def test_entity_index(self):
        blocks = self.collection()
        assert blocks.blocks_of("b") == ["k1", "k2", "k3"]
        assert blocks.blocks_of("ghost") == []

    def test_comparisons_in_common(self):
        blocks = self.collection()
        assert blocks.comparisons_in_common("a", "b") == 2
        assert blocks.comparisons_in_common("a", "d") == 0

    def test_index_invalidated_after_mutation(self):
        blocks = self.collection()
        assert blocks.comparisons_in_common("a", "b") == 2
        blocks.remove("k3")
        assert blocks.comparisons_in_common("a", "b") == 1

    def test_iter_comparisons_with_repetitions(self):
        pairs = list(self.collection().iter_comparisons_with_repetitions())
        assert ("k1", ("a", "b")) in pairs
        assert ("k3", ("a", "b")) in pairs
        assert len(pairs) == 5
