"""Blockers intern entity ids during build (the cold-path lever)."""

from __future__ import annotations

from repro.blocking.qgrams import QGramsBlocking
from repro.blocking.token_blocking import TokenBlocking
from repro.datasets import load_movies


def lazily_derived(blocks):
    """What _ensure_id_views computes from scratch on an unprimed copy."""
    from repro.blocking.block import BlockCollection

    clone = BlockCollection(blocks.blocks(), name=blocks.name)
    return clone._ensure_id_views()


class TestPrimedIdViews:
    def test_build_primes_id_views(self):
        kb1, kb2, _ = load_movies()
        blocks = TokenBlocking().build(kb1, kb2)
        assert blocks._id_views is not None  # no lazy re-derivation needed

    def test_primed_views_equal_lazy_derivation(self):
        kb1, kb2, _ = load_movies()
        for blocker in (TokenBlocking(), QGramsBlocking(q=3)):
            blocks = blocker.build(kb1, kb2)
            primed_interner, primed_blocks = blocks._id_views
            lazy_interner, lazy_blocks = lazily_derived(blocks)
            assert primed_interner.uris() == lazy_interner.uris()
            assert primed_blocks == lazy_blocks

    def test_dirty_build_primes_too(self):
        kb1, _, _ = load_movies()
        blocks = TokenBlocking().build(kb1)
        assert blocks._id_views is not None
        primed_interner, primed_blocks = blocks._id_views
        lazy_interner, lazy_blocks = lazily_derived(blocks)
        assert primed_interner.uris() == lazy_interner.uris()
        assert primed_blocks == lazy_blocks

    def test_mutation_invalidates_primed_views(self):
        from repro.blocking.block import Block

        kb1, kb2, _ = load_movies()
        blocks = TokenBlocking().build(kb1, kb2)
        blocks.add(Block("fresh-key", ["http://e/x", "http://e/y"]))
        interner, id_blocks = blocks._ensure_id_views()
        assert len(id_blocks) == len(blocks)
        assert "http://e/x" in interner
