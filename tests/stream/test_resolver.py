"""Query-time resolution behaviour of the stream resolver."""

from __future__ import annotations

import pytest

from repro.datasets import load_movies, load_restaurants
from repro.model.description import EntityDescription
from repro.stream import StreamResolver


@pytest.fixture()
def restaurant_resolver():
    kb1, kb2, gold = load_restaurants()
    resolver = StreamResolver(clean_clean=True)
    resolver.ingest_batch([d.copy() for d in kb1], 0)
    resolver.ingest_batch([d.copy() for d in kb2], 1)
    return resolver, kb1, kb2, gold


class TestResolve:
    def test_finds_gold_counterparts(self, restaurant_resolver):
        resolver, kb1, kb2, gold = restaurant_resolver
        found = 0
        for left, right in sorted(gold.matches):
            description = (kb1.get(left) or kb2.get(left)).copy()
            source = 0 if left in kb1 else 1
            result = resolver.resolve(description, source=source)
            if right in result.matched_uris():
                found += 1
        # The cosine matcher at the default threshold recovers most of
        # the gold pairs on this corpus; the exact count is pinned by
        # determinism.
        assert found >= len(gold.matches) // 2

    def test_latency_accounting_complete(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        result = resolver.resolve(next(iter(kb1)).copy(), source=0)
        for phase in ("ingest_s", "candidates_s", "weigh_s", "match_s", "total_s"):
            assert phase in result.latency
            assert result.latency[phase] >= 0.0
        assert result.latency["total_s"] >= result.latency["match_s"]

    def test_budget_caps_comparisons(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        description = next(iter(kb1)).copy()
        result = resolver.resolve(description, source=0, pruner="none", budget=1)
        assert result.comparisons <= 1

    def test_clean_clean_never_compares_same_source(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        for description in kb1:
            result = resolver.resolve(description.copy(), source=0, pruner="none")
            for match in result.matches:
                assert match.uri not in kb1

    def test_all_schemes_and_pruners_accepted(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        description = next(iter(kb1)).copy()
        for scheme in ("CBS", "ECBS", "JS", "EJS", "ARCS", "X2"):
            for pruner in ("CNP", "WNP", "none"):
                result = resolver.resolve(description, scheme=scheme, pruner=pruner)
                assert result.comparisons >= 0

    def test_unknown_scheme_and_pruner_rejected(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        description = next(iter(kb1)).copy()
        with pytest.raises(KeyError):
            resolver.resolve(description, scheme="nope")
        with pytest.raises(KeyError):
            resolver.resolve(description, pruner="nope")

    def test_decisions_accumulate_across_queries(self, restaurant_resolver):
        resolver, kb1, _, _ = restaurant_resolver
        description = next(iter(kb1)).copy()
        first = resolver.resolve(description, source=0, pruner="none")
        second = resolver.resolve(description.copy(), source=0, pruner="none")
        # Every pair decided by the first query is skipped by the second.
        assert second.skipped_decided >= first.comparisons
        assert second.comparisons == 0

    def test_repeat_query_still_reports_known_matches(self, restaurant_resolver):
        resolver, kb1, _, gold = restaurant_resolver
        left, right = sorted(gold.matches)[0]
        description = (kb1.get(left) or kb1.get(right)).copy()
        first = resolver.resolve(description, source=0, pruner="none")
        # Re-querying a resolved entity must surface the match found
        # earlier, not hide it behind "already decided".
        second = resolver.resolve(description.copy(), source=0, pruner="none")
        assert set(second.matched_uris()) >= set(first.matched_uris())

    def test_prepopulated_store_is_replayed(self):
        from repro.stream import StreamingEntityStore

        store = StreamingEntityStore()
        store.insert(EntityDescription("http://e/a", {"p": ["alpha beta gamma"]}))
        store.insert(EntityDescription("http://e/c", {"p": ["delta beta"]}))
        late = StreamResolver(store=store)
        fresh = StreamResolver()
        fresh.ingest(EntityDescription("http://e/a", {"p": ["alpha beta gamma"]}))
        fresh.ingest(EntityDescription("http://e/c", {"p": ["delta beta"]}))
        probe = EntityDescription("http://e/b", {"p": ["alpha beta gamma"]})
        late_result = late.resolve(probe.copy(), pruner="none")
        fresh_result = fresh.resolve(probe.copy(), pruner="none")
        assert late_result.candidates == fresh_result.candidates > 0
        assert late_result.matched_uris() == fresh_result.matched_uris()
        assert late.pairs.as_reference_stats() == fresh.pairs.as_reference_stats()

    def test_resolve_without_ingest_requires_known_uri(self):
        resolver = StreamResolver()
        with pytest.raises(KeyError):
            resolver.resolve(
                EntityDescription("http://e/unknown", {"p": ["v"]}), ingest=False
            )

    def test_selectivity_caps_bound_candidates(self):
        kb1, kb2, _ = load_movies()
        capped = StreamResolver(clean_clean=True, max_key_cardinality=2, key_ratio=0.5)
        full = StreamResolver(clean_clean=True)
        for source, kb in enumerate((kb1, kb2)):
            capped.ingest_batch([d.copy() for d in kb], source)
            full.ingest_batch([d.copy() for d in kb], source)
        description = next(iter(kb1)).copy()
        capped_result = capped.resolve(description, source=0, pruner="none")
        full_result = full.resolve(description, source=0, pruner="none")
        assert capped_result.candidates <= full_result.candidates


class TestIngestion:
    def test_ingest_returns_stable_ids(self):
        resolver = StreamResolver()
        a = resolver.ingest(EntityDescription("http://e/a", {"p": ["x y"]}))
        b = resolver.ingest(EntityDescription("http://e/b", {"p": ["y z"]}))
        again = resolver.ingest(EntityDescription("http://e/a", {"p": ["w"]}))
        assert (a, b) == (0, 1)
        assert again == a

    def test_store_length_counts_distinct(self):
        resolver = StreamResolver()
        resolver.ingest(EntityDescription("http://e/a", {"p": ["x"]}))
        resolver.ingest(EntityDescription("http://e/a", {"p": ["y"]}))
        assert len(resolver.store) == 1

    def test_source_bounds_checked(self):
        resolver = StreamResolver()
        with pytest.raises(IndexError):
            resolver.ingest(EntityDescription("http://e/a", {"p": ["x"]}), source=1)
