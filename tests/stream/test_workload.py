"""Workload scenario generation and driver replay."""

from __future__ import annotations

import pytest

from repro.datasets import load_restaurants
from repro.stream import (
    StreamResolver,
    WorkloadDriver,
    bursty_workload,
    skewed_workload,
    uniform_workload,
)
from repro.stream.workload import SCENARIOS, WorkloadEvent


@pytest.fixture(scope="module")
def corpus():
    kb1, kb2, _ = load_restaurants()
    return kb1, kb2


class TestScenarios:
    def test_every_description_is_inserted(self, corpus):
        kb1, kb2 = corpus
        for make_events in SCENARIOS.values():
            events = make_events(kb1, kb2)
            inserted = {e.description.uri for e in events if e.kind == "insert"}
            assert inserted == set(kb1.uris()) | set(kb2.uris())

    def test_queries_target_already_inserted(self, corpus):
        kb1, kb2 = corpus
        for make_events in SCENARIOS.values():
            seen: set[str] = set()
            for event in make_events(kb1, kb2):
                if event.kind == "insert":
                    seen.add(event.description.uri)
                else:
                    assert event.description.uri in seen

    def test_deterministic_under_seed(self, corpus):
        kb1, kb2 = corpus
        for make_events in SCENARIOS.values():
            first = make_events(kb1, kb2, seed=3)
            second = make_events(kb1, kb2, seed=3)
            assert [(e.kind, e.description.uri, e.source) for e in first] == [
                (e.kind, e.description.uri, e.source) for e in second
            ]

    def test_bursty_shape(self, corpus):
        kb1, kb2 = corpus
        events = bursty_workload(kb1, kb2, burst_size=5, queries_per_burst=2)
        kinds = [e.kind for e in events]
        assert kinds[:5] == ["insert"] * 5
        assert kinds[5:7] == ["query"] * 2

    def test_uniform_ratio(self, corpus):
        kb1, kb2 = corpus
        events = uniform_workload(kb1, kb2, query_every=3)
        inserts = sum(1 for e in events if e.kind == "insert")
        queries = sum(1 for e in events if e.kind == "query")
        assert queries == inserts // 3

    def test_skewed_prefers_early_arrivals(self, corpus):
        kb1, kb2 = corpus
        events = skewed_workload(kb1, kb2, query_every=2, zipf_exponent=2.5, seed=1)
        arrival_rank = {}
        ranks = []
        for event in events:
            if event.kind == "insert":
                arrival_rank.setdefault(event.description.uri, len(arrival_rank))
            else:
                ranks.append(arrival_rank[event.description.uri])
        # With a strong exponent the median queried rank sits well below
        # the median arrival rank.
        assert sorted(ranks)[len(ranks) // 2] < len(arrival_rank) // 2

    def test_validation(self, corpus):
        kb1, kb2 = corpus
        with pytest.raises(ValueError):
            uniform_workload(kb1, kb2, query_every=0)
        with pytest.raises(ValueError):
            bursty_workload(kb1, kb2, burst_size=0)
        with pytest.raises(ValueError):
            skewed_workload(kb1, kb2, zipf_exponent=0)


class TestDriver:
    def test_replay_counts_and_latencies(self, corpus):
        kb1, kb2 = corpus
        events = uniform_workload(kb1, kb2, query_every=4)
        stats = WorkloadDriver(StreamResolver(clean_clean=True)).run(
            events, scenario="uniform"
        )
        assert stats.inserts == len(kb1) + len(kb2)
        assert stats.queries == sum(1 for e in events if e.kind == "query")
        assert len(stats.insert_latencies_s) == stats.inserts
        assert len(stats.query_latencies_s) == stats.queries
        assert stats.elapsed_s > 0
        assert stats.throughput_eps > 0
        assert len(stats.insert_latency_by_quartile()) == 4
        summary = stats.latency_summary("query")
        assert summary["p50"] <= summary["p95"] <= summary["max"]

    def test_summary_rows_render(self, corpus):
        from repro.evaluation.reporting import format_table

        kb1, kb2 = corpus
        stats = WorkloadDriver(StreamResolver(clean_clean=True)).run(
            bursty_workload(kb1, kb2), scenario="bursty"
        )
        table = format_table(stats.summary_rows(), title="t", first_column="metric")
        assert "throughput" in table

    def test_unknown_event_kind_rejected(self, corpus):
        kb1, _ = corpus
        driver = WorkloadDriver(StreamResolver())
        bad = [WorkloadEvent("mutate", next(iter(kb1)).copy())]
        with pytest.raises(ValueError):
            driver.run(bad)

    def test_on_query_callback_sees_results(self, corpus):
        kb1, kb2 = corpus
        results = []
        WorkloadDriver(StreamResolver(clean_clean=True)).run(
            uniform_workload(kb1, kb2, query_every=5),
            on_query=results.append,
        )
        assert results and all(r.latency["total_s"] >= 0 for r in results)


class TestInterruptedReplay:
    """SIGINT mid-replay: partial stats survive and the run stays
    recoverable (the `repro stream` Ctrl-C contract)."""

    @staticmethod
    def _interrupt_after(events, count):
        for position, event in enumerate(events):
            if position == count:
                raise KeyboardInterrupt
            yield event

    def test_interrupt_returns_prefix_stats(self, corpus):
        kb1, kb2 = corpus
        events = uniform_workload(kb1, kb2)
        stats = WorkloadDriver(StreamResolver(clean_clean=True)).run(
            self._interrupt_after(events, 12), scenario="uniform"
        )
        assert stats.interrupted
        assert stats.events == 12
        assert any(
            row["metric"] == "interrupted" for row in stats.summary_rows()
        )

    def test_interrupted_durable_run_is_recoverable(self, corpus, tmp_path):
        from repro.stream.durability import Durability, capture_state, recover

        kb1, kb2 = corpus
        events = uniform_workload(kb1, kb2)
        resolver = StreamResolver(
            clean_clean=True, durability=Durability(str(tmp_path))
        )
        stats = WorkloadDriver(resolver).run(self._interrupt_after(events, 20))
        assert stats.interrupted
        resolver.close()  # what cmd_stream does after the interrupt

        reference = StreamResolver(clean_clean=True)
        WorkloadDriver(reference).run(events[:20])
        recovered = recover(str(tmp_path))
        assert capture_state(
            recovered.store, recovered.index, recovered.pairs
        ) == capture_state(reference.store, reference.index, reference.pairs)

    def test_interrupt_flushes_telemetry_before_wal_close(
        self, corpus, tmp_path, monkeypatch
    ):
        """The `repro stream` Ctrl-C stat-loss fix: the runner flushes
        the metrics/trace snapshot BEFORE closing the WAL, so telemetry
        survives even when the durability shutdown itself fails."""
        from repro.api import Pipeline, PipelineSpec
        from repro.obs import Observability, load_trace, parse_metrics_text
        from repro.stream.workload import WorkloadDriver

        kb1, kb2 = corpus
        interrupt_after = self._interrupt_after
        original_run = WorkloadDriver.run

        def interrupting_run(self, events, **kwargs):
            return original_run(self, interrupt_after(events, 12), **kwargs)

        monkeypatch.setattr(WorkloadDriver, "run", interrupting_run)

        def failing_close(self):
            raise OSError("disk gone at shutdown")

        from repro.stream.resolver import StreamResolver as Resolver

        monkeypatch.setattr(Resolver, "close", failing_close)

        telemetry_dir = tmp_path / "telemetry"
        spec = PipelineSpec.from_dict(
            {
                "backend": {
                    "kind": "stream",
                    "scenario": "uniform",
                    "durability_dir": str(tmp_path / "wal"),
                }
            }
        )
        obs = Observability(directory=str(telemetry_dir))
        with pytest.raises(OSError):
            Pipeline(spec, obs=obs).execute(kb1, kb2, stream_bridge=False)

        # The flush ran before the (failing) WAL close: both artifacts
        # are on disk and reflect the executed prefix.
        spans = load_trace(str(telemetry_dir / "trace.jsonl"))
        assert any(span.name == "stream.insert" for span in spans)
        with open(telemetry_dir / "metrics.txt", encoding="utf-8") as handle:
            metrics = parse_metrics_text(handle.read())
        assert metrics["repro.stream.insert.count"]["value"] > 0
        assert metrics["repro.stream.insert.count"]["value"] < len(kb1) + len(kb2)


class TestStatsMetricsAgreement:
    """Satellite regression: the legacy stats rows and the metric
    registry are the same live objects — summaries agree bit-for-bit."""

    def test_latency_summaries_equal_registry_histograms(self, corpus):
        from repro.obs import InMemorySink, Observability

        kb1, kb2 = corpus
        obs = Observability(sink=InMemorySink())
        resolver = StreamResolver(clean_clean=True, obs=obs)
        stats = WorkloadDriver(resolver).run(
            uniform_workload(kb1, kb2, query_every=3), scenario="uniform"
        )
        registry = obs.registry
        for kind in ("insert", "query", "delete"):
            hist = registry.get(f"repro.stream.{kind}.seconds")
            assert hist is getattr(stats, f"{kind}_hist")
            assert stats.latency_summary(kind) == hist.summary()
        assert registry.get("repro.stream.insert.count").value == stats.inserts
        assert registry.get("repro.stream.query.count").value == stats.queries
        assert (
            registry.get("repro.stream.matches.count").value
            == stats.matches_found
        )
        assert (
            registry.get("repro.stream.serve.seconds").sum == stats.serve_s
        )

    def test_exposition_parses_back_to_the_stats_values(self, corpus):
        from repro.obs import InMemorySink, Observability, parse_metrics_text, prometheus_text

        kb1, kb2 = corpus
        obs = Observability(sink=InMemorySink())
        resolver = StreamResolver(clean_clean=True, obs=obs)
        stats = WorkloadDriver(resolver).run(
            uniform_workload(kb1, kb2, query_every=3)
        )
        parsed = parse_metrics_text(prometheus_text(obs.registry))
        entry = parsed["repro.stream.query.seconds"]
        # repr-rendered floats round-trip bit-identically to the stats.
        assert entry["count"] == stats.queries
        assert entry["sum"] == stats.query_hist.sum
        assert entry["quantiles"][0.5] == stats.latency_summary("query")["p50"]
        assert parsed["repro.stream.insert.count"]["value"] == stats.inserts

    def test_reconcile_wall_agrees_with_view_metric(self, corpus):
        from repro.obs import InMemorySink, Observability

        kb1, kb2 = corpus
        obs = Observability(sink=InMemorySink())
        resolver = StreamResolver(
            clean_clean=True, processed_view=True, reconcile_every=8, obs=obs
        )
        stats = WorkloadDriver(resolver).run(
            uniform_workload(kb1, kb2, query_every=3)
        )
        assert stats.reconciles > 0
        view_hist = obs.registry.get("repro.stream.view.reconcile.seconds")
        assert view_hist.count == stats.reconciles
        # The view's metric times the reconcile body; the stats' total
        # (driver-side) includes it plus the durability hooks.
        assert view_hist.sum <= stats.reconcile_s
        assert resolver.view.last_report.wall_s in view_hist.values


class TestGracefulSigterm:
    """SIGTERM takes the same graceful path as SIGINT (satellite)."""

    def test_sigterm_becomes_keyboard_interrupt_and_is_witnessed(self):
        import os
        import signal

        from repro.stream.workload import graceful_sigterm

        with graceful_sigterm() as witness:
            with pytest.raises(KeyboardInterrupt):
                # Delivered synchronously: CPython runs the handler at
                # the next bytecode boundary after kill() returns.
                os.kill(os.getpid(), signal.SIGTERM)
        assert witness.name == "SIGTERM"
        # The previous disposition is restored on exit.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_driver_returns_partial_stats_on_sigterm(self, corpus):
        import os
        import signal

        from repro.stream.workload import graceful_sigterm

        kb1, kb2 = corpus
        resolver = StreamResolver(clean_clean=True)
        events = uniform_workload(kb1, kb2, query_every=3)
        fired = []

        def terminate_once(_result):
            if not fired:
                fired.append(True)
                os.kill(os.getpid(), signal.SIGTERM)

        with graceful_sigterm() as witness:
            stats = WorkloadDriver(resolver).run(
                events, on_query=terminate_once
            )
        assert stats.interrupted
        assert witness.name == "SIGTERM"
        # The prefix before the signal was recorded, the suffix was not.
        assert 0 < stats.events < len(events)

    def test_sigint_path_leaves_witness_empty(self, corpus):
        from repro.stream.workload import graceful_sigterm

        kb1, kb2 = corpus
        resolver = StreamResolver(clean_clean=True)

        def interrupt_once(_result):
            raise KeyboardInterrupt()

        with graceful_sigterm() as witness:
            stats = WorkloadDriver(resolver).run(
                uniform_workload(kb1, kb2, query_every=3),
                on_query=interrupt_once,
            )
        assert stats.interrupted
        assert witness.name is None

    def test_interrupt_signal_shows_in_summary(self, corpus):
        kb1, kb2 = corpus
        resolver = StreamResolver(clean_clean=True)
        stats = WorkloadDriver(resolver).run(
            uniform_workload(kb1, kb2, query_every=3)
        )
        stats.interrupted = True
        stats.interrupt_signal = "SIGTERM"
        rows = {row["metric"]: row["value"] for row in stats.summary_rows()}
        assert rows["interrupted"] == "yes (SIGTERM, partial replay)"
