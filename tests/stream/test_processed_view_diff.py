"""Differential property harness for the incremental processed view.

Hypothesis drives random insert interleavings — one or two sources,
duplicated arrivals, descriptions fragmented so attributes trickle in
out of order — against :class:`IncrementalProcessedView`, differencing
it against the exact ``snapshot_processed()`` oracle:

* after **every** reconciliation the view is bit-identical to the
  oracle (keys, members, cardinalities), and an immediate second
  reconciliation repairs nothing (drift 0);
* the **key-partitioned partial** repair (the default after the first
  pass) lands on the same exact state as a forced full snapshot-diff
  pass, at every reconcile point of the same interleaving;
* **between** reconciliations the drift is bounded by the staleness
  contract: the purge layer (histogram → threshold) is exact at all
  times, the staleness counter never exceeds the reconcile interval
  when queries drive the view, and every reconcile report's staleness
  equals the inserts it absorbed.

All three sample corpora feed the interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging, cardinality_histogram
from repro.datasets import load_movies, load_people, load_restaurants
from repro.model.description import EntityDescription
from repro.stream import (
    IncrementalBlockIndex,
    IncrementalProcessedView,
    StreamingEntityStore,
    StreamResolver,
    SurvivorPairTable,
)

_LOADERS = {
    "restaurants": load_restaurants,
    "movies": load_movies,
    "people": load_people,
}
_CORPUS_CACHE: dict[str, tuple] = {}


def _corpus(name: str):
    if name not in _CORPUS_CACHE:
        kb1, kb2, _gold = _LOADERS[name]()
        _CORPUS_CACHE[name] = (kb1, kb2)
    return _CORPUS_CACHE[name]


def _fragments(description: EntityDescription, data) -> list[EntityDescription]:
    """Split a description into 1–2 attribute pieces (merge trickle)."""
    pairs = list(description.pairs())
    if len(pairs) < 2 or not data.draw(st.booleans()):
        return [description.copy()]
    cut = data.draw(st.integers(1, len(pairs) - 1))
    out = []
    for part in (pairs[:cut], pairs[cut:]):
        attributes: dict[str, list] = {}
        for prop, value in part:
            attributes.setdefault(prop, []).append(value)
        out.append(EntityDescription(description.uri, attributes))
    return out


def _draw_arrivals(data) -> tuple[str, bool, list[tuple[EntityDescription, int]]]:
    """A random interleaving: corpus, sources, fragmented + duplicated."""
    corpus_name = data.draw(st.sampled_from(sorted(_LOADERS)))
    kb1, kb2 = _corpus(corpus_name)
    two_sources = data.draw(st.booleans())
    pool = [(description, 0) for description in kb1]
    if two_sources:
        pool += [(description, 1) for description in kb2]
    indices = data.draw(
        st.lists(
            st.integers(0, len(pool) - 1),
            min_size=4,
            max_size=min(18, len(pool)),
            unique=True,
        )
    )
    pieces: list[tuple[EntityDescription, int]] = []
    for index in indices:
        description, source = pool[index]
        for piece in _fragments(description, data):
            pieces.append((piece, source))
    arrivals = data.draw(st.permutations(pieces))
    duplicates = data.draw(st.lists(st.sampled_from(arrivals), max_size=4))
    return corpus_name, two_sources, list(arrivals) + [
        (description.copy(), source) for description, source in duplicates
    ]


def _assert_view_exact(view, index, purging, filtering, context: str) -> None:
    """Rebuilt view content must be bit-identical to the oracle."""
    exact = index.snapshot_processed(purging, filtering)
    rebuilt = view._build_collection()
    assert rebuilt.keys() == exact.keys(), context
    for key in exact.keys():
        assert rebuilt[key].entities1 == exact[key].entities1, (context, key)
        assert rebuilt[key].entities2 == exact[key].entities2, (context, key)
        assert rebuilt[key].cardinality() == exact[key].cardinality(), (
            context,
            key,
        )
    assert rebuilt.id_blocks() == exact.id_blocks(), context
    # materialize() must return the cached exact collection object after
    # a reconcile at the same store version.
    assert view.materialize() is exact or view.materialize().keys() == exact.keys()


def _draw_ops(data) -> tuple[str, bool, list[tuple]]:
    """A random insert/delete interleaving over a fragmented arrival mix.

    Deletes always target a currently-live URI (roughly one delete per
    four inserts); a URI deleted early can arrive again later via the
    duplicated tail — the re-insert-after-retraction case.
    """
    corpus_name, two_sources, arrivals = _draw_arrivals(data)
    ops: list[tuple] = []
    live: list[str] = []
    for description, source in arrivals:
        ops.append(("insert", description, source))
        if description.uri not in live:
            live.append(description.uri)
        if live and data.draw(st.integers(0, 3)) == 0:
            victim = data.draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("delete", victim, None))
    return corpus_name, two_sources, ops


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_reconcile_restores_exactness_under_any_interleaving(data):
    """view == snapshot_processed() after every reconciliation."""
    corpus_name, two_sources, arrivals = _draw_arrivals(data)
    interval = data.draw(st.integers(1, 9))
    sources = ("kb1", "kb2") if two_sources else ("kb1",)
    store = StreamingEntityStore(sources=sources)
    index = IncrementalBlockIndex(store)
    purging, filtering = BlockPurging(), BlockFiltering()
    view = IncrementalProcessedView(
        index, purging, filtering, reconcile_every=interval
    )
    since_reconcile = 0
    for description, source in arrivals:
        store.insert(description.copy(), source)
        since_reconcile += 1
        # The purge layer is exact at ALL times: the maintained
        # histogram (and the threshold derived from it) must equal the
        # batch distribution over the raw snapshot — the bounded-drift
        # half of the staleness contract.
        raw = index.snapshot()
        assert view.histogram() == cardinality_histogram(raw)
        assert view.threshold == purging.adaptive_threshold(raw)
        if view.due:
            report = view.reconcile()
            assert report.staleness == since_reconcile
            since_reconcile = 0
            _assert_view_exact(
                view, index, purging, filtering, f"{corpus_name}@reconcile"
            )
    report = view.reconcile()
    assert report.staleness == since_reconcile
    _assert_view_exact(view, index, purging, filtering, f"{corpus_name}@final")
    # An immediately repeated reconcile has nothing left to repair.
    assert view.reconcile().drift == 0


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_survivor_stats_follow_reconciled_view(data):
    """SurvivorPairTable == batch graph over the processed collection."""
    from repro.metablocking.graph import BlockingGraph
    from repro.metablocking.weighting import make_scheme

    _name, two_sources, arrivals = _draw_arrivals(data)
    sources = ("kb1", "kb2") if two_sources else ("kb1",)
    store = StreamingEntityStore(sources=sources)
    index = IncrementalBlockIndex(store)
    view = IncrementalProcessedView(index, reconcile_every=5)
    table = SurvivorPairTable(view)
    for position, (description, source) in enumerate(arrivals):
        store.insert(description.copy(), source)
        if view.due:
            view.reconcile()
    view.reconcile()
    processed = index.snapshot_processed()
    reference = BlockingGraph(processed, make_scheme("CBS"))._pair_statistics()
    assert table.as_reference_stats() == reference
    assert table.active_blocks == len(processed)
    assert table.total_assignments == processed.total_assignments()
    assert table.entities_placed == processed.entity_count()


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_resolver_honors_staleness_bound(data):
    """Auto-reconciliation keeps view staleness strictly under K."""
    _name, two_sources, arrivals = _draw_arrivals(data)
    interval = data.draw(st.integers(2, 6))
    resolver = StreamResolver(
        clean_clean=two_sources,
        processed_view=True,
        reconcile_every=interval,
    )
    assert resolver.view is not None
    for position, (description, source) in enumerate(arrivals):
        if position % 3 == 2:
            result = resolver.resolve(description.copy(), source=source)
            # A query reconciles when due, so it never serves a view
            # staler than the configured bound.
            assert resolver.view.staleness < interval
            assert "reconcile_s" in result.latency
            assert "serve_s" in result.latency
        else:
            resolver.ingest(description.copy(), source)


def test_pinned_max_cardinality_threshold_applies_between_reconciles():
    """Regression: an explicit ``max_cardinality`` must drive presence
    checks from the first insert — not leave the view at the default
    threshold of 1, silently dropping every multi-comparison block."""
    kb1, kb2 = _corpus("restaurants")
    store = StreamingEntityStore(sources=(kb1.name, kb2.name))
    index = IncrementalBlockIndex(store)
    purging = BlockPurging(max_cardinality=10**9)
    filtering = BlockFiltering()
    view = IncrementalProcessedView(index, purging, filtering)
    for source, kb in enumerate([kb1, kb2]):
        for description in kb:
            store.insert(description.copy(), source)
    assert view.threshold == 10**9
    # Without any reconcile, the maintained view must already expose
    # blocks implying more than one comparison (every entity was
    # touched, so the approximation is exact here).
    live = view._build_collection()
    assert any(block.cardinality() > 1 for block in live)
    exact = index.snapshot_processed(purging, filtering)
    assert live.keys() == exact.keys()
    view.reconcile()
    _assert_view_exact(view, index, purging, filtering, "pinned-threshold")


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_reconcile_restores_exactness_under_deletions(data):
    """view == snapshot_processed() after every reconcile, with the
    purge layer (histogram → threshold) exact after EVERY op — inserts
    and retractions alike."""
    corpus_name, two_sources, ops = _draw_ops(data)
    interval = data.draw(st.integers(1, 9))
    sources = ("kb1", "kb2") if two_sources else ("kb1",)
    store = StreamingEntityStore(sources=sources)
    index = IncrementalBlockIndex(store)
    purging, filtering = BlockPurging(), BlockFiltering()
    view = IncrementalProcessedView(
        index, purging, filtering, reconcile_every=interval
    )
    for op in ops:
        if op[0] == "insert":
            store.insert(op[1].copy(), op[2])
        else:
            assert store.delete(op[1])
        raw = index.snapshot()
        assert view.histogram() == cardinality_histogram(raw)
        assert view.threshold == purging.adaptive_threshold(raw)
        if view.due:
            view.reconcile()
            _assert_view_exact(
                view, index, purging, filtering, f"{corpus_name}@churn-reconcile"
            )
    view.reconcile()
    _assert_view_exact(view, index, purging, filtering, f"{corpus_name}@churn-final")
    assert view.reconcile().drift == 0


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_tombstoned_entities_never_resolve(data):
    """A retracted entity must never surface in resolve() results
    (unless it was re-inserted afterwards) — even while the approximate
    view is stale — and a reconcile leaves no tombstone placed."""
    _name, two_sources, ops = _draw_ops(data)
    resolver = StreamResolver(
        clean_clean=two_sources, processed_view=True, reconcile_every=4
    )
    tombstoned: set[str] = set()
    for position, op in enumerate(ops):
        if op[0] == "insert":
            description, source = op[1], op[2]
            tombstoned.discard(description.uri)
            if position % 3 == 2:
                result = resolver.resolve(description.copy(), source=source)
                surfaced = set(result.matched_uris())
                assert not surfaced & tombstoned, (surfaced, tombstoned)
            else:
                resolver.ingest(description.copy(), source)
        else:
            resolver.delete(op[1])
            tombstoned.add(op[1])
            assert resolver.store.get(op[1]) is None
    # Between reconciles the approximate view may lag a retraction (the
    # same bounded staleness inserts get); a reconcile must purge it.
    resolver.view.reconcile()
    placed: set[str] = set()
    for block in resolver.view._build_collection():
        placed.update(block.entities1)
        placed.update(block.entities2 or ())
    assert not placed & tombstoned


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_partial_repair_equals_full_repair(data):
    """Partial repair == forced full repair, at every reconcile point.

    Two views replay the same insert/delete interleaving; one
    reconciles with the default strategy (key-partitioned partial after
    the first pass), the other forces the full snapshot diff each time.
    Both must be bit-identical to the oracle — and to each other — at
    every reconcile point.
    """
    corpus_name, two_sources, ops = _draw_ops(data)
    interval = data.draw(st.integers(1, 9))
    sources = ("kb1", "kb2") if two_sources else ("kb1",)
    purging, filtering = BlockPurging(), BlockFiltering()

    def build():
        store = StreamingEntityStore(sources=sources)
        index = IncrementalBlockIndex(store)
        view = IncrementalProcessedView(
            index, purging, filtering, reconcile_every=interval
        )
        return store, index, view

    store_p, index_p, view_p = build()
    store_f, _index_f, view_f = build()
    first = True
    for op in ops:
        for store in (store_p, store_f):
            if op[0] == "insert":
                store.insert(op[1].copy(), op[2])
            else:
                assert store.delete(op[1])
        if view_p.due:
            partial = view_p.reconcile()
            forced = view_f.reconcile(full=True)
            assert forced.mode == "full"
            assert partial.mode == ("full" if first else "partial")
            first = False
            _assert_view_exact(
                view_p, index_p, purging, filtering, f"{corpus_name}@partial"
            )
            assert (
                view_p._build_collection().id_blocks()
                == view_f._build_collection().id_blocks()
            )
    partial = view_p.reconcile()
    view_f.reconcile(full=True)
    assert partial.mode == ("full" if first else "partial")
    _assert_view_exact(
        view_p, index_p, purging, filtering, f"{corpus_name}@partial-final"
    )
    assert (
        view_p._build_collection().id_blocks()
        == view_f._build_collection().id_blocks()
    )
    # Nothing dirty ⇒ an immediate partial pass repairs nothing.
    again = view_p.reconcile()
    assert again.mode == "partial"
    assert again.drift == 0
    assert again.entities_repaired == 0


@pytest.mark.parametrize("corpus_name", sorted(_LOADERS))
def test_full_corpus_reconciles_exactly(corpus_name):
    """Deterministic end-to-end check per corpus (no hypothesis)."""
    kb1, kb2 = _corpus(corpus_name)
    store = StreamingEntityStore(sources=(kb1.name, kb2.name))
    index = IncrementalBlockIndex(store)
    purging, filtering = BlockPurging(), BlockFiltering()
    view = IncrementalProcessedView(index, purging, filtering)
    for source, kb in enumerate([kb1, kb2]):
        for description in kb:
            store.insert(description.copy(), source)
    # The very first pass is always the full snapshot diff...
    report = view.reconcile()
    assert report.mode == "full"
    assert report.entities_repaired == len(kb1) + len(kb2)
    _assert_view_exact(view, index, purging, filtering, corpus_name)
    # ...and a quiet follow-up is a partial no-op.
    again = view.reconcile()
    assert again.mode == "partial"
    assert again.drift == 0
    assert again.entities_repaired == 0
