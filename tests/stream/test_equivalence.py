"""The streaming equivalence contract, corpus by corpus.

Ingesting a corpus stream-wise — entity by entity or in micro-batches —
must leave the streamed state **bit-identical** to the batch pipeline
over the same final corpus: raw blocks, processed blocks, pair-table
statistics, per-pair weights for all six schemes, and pruned edges.
"""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.qgrams import QGramsBlocking
from repro.blocking.token_blocking import TokenBlocking
from repro.datasets import load_movies, load_people, load_restaurants
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import PRUNERS, make_pruner
from repro.metablocking.weighting import SCHEMES, make_scheme
from repro.stream import StreamResolver

CORPORA = {
    "restaurants": load_restaurants,
    "movies": load_movies,
    "people": load_people,
}


def make_streamed(kb1, kb2, micro_batch: int | None = None, blocker=None):
    """A resolver fed the corpus entity-by-entity (or in micro-batches)."""
    resolver = StreamResolver(clean_clean=kb2 is not None, blocker=blocker)
    resolver.store.collections[0].name = kb1.name
    if kb2 is not None:
        resolver.store.collections[1].name = kb2.name
    for source, collection in enumerate([kb1] if kb2 is None else [kb1, kb2]):
        descriptions = [description.copy() for description in collection]
        if micro_batch is None:
            for description in descriptions:
                resolver.ingest(description, source)
        else:
            for start in range(0, len(descriptions), micro_batch):
                resolver.ingest_batch(
                    descriptions[start : start + micro_batch], source
                )
    return resolver


def assert_blocks_equal(ours, theirs):
    assert ours.keys() == theirs.keys()
    for key in theirs.keys():
        assert ours[key].entities1 == theirs[key].entities1, key
        assert ours[key].entities2 == theirs[key].entities2, key


@pytest.fixture(scope="module", params=sorted(CORPORA))
def corpus(request):
    kb1, kb2, gold = CORPORA[request.param]()
    return kb1, kb2


@pytest.fixture(scope="module")
def streamed(corpus):
    return make_streamed(*corpus)


class TestBlockEquivalence:
    def test_raw_blocks_identical(self, corpus, streamed):
        kb1, kb2 = corpus
        assert_blocks_equal(streamed.index.snapshot(), TokenBlocking().build(kb1, kb2))

    def test_processed_blocks_identical(self, corpus, streamed):
        kb1, kb2 = corpus
        batch = BlockFiltering().process(
            BlockPurging().process(TokenBlocking().build(kb1, kb2))
        )
        assert_blocks_equal(streamed.index.snapshot_processed(), batch)

    def test_micro_batches_reach_the_same_state(self, corpus, streamed):
        kb1, kb2 = corpus
        batched = make_streamed(kb1, kb2, micro_batch=7)
        assert_blocks_equal(batched.index.snapshot(), streamed.index.snapshot())
        assert batched.pairs.as_reference_stats() == streamed.pairs.as_reference_stats()

    def test_snapshot_matches_batch_name_and_id_views(self, corpus, streamed):
        kb1, kb2 = corpus
        batch = TokenBlocking().build(kb1, kb2)
        snapshot = streamed.index.snapshot()
        assert snapshot.name == batch.name
        assert snapshot.id_blocks() == batch.id_blocks()
        assert snapshot.interner().uris() == batch.interner().uris()

    def test_qgrams_key_space_supported(self, corpus):
        kb1, kb2 = corpus
        blocker = QGramsBlocking(q=3)
        streamed = make_streamed(kb1, kb2, blocker=QGramsBlocking(q=3))
        assert_blocks_equal(streamed.index.snapshot(), blocker.build(kb1, kb2))


class TestPairStatisticsEquivalence:
    def test_common_and_arcs_match_reference(self, corpus, streamed):
        kb1, kb2 = corpus
        raw = TokenBlocking().build(kb1, kb2)
        reference = BlockingGraph(raw, make_scheme("CBS"))._pair_statistics()
        assert streamed.pairs.as_reference_stats() == reference

    def test_global_factors_match_batch(self, corpus, streamed):
        kb1, kb2 = corpus
        raw = TokenBlocking().build(kb1, kb2)
        assert streamed.pairs.active_blocks == len(raw)
        assert streamed.pairs.total_assignments == raw.total_assignments()
        assert streamed.pairs.entities_placed == raw.entity_count()
        placements = {
            uri: len(keys) for uri, keys in raw.entity_index().items()
        }
        interner = streamed.store.interner
        ours = {
            interner.uri_of(entity_id): count
            for entity_id, count in streamed.pairs.placements.items()
        }
        assert ours == placements


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestWeightEquivalence:
    def test_per_pair_weights_bit_identical(self, corpus, streamed, scheme_name):
        kb1, kb2 = corpus
        raw = TokenBlocking().build(kb1, kb2)
        edges = BlockingGraph(raw, make_scheme(scheme_name)).materialize()
        for (uri_a, uri_b), weight in edges.items():
            assert streamed.pairs.weight(scheme_name, uri_a, uri_b) == weight

    def test_pruned_edges_bit_identical(self, corpus, streamed, scheme_name):
        kb1, kb2 = corpus
        processed = BlockFiltering().process(
            BlockPurging().process(TokenBlocking().build(kb1, kb2))
        )
        for pruner_name in sorted(PRUNERS):
            batch = make_pruner(pruner_name).prune(
                BlockingGraph(processed, make_scheme(scheme_name))
            )
            assert streamed.pruned_edges(scheme_name, pruner_name) == batch


class TestDirtyStreaming:
    def test_dirty_corpus_equivalence(self, dirty_dataset):
        collection, _gold = dirty_dataset
        resolver = make_streamed(collection, None)
        raw = TokenBlocking().build(collection)
        assert_blocks_equal(resolver.index.snapshot(), raw)
        reference = BlockingGraph(raw, make_scheme("CBS"))._pair_statistics()
        assert resolver.pairs.as_reference_stats() == reference
        for scheme_name in sorted(SCHEMES):
            batch = make_pruner("CNP").prune(
                BlockingGraph(
                    BlockFiltering().process(BlockPurging().process(raw)),
                    make_scheme(scheme_name),
                )
            )
            assert resolver.pruned_edges(scheme_name, "CNP") == batch
