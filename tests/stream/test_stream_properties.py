"""Property tests: arrival order and duplicates never break equivalence.

The streaming layer promises convergence: whatever order descriptions
arrive in — shuffled, duplicated, or split so one entity's attributes
trickle in across several merge inserts — the streamed state equals the
batch pipeline over the final merged corpus.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.weighting import make_scheme
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.stream import StreamResolver

TOKENS = ["alpha", "beta", "gamma", "delta", "kappa", "sigma"]


descriptions = st.builds(
    lambda i, props: EntityDescription(
        f"http://e/{i}",
        {"p": [" ".join(sorted(props))]} if props else {"q": ["solo"]},
    ),
    st.integers(0, 9),
    st.sets(st.sampled_from(TOKENS), max_size=4),
)


def _merged_collection(arrivals: list[EntityDescription]) -> EntityCollection:
    """The final corpus the batch pipeline would load: merge by URI."""
    collection = EntityCollection(name="stream")
    for description in arrivals:
        collection.add(description.copy())
    return collection


def _streamed(arrivals: list[EntityDescription]) -> StreamResolver:
    resolver = StreamResolver()
    for description in arrivals:
        resolver.ingest(description.copy())
    return resolver


def _assert_equivalent(resolver: StreamResolver, collection: EntityCollection):
    batch = TokenBlocking().build(collection)
    snapshot = resolver.index.snapshot()
    assert snapshot.keys() == batch.keys()
    for key in batch.keys():
        assert snapshot[key].entities1 == batch[key].entities1
    reference = BlockingGraph(batch, make_scheme("CBS"))._pair_statistics()
    assert resolver.pairs.as_reference_stats() == reference


@settings(max_examples=60, deadline=None)
@given(st.lists(descriptions, min_size=1, max_size=14))
def test_any_arrival_order_matches_batch(arrivals):
    """Shuffled, interleaved, whatever: stream state == batch state."""
    _assert_equivalent(_streamed(arrivals), _merged_collection(arrivals))


@settings(max_examples=40, deadline=None)
@given(st.lists(descriptions, min_size=1, max_size=8), st.data())
def test_duplicate_inserts_are_idempotent(arrivals, data):
    """Re-inserting any prefix of the stream changes nothing."""
    resolver = _streamed(arrivals)
    before = resolver.pairs.as_reference_stats()
    duplicates = data.draw(
        st.lists(st.sampled_from(arrivals), max_size=len(arrivals))
    )
    for description in duplicates:
        resolver.ingest(description.copy())
    assert resolver.pairs.as_reference_stats() == before
    _assert_equivalent(resolver, _merged_collection(arrivals))


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.sampled_from(TOKENS), min_size=2, max_size=5),
    st.lists(descriptions, min_size=1, max_size=8),
    st.integers(1, 4),
)
def test_attribute_trickle_merges_like_batch(tokens, others, split):
    """One entity arriving in pieces equals that entity arriving whole.

    This is the merge-straggler path: a late piece can grant an entity a
    blocking key that younger entities already claimed, forcing the lazy
    posting re-sort to restore batch (arrival-rank) member order.
    """
    token_list = sorted(tokens)
    pieces = [
        EntityDescription(
            "http://e/split", {f"p{index}": [token]}
        )
        for index, token in enumerate(token_list)
    ]
    # Stream: first piece early, remaining pieces after the other entities.
    arrivals = pieces[:split] + others + pieces[split:]
    whole = EntityDescription(
        "http://e/split",
        {f"p{index}": [token] for index, token in enumerate(token_list)},
    )
    _assert_equivalent(
        _streamed(arrivals), _merged_collection(arrivals)
    )
    # And the final corpus really is "entity arrived whole".
    merged = _merged_collection(arrivals)
    assert merged["http://e/split"] == whole
