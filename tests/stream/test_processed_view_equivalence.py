"""Processed-view equivalence: every corpus × workload scenario.

The acceptance contract of the incremental processed view: after any
of the three arrival/query scenarios replays over any sample corpus —
through the full :class:`StreamResolver` serving path, with automatic
reconciliations — one final reconciliation leaves the view
**bit-identical** to ``snapshot_processed()``: same blocks, members,
cardinalities and id views, with survivor pair statistics equal to a
batch graph over the processed collection.
"""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.datasets import load_movies, load_people, load_restaurants
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.weighting import make_scheme
from repro.model.collection import EntityCollection
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.workload import SCENARIOS

CORPORA = {
    "restaurants": load_restaurants,
    "movies": load_movies,
    "people": load_people,
}


@pytest.fixture(scope="module", params=sorted(CORPORA))
def corpus(request):
    kb1, kb2, _gold = CORPORA[request.param]()
    return kb1, kb2


@pytest.fixture(params=sorted(SCENARIOS))
def replayed(request, corpus):
    """A view-serving resolver after a full scenario replay."""
    kb1, kb2 = corpus
    resolver = StreamResolver(
        clean_clean=True, processed_view=True, reconcile_every=10
    )
    resolver.store.collections[0].name = kb1.name
    resolver.store.collections[1].name = kb2.name
    events = SCENARIOS[request.param](kb1, kb2)
    stats = WorkloadDriver(resolver).run(events, scenario=request.param)
    return resolver, stats


def test_reconciled_view_bit_identical(corpus, replayed):
    resolver, _stats = replayed
    # The replay auto-reconciled at least once, so this pass takes the
    # key-partitioned partial path...
    report = resolver.view.reconcile()
    assert report.mode == "partial"
    exact = resolver.index.snapshot_processed()
    # ...whose repaired state rebuilds to the same collection: keys,
    # per-side members, cardinalities, id views, name.
    rebuilt = resolver.view.materialize()
    assert rebuilt.name == exact.name
    assert rebuilt.keys() == exact.keys()
    for key in exact.keys():
        assert rebuilt[key].entities1 == exact[key].entities1, key
        assert rebuilt[key].entities2 == exact[key].entities2, key
        assert rebuilt[key].cardinality() == exact[key].cardinality(), key
    assert rebuilt.id_blocks() == exact.id_blocks()
    assert rebuilt.interner().uris() == exact.interner().uris()
    # A forced full pass hands back the exact snapshot itself.
    assert resolver.view.reconcile(full=True).mode == "full"
    assert resolver.view.materialize() is exact


def test_view_matches_batch_pipeline(corpus, replayed):
    """The reconciled view equals batch purge+filter over the live corpus.

    For the insert-only scenarios the live corpus is the full corpus
    (queries re-resolve already-inserted descriptions); for ``churn``
    and ``erasure`` it is the survivors of the deletions — either way
    the oracle is the batch pipeline over what is live at the end,
    which is exactly the deletion contract: retractions leave no trace.
    """
    resolver, _stats = replayed
    resolver.view.reconcile()
    live1, live2 = (
        EntityCollection(
            (description.copy() for description in collection),
            name=collection.name,
        )
        for collection in resolver.store.collections
    )
    batch = BlockFiltering().process(
        BlockPurging().process(TokenBlocking().build(live1, live2))
    )
    view = resolver.view.materialize()
    assert view.keys() == batch.keys()
    for key in batch.keys():
        assert view[key].entities1 == batch[key].entities1, key
        assert view[key].entities2 == batch[key].entities2, key


def test_survivor_stats_match_processed_graph(corpus, replayed):
    resolver, _stats = replayed
    resolver.view.reconcile()
    processed = resolver.index.snapshot_processed()
    reference = BlockingGraph(processed, make_scheme("CBS"))._pair_statistics()
    assert resolver.view_pairs.as_reference_stats() == reference
    assert resolver.view_pairs.active_blocks == len(processed)
    assert resolver.view_pairs.total_assignments == processed.total_assignments()
    assert resolver.view_pairs.entities_placed == processed.entity_count()


def test_replay_reports_reconcile_serve_split(replayed):
    """The driver surfaces the reconcile-vs-serve latency split."""
    resolver, stats = replayed
    assert stats.queries > 0
    assert stats.serve_s > 0.0
    # With interval 10 and dozens of inserts, at least one query must
    # have auto-reconciled.
    assert stats.reconciles >= 1
    assert stats.reconcile_s > 0.0
    rows = {row["metric"] for row in stats.summary_rows()}
    assert "view reconciles (queries)" in rows
