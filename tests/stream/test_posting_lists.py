"""Array-backed posting lists: growth, sort markers, no redundant work.

The incremental index keeps each key's postings in contiguous int64
arrays and re-sorts lazily only the (key, side) pairs a merge straggler
actually disturbed — clearing the marker once sorted.  The
``resort_count`` counter makes that observable: repeated snapshots (with
or without straggler-free inserts in between) must do zero additional
sort work.
"""

from __future__ import annotations

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.description import EntityDescription
from repro.stream import IncrementalBlockIndex, StreamingEntityStore


def _entity(i: int, tokens: str) -> EntityDescription:
    return EntityDescription(f"http://e/{i}", {"p": [tokens]})


def _fresh_index() -> tuple[StreamingEntityStore, IncrementalBlockIndex]:
    store = StreamingEntityStore(sources=("kb",))
    return store, IncrementalBlockIndex(store)


class TestArrayBackedPostings:
    def test_postings_are_int64_arrays(self):
        store, index = _fresh_index()
        store.insert(_entity(0, "alpha beta"))
        store.insert(_entity(1, "alpha"))
        side0, side1 = index.postings("alpha")
        assert isinstance(side0, array) and side0.typecode == "q"
        assert list(side0) == [0, 1]
        assert len(side1) == 0

    def test_absent_key_yields_empty_arrays(self):
        _, index = _fresh_index()
        side0, side1 = index.postings("nope")
        assert len(side0) == 0 and len(side1) == 0

    def test_growth_preserves_arrival_order(self):
        store, index = _fresh_index()
        for i in range(100):
            store.insert(_entity(i, "shared"))
        side0, _ = index.postings("shared")
        assert list(side0) == list(range(100))


class TestNoRedundantSorts:
    def test_straggler_free_stream_never_sorts(self):
        store, index = _fresh_index()
        for i in range(20):
            store.insert(_entity(i, f"tok{i % 3} common"))
            index.snapshot()
        assert index.resort_count == 0

    def test_straggler_sorted_once_then_marker_cleared(self):
        store, index = _fresh_index()
        store.insert(_entity(0, "alpha"))
        store.insert(_entity(1, "beta"))
        # Merge grants entity 0 the key "beta" after entity 1 claimed it:
        # the posting list is now out of arrival order for that key.
        store.insert(_entity(0, "beta"))
        assert index.resort_count == 0  # lazy: nothing sorted yet
        snapshot = index.snapshot()
        assert index.resort_count == 1
        assert snapshot["beta"].entities1 == ["http://e/0", "http://e/1"]
        # Repeated snapshots — with straggler-free inserts in between —
        # must not re-sort the already-restored key.
        index.snapshot()
        store.insert(_entity(2, "beta gamma"))
        index.snapshot()
        assert index.resort_count == 1

    def test_only_touched_side_resorts(self):
        store = StreamingEntityStore(sources=("kb1", "kb2"))
        index = IncrementalBlockIndex(store)
        store.insert(_entity(0, "alpha"), source=0)
        store.insert(_entity(1, "alpha"), source=1)
        store.insert(_entity(2, "beta"), source=0)
        store.insert(_entity(0, "beta"), source=0)  # straggler on side 0 only
        index.snapshot()
        assert index.resort_count == 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.sampled_from(["a", "b", "c", "a b"])),
            min_size=1,
            max_size=25,
        )
    )
    def test_repeated_snapshots_do_no_extra_work(self, arrivals):
        store, index = _fresh_index()
        for entity, tokens in arrivals:
            store.insert(_entity(entity, tokens))
        index.snapshot()
        after_first = index.resort_count
        index.snapshot_processed()
        index.snapshot()
        index.snapshot_processed()
        assert index.resort_count == after_first


class TestSnapshotBlockCache:
    def test_untouched_blocks_reused_across_snapshots(self):
        store, index = _fresh_index()
        store.insert(_entity(0, "alpha beta"))
        store.insert(_entity(1, "alpha beta"))
        first = index.snapshot()
        store.insert(_entity(2, "gamma delta"))
        store.insert(_entity(3, "gamma"))
        second = index.snapshot()
        # "alpha" was not touched by the later inserts: the very same
        # Block object is reused, only the collection is rebuilt.
        assert second["alpha"] is first["alpha"]
        assert second["gamma"].entities1 == ["http://e/2", "http://e/3"]

    def test_touched_blocks_rebuilt(self):
        store, index = _fresh_index()
        store.insert(_entity(0, "alpha"))
        store.insert(_entity(1, "alpha"))
        first = index.snapshot()
        store.insert(_entity(2, "alpha"))
        second = index.snapshot()
        assert second["alpha"] is not first["alpha"]
        assert second["alpha"].entities1 == [
            "http://e/0",
            "http://e/1",
            "http://e/2",
        ]
