"""Regression: ``snapshot_processed`` caching is keyed by operator params.

The original cache only covered the default purging/filtering
combination: non-default operators were recomputed on every call — and
a parameter-keyed cache naïvely added without version tracking would
serve **stale** results after an insert.  These tests pin both sides:
distinct parameterizations get distinct, reused entries, and every
entry is invalidated by the next insert.
"""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.model.description import EntityDescription
from repro.stream import IncrementalBlockIndex, StreamingEntityStore


def _populated_index() -> tuple[StreamingEntityStore, IncrementalBlockIndex]:
    store = StreamingEntityStore(sources=("kb1", "kb2"))
    index = IncrementalBlockIndex(store)
    for i in range(6):
        store.insert(
            EntityDescription(f"http://a/{i}", {"p": [f"alpha beta tok{i}"]}), 0
        )
        store.insert(
            EntityDescription(f"http://b/{i}", {"p": [f"alpha beta tok{i}"]}), 1
        )
    return store, index


def test_default_combination_is_cached():
    _store, index = _populated_index()
    assert index.snapshot_processed() is index.snapshot_processed()


def test_non_default_combination_is_cached():
    _store, index = _populated_index()
    purging = BlockPurging(max_cardinality=3)
    filtering = BlockFiltering(ratio=0.5)
    first = index.snapshot_processed(purging, filtering)
    # Same parameters — even via fresh operator instances — hit the entry.
    second = index.snapshot_processed(
        BlockPurging(max_cardinality=3), BlockFiltering(ratio=0.5)
    )
    assert first is second


def test_distinct_parameters_get_distinct_entries():
    _store, index = _populated_index()
    default = index.snapshot_processed()
    tight = index.snapshot_processed(BlockPurging(max_cardinality=1))
    assert default is not tight
    assert len(tight) <= len(default)
    # Both entries stay live side by side.
    assert index.snapshot_processed() is default
    assert index.snapshot_processed(BlockPurging(max_cardinality=1)) is tight


def test_insert_invalidates_non_default_entries():
    """The staleness regression: a parameter-keyed entry must not
    survive an insert."""
    store, index = _populated_index()
    purging = BlockPurging(max_cardinality=100)
    stale = index.snapshot_processed(purging)
    before = sorted(stale.keys())
    store.insert(
        EntityDescription("http://a/new", {"p": ["alpha beta freshtoken"]}), 0
    )
    store.insert(
        EntityDescription("http://b/new", {"p": ["freshtoken"]}), 1
    )
    fresh = index.snapshot_processed(purging)
    assert fresh is not stale
    assert "freshtoken" in fresh.keys()
    assert "freshtoken" not in before
    # The new entity appears in the blocks it shares with old ones.
    assert any(
        "http://a/new" in fresh[key].entities1 for key in fresh.keys()
    )


def test_delete_invalidates_cached_snapshots():
    """The retraction regression: stale cached Blocks must not survive
    a delete — neither the raw snapshot, the processed entries, nor the
    per-key block cache may still surface the retracted entity."""
    store, index = _populated_index()
    purging = BlockPurging(max_cardinality=100)
    raw_stale = index.snapshot()
    processed_stale = index.snapshot_processed(purging)
    assert "http://a/0" in raw_stale["alpha"].entities1

    version = store.version
    assert store.delete("http://a/0")
    assert store.version == version + 1  # exactly one bump per delete

    raw_fresh = index.snapshot()
    processed_fresh = index.snapshot_processed(purging)
    assert raw_fresh is not raw_stale
    assert processed_fresh is not processed_stale
    for snapshot in (raw_fresh, processed_fresh):
        for key in snapshot.keys():
            assert "http://a/0" not in snapshot[key].entities1, key
    # tok0 lost its only left-side member → the block is a singleton now
    assert "tok0" not in raw_fresh.keys()
    # A repeated delete of a gone entity is a no-op: no version churn,
    # the cache entries stay live.
    assert not store.delete("http://a/0")
    assert store.version == version + 1
    assert index.snapshot() is raw_fresh


def test_delete_bumps_similarity_epoch_and_drops_vectors():
    """IDF shifts on retraction: cached vectors must re-derive."""
    from repro.stream.similarity import StreamingSimilarityIndex

    store, _index = _populated_index()
    similarity = StreamingSimilarityIndex(store)
    # A pair with *partial* token overlap: the score moves with IDF
    # (identical descriptions would score 1.0 under any weighting).
    before = similarity.cosine("http://a/1", "http://b/2")
    epoch = similarity.epoch
    # "alpha"/"beta" appear in every description; removing one entity
    # shifts their document frequency, so every cached vector is stale.
    store.delete("http://a/0")
    assert similarity.epoch > epoch
    assert "http://a/0" not in similarity
    with pytest.raises(KeyError):
        similarity.tokens_of("http://a/0")
    after = similarity.cosine("http://a/1", "http://b/2")
    assert after != before  # IDF actually moved
    # Deleting an entity the similarity index never saw changes nothing.
    epoch = similarity.epoch
    store.delete("http://nowhere/x")
    assert similarity.epoch == epoch


def test_subclass_does_not_collide_with_base_entry():
    """An operator subclass (different behavior, same params) must not
    share the base class's cache entry."""
    _store, index = _populated_index()

    class KeepEverything(BlockPurging):
        def process(self, blocks):
            return blocks

    base = index.snapshot_processed(BlockPurging())
    sub = index.snapshot_processed(KeepEverything())
    assert base is not sub
