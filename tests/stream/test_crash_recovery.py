"""Fault-injection harness for the durability layer.

The crash-recovery gate: kill a durable workload replay at arbitrary
event indices — clean abandons, torn byte-budget crashes, and a crash
mid-snapshot — and assert that :func:`repro.stream.durability.recover`
rebuilds state **bit-identical** to an uninterrupted in-memory replay
of the surviving prefix, for every corpus × scenario combination.

Three independent oracles keep the check non-circular:

* a fresh in-memory resolver replaying the same event prefix (validates
  that the WAL captured every state-bearing transition);
* ``recover(from_scratch=True)`` — full-WAL replay, no snapshot
  (validates snapshot serialization against pure log replay);
* the live pre-crash capture, for clean-shutdown round trips.

Plus WAL-level unit coverage: CRC framing, torn-tail truncation,
header versioning, fsync batching, snapshot atomicity and pruning.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.datasets import load_movies, load_people, load_restaurants
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.durability import (
    CrashError,
    CrashyFiles,
    Durability,
    OsFiles,
    WriteAheadLog,
    capture_state,
    list_snapshots,
    load_snapshot,
    recover,
    write_snapshot,
)
from repro.stream.workload import SCENARIOS

_LOADERS = {
    "restaurants": load_restaurants,
    "movies": load_movies,
    "people": load_people,
}
_CORPUS_CACHE: dict[str, tuple] = {}

#: scenarios the acceptance gate runs (erasure is covered separately by
#: the processed-view equivalence suite; churn exercises deletions here)
GATE_SCENARIOS = ("uniform", "bursty", "skewed", "churn")


def _corpus(name: str):
    if name not in _CORPUS_CACHE:
        kb1, kb2, _gold = _LOADERS[name]()
        _CORPUS_CACHE[name] = (kb1, kb2)
    return _CORPUS_CACHE[name]


def _events(corpus_name: str, scenario: str, limit: int = 90):
    kb1, kb2 = _corpus(corpus_name)
    return SCENARIOS[scenario](kb1, kb2)[:limit]


def _capture(stack) -> dict:
    """capture_state() of anything exposing the five components."""
    return capture_state(
        stack.store, stack.index, stack.pairs, stack.view, stack.view_pairs
    )


def _replay(events, durability=None, processed_view=False) -> StreamResolver:
    resolver = StreamResolver(
        clean_clean=True,
        processed_view=processed_view,
        reconcile_every=10 if processed_view else None,
        durability=durability,
    )
    WorkloadDriver(resolver).run(events, scenario="crash-test")
    return resolver


# -- WAL unit coverage -------------------------------------------------------


class TestWriteAheadLog:
    def _fresh(self, tmp_path, **kwargs) -> WriteAheadLog:
        return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)

    def test_roundtrip_and_reopen(self, tmp_path):
        wal = self._fresh(tmp_path)
        wal.write_header({"name": "s", "sources": ["a"], "view": None})
        assert wal.append("insert", [["u1", {}, 0], 0]) == 1
        assert wal.append("delete", ["u1"]) == 2
        wal.close()

        reopened = self._fresh(tmp_path)
        assert reopened.header is not None
        assert reopened.header["name"] == "s"
        assert reopened.last_lsn == 2
        assert reopened.record_count == 2
        assert [k for _l, k, _p in reopened.records()] == ["insert", "delete"]
        # appending continues at the next LSN
        assert reopened.append("reconcile", []) == 3
        reopened.close()

    def test_records_after_lsn_filters(self, tmp_path):
        wal = self._fresh(tmp_path)
        wal.write_header({})
        for i in range(5):
            wal.append("insert", [i])
        assert [p for _l, _k, p in wal.records(after_lsn=3)] == [[3], [4]]
        wal.close()

    def test_append_requires_header(self, tmp_path):
        wal = self._fresh(tmp_path)
        with pytest.raises(ValueError, match="header"):
            wal.append("insert", [])

    def test_double_header_rejected(self, tmp_path):
        wal = self._fresh(tmp_path)
        wal.write_header({})
        with pytest.raises(ValueError, match="header"):
            wal.write_header({})
        wal.close()

    def test_torn_tail_truncated(self, tmp_path):
        wal = self._fresh(tmp_path)
        wal.write_header({})
        wal.append("insert", ["a"])
        wal.append("insert", ["b"])
        wal.close()
        path = tmp_path / "wal.log"
        intact = path.read_bytes()
        # A power cut mid-append: a partial record with no newline.
        path.write_bytes(intact + b"00000000 [3,\"ins")

        reopened = self._fresh(tmp_path)
        assert reopened.record_count == 2
        assert reopened.last_lsn == 2
        # ...and the file itself was physically truncated back.
        assert path.read_bytes() == intact
        reopened.close()

    def test_crc_corruption_truncates_suffix(self, tmp_path):
        wal = self._fresh(tmp_path)
        wal.write_header({})
        for value in ("a", "b", "c"):
            wal.append("insert", [value])
        wal.close()
        path = tmp_path / "wal.log"
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        # Flip one body byte of record 2 (index 2: header, rec1, rec2).
        corrupt = bytearray(lines[2])
        corrupt[-2] ^= 0xFF
        lines[2] = bytes(corrupt)
        path.write_bytes(b"\n".join(lines))

        reopened = self._fresh(tmp_path)
        # The valid prefix survives; the corrupt record AND everything
        # after it (LSN continuity is broken) are gone.
        assert [p for _l, _k, p in reopened.records()] == [["a"]]
        assert reopened.last_lsn == 1
        reopened.close()

    def test_foreign_header_rejected(self, tmp_path):
        body = b'[0,"header",{"format":"not-a-wal","version":1}]'
        (tmp_path / "wal.log").write_bytes(
            b"%08x %s\n" % (zlib.crc32(body), body)
        )
        wal = self._fresh(tmp_path)
        assert wal.header is None
        assert wal.record_count == 0
        with pytest.raises(FileNotFoundError):
            recover(str(tmp_path))

    def test_fsync_batching(self, tmp_path):
        class CountingFiles(OsFiles):
            def __init__(self):
                self.fsyncs = 0

            def fsync(self, handle):
                self.fsyncs += 1

        files = CountingFiles()
        wal = self._fresh(tmp_path, fsync_every=3, files=files)
        wal.write_header({})  # syncs once
        after_header = files.fsyncs
        for i in range(7):
            wal.append("insert", [i])
        # batched: appends 3 and 6 sync
        assert files.fsyncs == after_header + 2
        wal.close()  # clean shutdown always syncs
        assert files.fsyncs == after_header + 3

        deferred = WriteAheadLog(
            str(tmp_path / "deferred.log"), fsync_every=0, files=files
        )
        deferred.write_header({})
        base = files.fsyncs
        for i in range(10):
            deferred.append("insert", [i])
        assert files.fsyncs == base  # 0 = only close() syncs
        deferred.close()
        assert files.fsyncs == base + 1


# -- snapshot files ----------------------------------------------------------


class TestSnapshots:
    def test_write_load_roundtrip(self, tmp_path):
        state = {"store": {"x": [1, 2, 3]}}
        path = write_snapshot(str(tmp_path), 42, state, {"name": "s"})
        document = load_snapshot(path)
        assert document is not None
        assert document["lsn"] == 42
        assert document["state"] == state
        assert document["config"] == {"name": "s"}
        assert list_snapshots(str(tmp_path)) == [path]

    def test_corrupt_snapshot_loads_as_none(self, tmp_path):
        path = write_snapshot(str(tmp_path), 7, {"a": 1}, {})
        raw = bytearray(open(path, "rb").read())
        raw[-3] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        assert load_snapshot(path) is None

    def test_listing_is_newest_first(self, tmp_path):
        paths = [
            write_snapshot(str(tmp_path), lsn, {}, {}) for lsn in (5, 80, 19)
        ]
        assert list_snapshots(str(tmp_path)) == [paths[1], paths[2], paths[0]]

    def test_torn_snapshot_write_leaves_only_tmp(self, tmp_path):
        """Atomicity: a crash mid-write never produces a readable file."""
        big_state = {"store": {"live": ["x" * 40] * 50}}
        with pytest.raises(CrashError):
            write_snapshot(
                str(tmp_path), 9, big_state, {}, files=CrashyFiles(budget=64)
            )
        names = os.listdir(tmp_path)
        assert names == ["snapshot-000000000009.json.tmp"]
        assert list_snapshots(str(tmp_path)) == []


# -- the crash-recovery gate -------------------------------------------------


@pytest.mark.parametrize("corpus_name", sorted(_LOADERS))
@pytest.mark.parametrize("scenario", GATE_SCENARIOS)
def test_crash_gate_bit_identical(tmp_path, corpus_name, scenario):
    """Abandon at 1/3 and 2/3 of the stream; recovery must be exact.

    One corpus runs with the processed view attached so reconcile and
    pending-drain ("apply") records are part of the replayed history.
    """
    events = _events(corpus_name, scenario)
    processed_view = corpus_name == "restaurants"
    for fraction, boundary in ((1, 3), (2, 3)):
        n = max(1, len(events) * fraction // boundary)
        directory = str(tmp_path / f"crash-{fraction}of{boundary}")
        prefix = events[:n]

        durable = _replay(
            prefix,
            durability=Durability(directory, snapshot_every=12),
            processed_view=processed_view,
        )
        assert durable.durability is not None
        durable.durability.abandon()  # die without the clean-shutdown sync

        recovered = recover(directory)
        reference = _replay(prefix, processed_view=processed_view)
        assert _capture(recovered) == _capture(reference), (
            corpus_name,
            scenario,
            n,
        )
        # The snapshot path must agree with pure full-WAL replay.
        scratch = recover(directory, from_scratch=True)
        assert _capture(recovered) == _capture(scratch)
        assert scratch.report.snapshot_lsn == 0
        assert scratch.report.replayed_events == scratch.report.wal_records

        report = recovered.report
        assert report.last_lsn == report.wal_records  # nothing torn
        if report.snapshot_lsn > 0:
            # The acceptance gate: recovery replays strictly fewer
            # events than the full history once a snapshot exists.
            assert report.replayed_events < report.wal_records


def test_deep_crash_recovers_strictly_fewer_events(tmp_path):
    """Late crash indices must always have a snapshot to restore from."""
    events = _events("restaurants", "churn", limit=80)
    directory = str(tmp_path / "deep")
    durable = _replay(events, durability=Durability(directory, snapshot_every=10))
    durable.durability.abandon()
    recovered = recover(directory)
    report = recovered.report
    assert report.snapshot_lsn > 0
    assert report.replayed_events < report.wal_records
    assert _capture(recovered) == _capture(_replay(events))


def test_clean_shutdown_roundtrip_matches_live_state(tmp_path):
    """close() then recover() equals the live pre-shutdown capture."""
    events = _events("movies", "uniform", limit=60)
    directory = str(tmp_path / "clean")
    durable = _replay(
        events,
        durability=Durability(directory, snapshot_every=15),
        processed_view=True,
    )
    live = _capture(durable)
    durable.close()
    recovered = recover(directory)
    assert _capture(recovered) == live


@pytest.mark.parametrize("budget", [260, 900, 2600])
def test_byte_budget_crash_keeps_surviving_prefix(tmp_path, budget):
    """A torn write at an arbitrary byte offset never poisons recovery.

    The torn record is truncated on open; whatever prefix survived must
    recover identically through the snapshot path and full-WAL replay,
    and contain only entities the interrupted run actually ingested.
    """
    events = _events("restaurants", "churn", limit=70)
    directory = str(tmp_path / "torn")
    resolver = StreamResolver(
        clean_clean=True,
        durability=Durability(
            directory, snapshot_every=8, files=CrashyFiles(budget=budget)
        ),
    )
    crashed = False
    try:
        for event in events:
            if event.kind == "insert":
                resolver.ingest(event.description, event.source)
            elif event.kind == "delete":
                resolver.delete(event.description.uri)
            else:
                resolver.resolve(
                    event.description, source=event.source, ingest=True
                )
    except CrashError:
        crashed = True
    assert crashed, "byte budget outlasted the replay — lower it"

    recovered = recover(directory)
    scratch = recover(directory, from_scratch=True)
    assert _capture(recovered) == _capture(scratch)
    ingested = {event.description.uri for event in events}
    for collection in recovered.store.collections:
        assert {d.uri for d in collection} <= ingested
    assert recovered.report.wal_records == recovered.report.last_lsn


def test_crash_mid_snapshot_falls_back_to_wal(tmp_path):
    """Dying inside the snapshot write leaves a .tmp recovery ignores."""

    class TearFirstSnapshot(OsFiles):
        """Plain I/O until the first snapshot write, which is torn."""

        def __init__(self):
            self.torn = False

        def write_bytes(self, path, payload):
            if not self.torn:
                self.torn = True
                with open(path, "wb") as handle:
                    handle.write(payload[: len(payload) // 2])
                raise CrashError("injected crash mid-snapshot")
            super().write_bytes(path, payload)

    events = _events("restaurants", "uniform", limit=50)
    directory = str(tmp_path / "midsnap")
    resolver = StreamResolver(
        clean_clean=True,
        processed_view=True,
        reconcile_every=10,
        durability=Durability(
            directory, snapshot_every=9, files=TearFirstSnapshot()
        ),
    )
    applied = []
    with pytest.raises(CrashError):
        for event in events:
            # The WAL record lands (write-ahead) and the event is fully
            # applied before maybe_snapshot() runs, so the event that
            # triggers the torn snapshot IS part of the durable prefix.
            applied.append(event)
            if event.kind == "insert":
                resolver.ingest(event.description, event.source)
            elif event.kind == "delete":
                resolver.delete(event.description.uri)
            else:
                resolver.resolve(
                    event.description, source=event.source, ingest=True
                )

    assert any(name.endswith(".tmp") for name in os.listdir(directory))
    assert list_snapshots(directory) == []  # the torn one is invisible

    recovered = recover(directory)
    reference = _replay(applied, processed_view=True)
    assert _capture(recovered) == _capture(reference)
    assert recovered.report.snapshot_lsn == 0  # fell back to the WAL


def test_recover_empty_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        recover(str(tmp_path))


def test_corrupt_newest_snapshot_falls_back_to_older(tmp_path):
    """Recovery skips CRC-invalid snapshots, restoring the next valid one."""
    events = _events("restaurants", "uniform", limit=60)
    directory = str(tmp_path / "gen")
    durable = _replay(
        events, durability=Durability(directory, snapshot_every=8)
    )
    assert durable.durability.snapshots_written >= 2
    durable.close()

    newest, older = list_snapshots(directory)[:2]
    raw = bytearray(open(newest, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    with open(newest, "wb") as handle:
        handle.write(bytes(raw))

    recovered = recover(directory)
    assert recovered.report.snapshot_path == older
    assert recovered.report.replayed_events < recovered.report.wal_records
    assert _capture(recovered) == _capture(_replay(events))


def test_snapshot_pruning_keeps_configured_generations(tmp_path):
    events = _events("restaurants", "uniform", limit=70)
    directory = str(tmp_path / "prune")
    durable = _replay(
        events,
        durability=Durability(directory, snapshot_every=6, keep_snapshots=2),
    )
    assert durable.durability.snapshots_written > 2
    assert len(list_snapshots(directory)) == 2
    durable.close()


def test_resume_after_recovery_continues_the_log(tmp_path):
    """recover(resume=True) keeps logging; a later recovery sees it all."""
    events = _events("restaurants", "uniform", limit=30)
    directory = str(tmp_path / "resume")
    first = _replay(events, durability=Durability(directory, snapshot_every=10))
    count_before = sum(len(c) for c in first.store.collections)
    first.durability.abandon()

    resumed = StreamResolver.recover(
        directory, resume=True, snapshot_every=10, clean_clean=True
    )
    assert resumed.recovery is not None
    assert sum(len(c) for c in resumed.store.collections) == count_before
    extra = _events("movies", "uniform", limit=1)[0]
    resumed.ingest(extra.description, extra.source)
    resumed.close()

    final = recover(directory)
    assert (
        sum(len(c) for c in final.store.collections) == count_before + 1
    )
    assert final.store.get(extra.description.uri) is not None
