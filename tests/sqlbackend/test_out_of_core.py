"""Out-of-core gate: the SQL backend must scale past its page cache.

The point of ``db_path`` is working sets larger than memory: the pair
enumeration and weighting run as sqlite streams over an on-disk
database whose page cache is deliberately tiny, so correctness cannot
depend on the whole working set being resident.  The test

* synthesizes a corpus whose database comfortably exceeds the
  configured page cache,
* runs purge → filter → weight → prune in a **subprocess** with
  ``db_path`` on disk and ``cache_kib`` pinned low, recording the edge
  digest, peak RSS and final database size,
* and asserts the digest matches the in-memory run bit-for-bit, the
  database really outgrew the cache, and the subprocess RSS stayed
  bounded (no accidental full materialization).

Marked ``slow``: minutes-scale, runs in the CI nightly job.  Deselect
locally with ``-m 'not slow'``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: deliberately tiny sqlite page cache (KiB) — the database must not fit
CACHE_KIB = 256

#: generous ceiling on subprocess peak RSS (KiB).  The streamed folds
#: keep per-stage state proportional to entities, not pairs; a full
#: materialization of the pair table would blow well past this.
MAX_RSS_KIB = 400 * 1024


def synthetic_blocks(entities_per_side=4000, keys=6000, keys_per_entity=4):
    """A deterministic two-source corpus bigger than the page cache.

    An LCG assigns each entity a handful of keys; a skewed tail of hub
    keys yields a realistic cardinality histogram (so purging actually
    trims something).  No randomness module: reruns and the subprocess
    see byte-identical blocks.
    """
    from repro.blocking.block import Block, BlockCollection

    members: dict[int, tuple[list[str], list[str]]] = {}
    state = 0x2545F4914F6CDD1D
    for side in range(2):
        prefix = "ab"[side]
        for index in range(entities_per_side):
            uri = f"http://example.org/{prefix}{index:05d}"
            for _ in range(keys_per_entity):
                state = (state * 6364136223846793005 + 1442695040888963407) % (
                    1 << 64
                )
                # square the draw to skew low: a few hub keys, many rare
                draw = (state >> 16) % (keys * keys)
                key = int(draw**0.5) % keys
                sides = members.setdefault(key, ([], []))
                if uri not in sides[side]:
                    sides[side].append(uri)
    collection = BlockCollection(name="synthetic")
    for key in sorted(members):
        side0, side1 = members[key]
        if side0 and side1:
            collection.add(Block(f"k{key:05d}", side0, side1))
    return collection


def run_pipeline(db_path=None, cache_kib=None):
    """Purge → filter → weight(ECBS) → prune(CNP); digest of the edges."""
    from repro.blocking import BlockFiltering, BlockPurging
    from repro.metablocking import CNP, ECBS
    from repro.sqlbackend import SqlMetaBlocker

    blocks = synthetic_blocks()
    with SqlMetaBlocker(db_path=db_path, cache_kib=cache_kib) as mb:
        mb.prepare(blocks, BlockPurging(), BlockFiltering())
        mb.weight(ECBS())
        edges = mb.prune(CNP())
    text = ";".join(f"{e.left}|{e.right}|{e.weight!r}" for e in edges)
    return len(edges), hashlib.sha256(text.encode()).hexdigest()


def child_main(db_path: str) -> None:
    """Subprocess body: run on disk, report digest + RSS + db size."""
    import resource

    count, digest = run_pipeline(db_path=db_path, cache_kib=CACHE_KIB)
    print(
        json.dumps(
            {
                "edges": count,
                "digest": digest,
                "maxrss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                "db_bytes": os.path.getsize(db_path),
            }
        )
    )


@pytest.mark.slow
def test_on_disk_run_matches_memory_with_bounded_rss(tmp_path):
    db_path = tmp_path / "out_of_core.db"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    child = subprocess.run(
        [sys.executable, __file__, "--child", str(db_path)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert child.returncode == 0, child.stderr
    result = json.loads(child.stdout.strip().splitlines()[-1])

    count, digest = run_pipeline()
    assert result["edges"] == count
    assert result["digest"] == digest, "on-disk edges diverged from in-memory"
    # the database must genuinely outgrow the page cache it was given
    assert result["db_bytes"] > 4 * CACHE_KIB * 1024, result["db_bytes"]
    assert result["maxrss_kib"] < MAX_RSS_KIB, (
        f"subprocess peaked at {result['maxrss_kib']} KiB — the streamed "
        "folds are materializing the working set"
    )


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child_main(sys.argv[2])
    else:
        sys.exit("usage: test_out_of_core.py --child DB_PATH")
