"""SqlMetaBlocker: per-stage equivalence against the python operators.

Each stage of the SQL pipeline must reproduce its python counterpart
exactly — same blocks, same members in the same order, same
cardinalities — on every sample corpus.  The edge-level bit-identity
sweep lives in ``tests/api/test_sql_backend.py``; this module gates the
intermediate artifacts and the facade's error behaviour.
"""

from __future__ import annotations

import pytest

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets.samples import load_movies, load_people, load_restaurants
from repro.metablocking import ARCS, CNP, WeightingScheme
from repro.sqlbackend import SqlBackendError, SqlMetaBlocker, duckdb_available

CORPORA = {
    "movies": load_movies,
    "restaurants": load_restaurants,
    "people": load_people,
}

ENGINES = [
    "sqlite",
    pytest.param(
        "duckdb",
        marks=pytest.mark.skipif(
            not duckdb_available(), reason="duckdb not installed"
        ),
    ),
]


def fingerprint(blocks):
    """Structure that must match exactly: keys, members, cardinalities."""
    return [
        (
            block.key,
            tuple(block.entities1),
            tuple(block.entities2) if block.entities2 is not None else None,
            block.cardinality(),
        )
        for block in blocks
    ]


@pytest.fixture(params=sorted(CORPORA))
def raw_blocks(request):
    kb1, kb2, _ = CORPORA[request.param]()
    return TokenBlocking().build(kb1, kb2)


@pytest.mark.parametrize("engine", ENGINES)
class TestStageEquivalence:
    def test_processed_collection_matches_python_operators(
        self, raw_blocks, engine
    ):
        purging, filtering = BlockPurging(), BlockFiltering()
        expected = filtering.process(purging.process(raw_blocks))
        with SqlMetaBlocker(engine=engine) as mb:
            mb.load_blocks(raw_blocks)
            mb.purge(purging)
            mb.filter(filtering)
            rebuilt = mb.processed_collection()
        assert rebuilt.name == expected.name
        assert fingerprint(rebuilt) == fingerprint(expected)

    def test_no_operators_keeps_every_block(self, raw_blocks, engine):
        with SqlMetaBlocker(engine=engine) as mb:
            mb.load_blocks(raw_blocks)
            mb.purge(None)
            mb.filter(None)
            rebuilt = mb.processed_collection()
        assert rebuilt.name == raw_blocks.name
        assert fingerprint(rebuilt) == fingerprint(raw_blocks)

    def test_explicit_max_cardinality_bypasses_histogram(
        self, raw_blocks, engine
    ):
        purging = BlockPurging(max_cardinality=3)
        expected = purging.process(raw_blocks)
        with SqlMetaBlocker(engine=engine) as mb:
            mb.load_blocks(raw_blocks)
            assert mb.purge(purging) == 3
            mb.filter(None)
            rebuilt = mb.processed_collection()
        assert fingerprint(rebuilt) == fingerprint(expected)


class TestFacadeErrors:
    def test_custom_purging_rejected(self):
        class Custom(BlockPurging):
            pass

        kb1, kb2, _ = load_movies()
        blocks = TokenBlocking().build(kb1, kb2)
        with SqlMetaBlocker() as mb:
            mb.load_blocks(blocks)
            with pytest.raises(SqlBackendError, match="Custom"):
                mb.purge(Custom())

    def test_custom_filtering_rejected(self):
        class Custom(BlockFiltering):
            pass

        kb1, kb2, _ = load_movies()
        blocks = TokenBlocking().build(kb1, kb2)
        with SqlMetaBlocker() as mb:
            mb.load_blocks(blocks)
            mb.purge(None)
            with pytest.raises(SqlBackendError, match="Custom"):
                mb.filter(Custom())

    def test_custom_scheme_rejected(self):
        class Exotic(WeightingScheme):
            name = "exotic"

            def weight(self, common, stats_a, stats_b, context):
                return 1.0

        kb1, kb2, _ = load_movies()
        with SqlMetaBlocker() as mb:
            mb.prepare(TokenBlocking().build(kb1, kb2))
            with pytest.raises(SqlBackendError, match="Exotic"):
                mb.weight(Exotic())

    def test_custom_pruner_rejected(self):
        class Exotic:
            pass

        kb1, kb2, _ = load_movies()
        with SqlMetaBlocker() as mb:
            mb.prepare(TokenBlocking().build(kb1, kb2))
            mb.weight(ARCS())
            with pytest.raises(SqlBackendError, match="Exotic"):
                mb.prune(Exotic())

    def test_prune_before_weight_rejected(self):
        kb1, kb2, _ = load_movies()
        with SqlMetaBlocker() as mb:
            mb.prepare(TokenBlocking().build(kb1, kb2))
            with pytest.raises(SqlBackendError, match="weight"):
                mb.prune(CNP())


class TestPlans:
    def test_every_stage_captures_at_least_one_plan(self):
        kb1, kb2, _ = load_movies()
        with SqlMetaBlocker() as mb:
            mb.prepare(
                TokenBlocking().build(kb1, kb2), BlockPurging(), BlockFiltering()
            )
            mb.weight(ARCS())
            mb.prune(CNP())
            plans = mb.plans
        for stage in ("purging", "filtering", "pairs", "weighting", "pruning"):
            assert plans.get(stage), f"no plan captured for stage {stage!r}"
