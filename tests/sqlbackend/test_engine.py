"""Engine layer: dialect translation, connections, plan capture."""

from __future__ import annotations

import pytest

from repro.sqlbackend.engine import (
    SQL_ENGINES,
    DuckDbEngine,
    Session,
    SqlBackendError,
    SqliteEngine,
    duckdb_available,
    make_engine,
)


class TestMakeEngine:
    def test_known_names(self):
        assert isinstance(make_engine("sqlite"), SqliteEngine)
        assert isinstance(make_engine("duckdb"), DuckDbEngine)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(SqlBackendError) as err:
            make_engine("postgres")
        for name in SQL_ENGINES:
            assert name in str(err.value)

    def test_spec_layer_agrees_on_engine_names(self):
        # the spec validates engine names without importing this
        # package; the two tuples must not drift apart
        from repro.api.spec import SQL_ENGINES as SPEC_ENGINES

        assert SPEC_ENGINES == SQL_ENGINES


class TestSqliteDialect:
    def test_translate_is_identity(self):
        engine = SqliteEngine()
        sql = "SELECT CAST(x AS REAL) FROM t WHERE y = :y"
        assert engine.translate(sql) == sql

    def test_trunc_int_truncates(self):
        engine = SqliteEngine()
        session = Session(engine)
        expr = engine.trunc_int("3.7")
        assert session.scalar(f"SELECT {expr}") == 3
        session.close()

    def test_intdiv(self):
        engine = SqliteEngine()
        session = Session(engine)
        assert session.scalar(f"SELECT {engine.intdiv('7', '2')}") == 3
        session.close()


class TestDuckDbDialect:
    """Translation is pure string work — no duckdb import needed."""

    engine = DuckDbEngine()

    def test_named_params_become_dollar(self):
        assert (
            self.engine.translate("SELECT :a + b FROM t WHERE c = :a")
            == "SELECT $a + b FROM t WHERE c = $a"
        )

    def test_real_becomes_double(self):
        assert (
            self.engine.translate("CREATE TABLE t (x REAL NOT NULL)")
            == "CREATE TABLE t (x DOUBLE NOT NULL)"
        )

    def test_word_boundary_preserved(self):
        # identifiers merely containing REAL must survive
        assert self.engine.translate("SELECT REALITY FROM surreal") == (
            "SELECT REALITY FROM surreal"
        )

    def test_trunc_int_goes_through_trunc(self):
        assert "trunc" in self.engine.trunc_int("x * 0.5")

    @pytest.mark.skipif(duckdb_available(), reason="duckdb is installed")
    def test_missing_package_raises_backend_error(self):
        with pytest.raises(SqlBackendError, match="duckdb"):
            self.engine.connect()


class TestSession:
    def test_stage_tagged_statements_capture_plans(self):
        session = Session(SqliteEngine())
        session.run("CREATE TABLE t (x INTEGER)")
        session.run("SELECT * FROM t WHERE x = :x", {"x": 1}, stage="probe")
        assert "probe" in session.plans
        sql, plan = session.plans["probe"][0]
        assert "SELECT" in sql
        assert isinstance(plan, list)
        session.close()

    def test_collect_plans_off(self):
        session = Session(SqliteEngine(), collect_plans=False)
        session.run("SELECT 1", stage="probe")
        assert session.plans == {}
        session.close()

    def test_executemany_and_stream(self):
        session = Session(SqliteEngine())
        session.run("CREATE TABLE t (x INTEGER)")
        session.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), (3,)])
        assert [row[0] for row in session.stream("SELECT x FROM t ORDER BY x")] == [
            1,
            2,
            3,
        ]
        assert session.scalar("SELECT SUM(x) FROM t") == 6
        session.close()
