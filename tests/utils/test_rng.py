"""Tests for deterministic randomness helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import deterministic_rng, stable_hash


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = deterministic_rng(42).random()
        b = deterministic_rng(42).random()
        assert a == b

    def test_different_seeds_diverge(self):
        streams = {deterministic_rng(seed).random() for seed in range(20)}
        assert len(streams) == 20

    def test_salt_decorrelates(self):
        plain = deterministic_rng(42).random()
        salted = deterministic_rng(42, "kb1").random()
        assert plain != salted

    def test_salt_order_matters(self):
        a = deterministic_rng(1, "x", "y").random()
        b = deterministic_rng(1, "y", "x").random()
        assert a != b

    def test_string_seeds_supported(self):
        assert deterministic_rng("alpha").random() == deterministic_rng("alpha").random()


class TestStableHash:
    def test_in_range(self):
        for value in ("a", "b", "", "long token value"):
            assert 0 <= stable_hash(value, 7) < 7

    def test_deterministic(self):
        assert stable_hash("token", 16) == stable_hash("token", 16)

    def test_zero_buckets_rejected(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)

    def test_single_bucket(self):
        assert stable_hash("anything", 1) == 0

    @given(st.text(max_size=50), st.integers(1, 1000))
    def test_property_in_range(self, value, buckets):
        assert 0 <= stable_hash(value, buckets) < buckets

    def test_distribution_not_degenerate(self):
        buckets = [stable_hash(f"key{i}", 8) for i in range(800)]
        counts = [buckets.count(b) for b in range(8)]
        # Every bucket should receive a reasonable share.
        assert min(counts) > 40
