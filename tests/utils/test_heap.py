"""Unit and property tests for the addressable max-heap."""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, strategies as st

from repro.utils.heap import AddressableMaxHeap


class TestBasics:
    def test_empty_heap_is_falsy(self):
        heap = AddressableMaxHeap()
        assert not heap
        assert len(heap) == 0

    def test_push_pop_single(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.5)
        assert heap.pop() == ("a", 1.5)
        assert not heap

    def test_pop_returns_maximum(self):
        heap = AddressableMaxHeap()
        heap.push("low", 1.0)
        heap.push("high", 9.0)
        heap.push("mid", 5.0)
        assert heap.pop() == ("high", 9.0)
        assert heap.pop() == ("mid", 5.0)
        assert heap.pop() == ("low", 1.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().peek()

    def test_peek_does_not_remove(self):
        heap = AddressableMaxHeap()
        heap.push("x", 2.0)
        assert heap.peek() == ("x", 2.0)
        assert len(heap) == 1

    def test_duplicate_push_rejected(self):
        heap = AddressableMaxHeap()
        heap.push("x", 1.0)
        with pytest.raises(ValueError):
            heap.push("x", 2.0)

    def test_contains(self):
        heap = AddressableMaxHeap()
        heap.push("x", 1.0)
        assert "x" in heap
        assert "y" not in heap

    def test_ties_broken_by_insertion_order(self):
        heap = AddressableMaxHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        heap.push("third", 1.0)
        assert [heap.pop()[0] for _ in range(3)] == ["first", "second", "third"]


class TestUpdates:
    def test_update_increases_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 3.0)
        assert heap.pop() == ("a", 3.0)

    def test_update_decreases_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 5.0)
        heap.push("b", 2.0)
        heap.update("a", 1.0)
        assert heap.pop() == ("b", 2.0)

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().update("ghost", 1.0)

    def test_priority_lookup(self):
        heap = AddressableMaxHeap()
        heap.push("a", 4.0)
        assert heap.priority("a") == 4.0
        heap.update("a", 6.0)
        assert heap.priority("a") == 6.0

    def test_push_or_update(self):
        heap = AddressableMaxHeap()
        heap.push_or_update("a", 1.0)
        heap.push_or_update("a", 7.0)
        assert heap.priority("a") == 7.0
        assert len(heap) == 1

    def test_increase_if_higher_only_raises(self):
        heap = AddressableMaxHeap()
        heap.push("a", 5.0)
        assert heap.increase_if_higher("a", 3.0) is False
        assert heap.priority("a") == 5.0
        assert heap.increase_if_higher("a", 8.0) is True
        assert heap.priority("a") == 8.0

    def test_add_to_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        assert heap.add_to_priority("a", 2.5) == 3.5
        assert heap.priority("a") == 3.5

    def test_remove(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.push("c", 3.0)
        assert heap.remove("b") == 2.0
        assert "b" not in heap
        assert heap.pop() == ("c", 3.0)
        assert heap.pop() == ("a", 1.0)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().remove("ghost")

    def test_discard(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        assert heap.discard("a") is True
        assert heap.discard("a") is False

    def test_clear(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.clear()
        assert not heap
        heap.push("a", 2.0)  # reusable after clear
        assert heap.pop() == ("a", 2.0)

    def test_items_iteration(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert dict(heap.items()) == {"a": 1.0, "b": 2.0}


class TestProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=200))
    def test_pop_order_matches_sorted(self, priorities):
        heap = AddressableMaxHeap()
        for index, priority in enumerate(priorities):
            heap.push(index, priority)
        popped = [heap.pop()[1] for _ in range(len(priorities))]
        assert popped == sorted(priorities, reverse=True)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.floats(-100, 100)),
            max_size=200,
        )
    )
    def test_push_or_update_tracks_latest_priority(self, operations):
        heap = AddressableMaxHeap()
        reference: dict[int, float] = {}
        for key, priority in operations:
            heap.push_or_update(key, priority)
            reference[key] = priority
        assert len(heap) == len(reference)
        popped = {}
        while heap:
            key, priority = heap.pop()
            popped[key] = priority
        assert popped == reference

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        st.data(),
    )
    def test_agrees_with_heapq_after_removals(self, priorities, data):
        heap = AddressableMaxHeap()
        for index, priority in enumerate(priorities):
            heap.push(index, priority)
        alive = dict(enumerate(priorities))
        to_remove = data.draw(
            st.lists(st.sampled_from(sorted(alive)), unique=True, max_size=len(alive))
        )
        for key in to_remove:
            heap.remove(key)
            del alive[key]
        expected = sorted(alive.values(), reverse=True)
        mirror = [-p for p in alive.values()]
        heapq.heapify(mirror)
        result = [heap.pop()[1] for _ in range(len(alive))]
        assert result == expected
        assert result == [-heapq.heappop(mirror) for _ in range(len(mirror))]
