"""Unit and property tests for the union-find forest."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.disjoint_set import DisjointSet


class TestBasics:
    def test_lazy_singletons(self):
        ds = DisjointSet()
        assert ds.find("a") == "a"
        assert "a" in ds
        assert ds.set_count == 1

    def test_add_is_idempotent(self):
        ds = DisjointSet()
        assert ds.add("a") is True
        assert ds.add("a") is False
        assert ds.set_count == 1

    def test_union_merges(self):
        ds = DisjointSet()
        assert ds.union("a", "b") is True
        assert ds.connected("a", "b")
        assert ds.set_count == 1

    def test_union_same_set_returns_false(self):
        ds = DisjointSet()
        ds.union("a", "b")
        assert ds.union("b", "a") is False

    def test_transitivity(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")
        assert ds.size_of("a") == 3

    def test_disjoint_components_stay_apart(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("x", "y")
        assert not ds.connected("a", "x")
        assert ds.set_count == 2

    def test_constructor_items(self):
        ds = DisjointSet(["a", "b", "c"])
        assert len(ds) == 3
        assert ds.set_count == 3

    def test_items_insertion_order(self):
        ds = DisjointSet()
        ds.union("b", "a")
        ds.add("c")
        assert ds.items() == ["b", "a", "c"]

    def test_sets_and_to_clusters(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        ds.union("x", "y")
        ds.add("solo")
        clusters = ds.to_clusters()
        assert clusters[0] == frozenset({"a", "b", "c"})
        assert clusters[1] == frozenset({"x", "y"})
        assert clusters[2] == frozenset({"solo"})


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=300))
    def test_set_count_invariant(self, unions):
        ds = DisjointSet()
        for a, b in unions:
            ds.union(a, b)
        # items = sets + successful merges
        clusters = list(ds.sets())
        assert sum(len(c) for c in clusters) == len(ds)
        assert len(clusters) == ds.set_count

    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)), max_size=200))
    def test_connectivity_matches_reference_graph(self, unions):
        ds = DisjointSet()
        adjacency: dict[int, set[int]] = {}
        for a, b in unions:
            ds.union(a, b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        def reachable(start: int) -> set[int]:
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for other in adjacency.get(node, ()):
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
            return seen

        for node in adjacency:
            component = reachable(node)
            for other in adjacency:
                assert ds.connected(node, other) == (other in component)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=150))
    def test_size_of_matches_cluster_size(self, unions):
        ds = DisjointSet()
        for a, b in unions:
            ds.union(a, b)
        for cluster in ds.sets():
            for member in cluster:
                assert ds.size_of(member) == len(cluster)
