"""Stateful (model-based) test of the addressable heap.

Hypothesis drives random interleavings of push/update/remove/pop against
a naive dictionary model; any divergence in observable behaviour
(membership, priorities, pop order) is a bug.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.utils.heap import AddressableMaxHeap

keys = st.integers(0, 20)
priorities = st.floats(-1000, 1000, allow_nan=False)


class HeapMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.heap: AddressableMaxHeap[int] = AddressableMaxHeap()
        self.model: dict[int, float] = {}
        self.insertion_order: dict[int, int] = {}
        self.counter = 0

    @rule(key=keys, priority=priorities)
    def push_or_update(self, key, priority):
        if key in self.model:
            self.heap.update(key, priority)
        else:
            self.heap.push(key, priority)
            self.insertion_order[key] = self.counter
            self.counter += 1
        self.model[key] = priority

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        removed = self.heap.remove(key)
        assert removed == self.model.pop(key)
        del self.insertion_order[key]

    @precondition(lambda self: self.model)
    @rule()
    def pop_max(self):
        key, priority = self.heap.pop()
        best = max(
            self.model.items(),
            key=lambda kv: (kv[1], -self.insertion_order[kv[0]]),
        )
        assert priority == best[1]
        assert priority == self.model.pop(key)
        del self.insertion_order[key]

    @precondition(lambda self: self.model)
    @rule(delta=st.floats(-50, 50, allow_nan=False), data=st.data())
    def add_delta(self, delta, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        new = self.heap.add_to_priority(key, delta)
        self.model[key] += delta
        assert new == self.model[key]

    @invariant()
    def sizes_agree(self):
        assert len(self.heap) == len(self.model)

    @invariant()
    def membership_and_priorities_agree(self):
        for key, priority in self.model.items():
            assert key in self.heap
            assert self.heap.priority(key) == priority


TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(max_examples=40, stateful_step_count=40, deadline=None)
