"""Tests for text normalization and tokenization helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.text import normalize, strip_accents, token_split


class TestStripAccents:
    def test_folds_common_accents(self):
        assert strip_accents("café") == "cafe"
        assert strip_accents("Müller") == "Muller"
        assert strip_accents("naïve") == "naive"

    def test_plain_ascii_unchanged(self):
        assert strip_accents("plain text 123") == "plain text 123"

    def test_empty(self):
        assert strip_accents("") == ""


class TestNormalize:
    def test_lowercases(self):
        assert normalize("HeLLo") == "hello"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b\n c ") == "a b c"

    def test_combines_accent_and_case(self):
        assert normalize("CAFÉ  Noir") == "cafe noir"


class TestTokenSplit:
    def test_splits_on_punctuation(self):
        assert token_split("hello-world_foo.bar") == ["hello", "world", "foo", "bar"]

    def test_keeps_numbers(self):
        assert token_split("route 66") == ["route", "66"]

    def test_min_length_filter(self):
        assert token_split("a bb ccc", min_length=2) == ["bb", "ccc"]
        assert token_split("a bb ccc", min_length=3) == ["ccc"]

    def test_duplicates_preserved(self):
        assert token_split("la la land") == ["la", "la", "land"]

    def test_empty_and_symbol_only(self):
        assert token_split("") == []
        assert token_split("!!! --- ###") == []

    @given(st.text(max_size=200))
    def test_tokens_are_normalized_alnum(self, text):
        for token in token_split(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=200), st.integers(1, 5))
    def test_min_length_respected(self, text, min_length):
        for token in token_split(text, min_length):
            assert len(token) >= min_length
