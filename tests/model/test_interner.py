"""Tests for the URI ↔ dense-id interner and packed pairs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.blocking.block import Block, BlockCollection
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner, pack_pair, unpack_pair


class TestInterner:
    def test_dense_first_seen_ids(self):
        interner = EntityInterner()
        assert interner.intern("b") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 0

    def test_lookup_round_trip(self):
        interner = EntityInterner(["x", "y"])
        assert interner.id_of("y") == 1
        assert interner.uri_of(1) == "y"
        assert interner.get("nope") == -1
        with pytest.raises(KeyError):
            interner.id_of("nope")

    def test_iteration_in_id_order(self):
        interner = EntityInterner(["c", "a", "b"])
        assert list(interner) == ["c", "a", "b"]
        assert interner.uris() == ["c", "a", "b"]
        assert len(interner) == 3
        assert "a" in interner and "z" not in interner

    @given(st.lists(st.text(min_size=1, max_size=6)))
    def test_bijection(self, uris):
        interner = EntityInterner(uris)
        for uri in uris:
            assert interner.uri_of(interner.id_of(uri)) == uri
        assert len(interner) == len(set(uris))


class TestPackedPairs:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_pack_unpack_round_trip(self, a, b):
        low, high = min(a, b), max(a, b)
        assert unpack_pair(pack_pair(a, b)) == (low, high)
        assert pack_pair(a, b) == pack_pair(b, a)

    def test_packed_order_matches_tuple_order(self):
        pairs = [(0, 5), (1, 2), (0, 1), (3, 4)]
        packed = sorted(pack_pair(a, b) for a, b in pairs)
        assert [unpack_pair(k) for k in packed] == sorted(pairs)


class TestCollectionInterner:
    def test_collection_exposes_interner(self):
        collection = EntityCollection(
            [EntityDescription(f"http://e/{i}", {"p": ["v"]}) for i in range(3)]
        )
        assert collection.interner.id_of("http://e/2") == 2
        assert collection.index_of("http://e/1") == collection.interner.id_of(
            "http://e/1"
        )

    def test_ids_stable_under_growth(self):
        collection = EntityCollection([EntityDescription("http://e/a", {"p": ["v"]})])
        first = collection.index_of("http://e/a")
        collection.add(EntityDescription("http://e/b", {"p": ["v"]}))
        assert collection.index_of("http://e/a") == first


class TestBlockCollectionIdViews:
    def collection(self) -> BlockCollection:
        return BlockCollection(
            [
                Block("k1", ["a", "b"]),
                Block("k2", ["b", "c"], ["c", "d"]),
            ]
        )

    def test_id_blocks_align_with_blocks(self):
        blocks = self.collection()
        interner = blocks.interner()
        (ids1_a, ids2_a, card_a), (ids1_b, ids2_b, card_b) = blocks.id_blocks()
        assert [interner.uri_of(i) for i in ids1_a] == ["a", "b"]
        assert ids2_a is None and card_a == 1
        assert [interner.uri_of(i) for i in ids1_b] == ["b", "c"]
        assert ids2_b is not None
        assert [interner.uri_of(i) for i in ids2_b] == ["c", "d"]
        # 2x2 cross pairs minus the (c, c) self-pair.
        assert card_b == 3

    def test_id_entity_index_counts_match_string_index(self):
        blocks = self.collection()
        interner = blocks.interner()
        string_index = blocks.entity_index()
        id_index = blocks.id_entity_index()
        for uri, keys in string_index.items():
            assert len(id_index[interner.id_of(uri)]) == len(keys)

    def test_views_invalidated_on_mutation(self):
        blocks = self.collection()
        assert len(blocks.interner()) == 4
        blocks.add(Block("k3", ["e", "f"]))
        assert len(blocks.interner()) == 6
        blocks.remove("k3")
        assert len(blocks.interner()) == 4
