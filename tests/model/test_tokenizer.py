"""Tests for the shared tokenizer."""

from __future__ import annotations

import pytest

from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer


def description() -> EntityDescription:
    return EntityDescription(
        "http://ex.org/resource/Stanley_Kubrick",
        {
            "name": ["Stanley Kubrick"],
            "film": ["http://ex.org/resource/The_Shining"],
            "born": ["1928"],
        },
    )


class TestTokens:
    def test_literal_tokens_extracted(self):
        tokenizer = Tokenizer(include_uri_infix=False)
        tokens = tokenizer.tokens(description())
        assert "stanley" in tokens
        assert "kubrick" in tokens
        assert "1928" in tokens

    def test_uri_infix_tokens_included_by_default(self):
        tokenizer = Tokenizer()
        # The URI contributes stanley/kubrick again.
        counts = tokenizer.token_counts(description())
        assert counts["stanley"] == 2

    def test_reference_tokens_not_leaked_as_literals(self):
        tokenizer = Tokenizer(include_uri_infix=False)
        tokens = tokenizer.token_set(description())
        assert "shining" not in tokens

    def test_reference_infixes_opt_in(self):
        tokenizer = Tokenizer(include_uri_infix=False, include_reference_infixes=True)
        tokens = tokenizer.token_set(description())
        assert "shining" in tokens

    def test_min_token_length(self):
        desc = EntityDescription("u", {"p": ["a bb ccc"]})
        tokenizer = Tokenizer(min_token_length=3, include_uri_infix=False)
        assert tokenizer.token_set(desc) == frozenset({"ccc"})

    def test_min_token_length_validated(self):
        with pytest.raises(ValueError):
            Tokenizer(min_token_length=0)

    def test_stop_tokens_suppressed(self):
        tokenizer = Tokenizer(
            include_uri_infix=False, stop_tokens=frozenset({"stanley"})
        )
        tokens = tokenizer.token_set(description())
        assert "stanley" not in tokens
        assert "kubrick" in tokens

    def test_token_set_is_frozenset(self):
        assert isinstance(Tokenizer().token_set(description()), frozenset)

    def test_token_counts_multiplicity(self):
        desc = EntityDescription("u", {"p": ["la la land"]})
        tokenizer = Tokenizer(include_uri_infix=False)
        assert tokenizer.token_counts(desc)["la"] == 2

    def test_empty_description(self):
        desc = EntityDescription("http://ex.org/x", {})
        tokenizer = Tokenizer(include_uri_infix=False)
        assert tokenizer.tokens(desc) == []
