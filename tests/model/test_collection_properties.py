"""Property-based tests of EntityCollection invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription

values = st.text(alphabet="abcde ", min_size=1, max_size=12)


@st.composite
def collections(draw):
    count = draw(st.integers(1, 12))
    descriptions = []
    for i in range(count):
        attrs = {f"p{j}": [draw(values)] for j in range(draw(st.integers(1, 3)))}
        # Some descriptions reference earlier ones.
        if i > 0 and draw(st.booleans()):
            attrs["ref"] = [f"http://e/{draw(st.integers(0, i - 1))}"]
        descriptions.append(EntityDescription(f"http://e/{i}", attrs, source="kb"))
    return EntityCollection(descriptions, name="kb")


class TestGraphInvariants:
    @settings(max_examples=50, deadline=None)
    @given(collections())
    def test_neighbors_and_inverse_are_consistent(self, collection):
        for uri in collection.uris():
            for neighbor in collection.neighbors(uri):
                assert uri in collection.inverse_neighbors(neighbor)
            for source in collection.inverse_neighbors(uri):
                assert uri in collection.neighbors(source)

    @settings(max_examples=50, deadline=None)
    @given(collections())
    def test_edge_count_matches_statistics(self, collection):
        edges = list(collection.relationship_edges())
        assert collection.statistics().relationship_count == len(edges)

    @settings(max_examples=50, deadline=None)
    @given(collections())
    def test_no_self_loops(self, collection):
        for subject, obj in collection.relationship_edges():
            assert subject != obj


class TestStatisticsInvariants:
    @settings(max_examples=50, deadline=None)
    @given(collections())
    def test_counts_consistent(self, collection):
        stats = collection.statistics()
        assert stats.description_count == len(collection)
        assert stats.triple_count == sum(len(d) for d in collection)
        assert stats.relationship_count <= stats.triple_count

    @settings(max_examples=30, deadline=None)
    @given(collections(), collections())
    def test_union_size_bounds(self, a, b):
        merged = a.union(b)
        distinct = len(set(a.uris()) | set(b.uris()))
        assert len(merged) == distinct

    @settings(max_examples=30, deadline=None)
    @given(collections())
    def test_union_with_self_preserves_content(self, collection):
        merged = collection.union(collection)
        assert len(merged) == len(collection)
        for description in collection:
            assert merged[description.uri] == description


class TestIndexInvariants:
    @settings(max_examples=50, deadline=None)
    @given(collections())
    def test_index_of_matches_iteration_order(self, collection):
        for rank, description in enumerate(collection):
            assert collection.index_of(description.uri) == rank
