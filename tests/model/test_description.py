"""Tests for EntityDescription."""

from __future__ import annotations

import pytest

from repro.model.description import EntityDescription


def make_description() -> EntityDescription:
    return EntityDescription(
        "http://ex.org/resource/Berlin",
        {
            "http://ex.org/name": ["Berlin"],
            "http://ex.org/country": ["http://ex.org/resource/Germany"],
            "http://ex.org/population": ["3645000"],
        },
        source="ex",
    )


class TestConstruction:
    def test_requires_uri(self):
        with pytest.raises(ValueError):
            EntityDescription("")

    def test_attributes_stored(self):
        description = make_description()
        assert description.get("http://ex.org/name") == ["Berlin"]
        assert len(description) == 3

    def test_add_deduplicates_values(self):
        description = EntityDescription("u")
        description.add("p", "v")
        description.add("p", "v")
        assert description.get("p") == ["v"]

    def test_add_rejects_empty_property(self):
        description = EntityDescription("u")
        with pytest.raises(ValueError):
            description.add("", "v")

    def test_multi_valued_properties(self):
        description = EntityDescription("u")
        description.add("p", "v1")
        description.add("p", "v2")
        assert description.get("p") == ["v1", "v2"]
        assert len(description) == 2


class TestAccessors:
    def test_properties_order(self):
        description = make_description()
        assert description.properties() == [
            "http://ex.org/name",
            "http://ex.org/country",
            "http://ex.org/population",
        ]

    def test_first_with_default(self):
        description = make_description()
        assert description.first("http://ex.org/name") == "Berlin"
        assert description.first("missing", "fallback") == "fallback"

    def test_get_missing_is_empty(self):
        assert make_description().get("missing") == []

    def test_values_flattened(self):
        values = make_description().values()
        assert "Berlin" in values
        assert "3645000" in values
        assert len(values) == 3

    def test_pairs(self):
        pairs = list(make_description().pairs())
        assert ("http://ex.org/name", "Berlin") in pairs
        assert len(pairs) == 3

    def test_object_references_vs_literals(self):
        description = make_description()
        assert description.object_references() == ["http://ex.org/resource/Germany"]
        assert sorted(description.literal_values()) == ["3645000", "Berlin"]

    def test_urn_counts_as_reference(self):
        description = EntityDescription("u", {"p": ["urn:isbn:12345"]})
        assert description.object_references() == ["urn:isbn:12345"]


class TestEqualityAndCopy:
    def test_equality_by_uri_and_attributes(self):
        assert make_description() == make_description()

    def test_inequality_on_attribute_change(self):
        a = make_description()
        b = make_description()
        b.add("http://ex.org/name", "Berlin, Germany")
        assert a != b

    def test_hash_by_uri(self):
        assert hash(make_description()) == hash(make_description())

    def test_copy_is_deep(self):
        original = make_description()
        clone = original.copy()
        clone.add("http://ex.org/name", "Extra")
        assert original.get("http://ex.org/name") == ["Berlin"]
        assert clone.source == "ex"

    def test_merged_with_unions_attributes(self):
        a = EntityDescription("u1", {"p": ["v1"]})
        b = EntityDescription("u2", {"p": ["v2"], "q": ["w"]})
        merged = a.merged_with(b)
        assert merged.uri == "u1"
        assert merged.get("p") == ["v1", "v2"]
        assert merged.get("q") == ["w"]
        # Inputs untouched.
        assert a.get("p") == ["v1"]

    def test_repr_mentions_uri(self):
        assert "Berlin" in repr(make_description())
