"""Tests for EntityCollection: container, relationship graph, statistics."""

from __future__ import annotations

import pytest

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def build_collection() -> EntityCollection:
    film = EntityDescription(
        "http://ex.org/film/F",
        {"title": ["F"], "director": ["http://ex.org/person/D"]},
        source="ex",
    )
    director = EntityDescription(
        "http://ex.org/person/D",
        {"name": ["D"], "knows": ["http://ex.org/person/E"]},
        source="ex",
    )
    other = EntityDescription("http://ex.org/person/E", {"name": ["E"]}, source="ex")
    return EntityCollection([film, director, other], name="test")


class TestContainer:
    def test_len_iter_contains(self):
        collection = build_collection()
        assert len(collection) == 3
        assert "http://ex.org/film/F" in collection
        assert [d.uri for d in collection] == [
            "http://ex.org/film/F",
            "http://ex.org/person/D",
            "http://ex.org/person/E",
        ]

    def test_getitem_and_get(self):
        collection = build_collection()
        assert collection["http://ex.org/film/F"].first("title") == "F"
        assert collection.get("missing") is None

    def test_add_merges_same_uri(self):
        collection = build_collection()
        collection.add(EntityDescription("http://ex.org/film/F", {"year": ["1999"]}))
        assert len(collection) == 3
        assert collection["http://ex.org/film/F"].first("year") == "1999"

    def test_index_of_stable(self):
        collection = build_collection()
        assert collection.index_of("http://ex.org/film/F") == 0
        assert collection.index_of("http://ex.org/person/E") == 2
        with pytest.raises(KeyError):
            collection.index_of("missing")

    def test_uris_order(self):
        assert build_collection().uris()[0] == "http://ex.org/film/F"

    def test_union_dirty(self):
        a = build_collection()
        b = EntityCollection(
            [EntityDescription("http://other.org/x", {"p": ["v"]})], name="b"
        )
        merged = a.union(b)
        assert len(merged) == 4
        # Deep copies: mutating merged must not touch the originals.
        merged["http://ex.org/film/F"].add("title", "F2")
        assert a["http://ex.org/film/F"].get("title") == ["F"]


class TestRelationshipGraph:
    def test_out_neighbors(self):
        collection = build_collection()
        assert collection.neighbors("http://ex.org/film/F") == ["http://ex.org/person/D"]

    def test_inverse_neighbors(self):
        collection = build_collection()
        assert collection.inverse_neighbors("http://ex.org/person/D") == [
            "http://ex.org/film/F"
        ]

    def test_all_neighbors_deduplicated(self):
        collection = build_collection()
        assert collection.all_neighbors("http://ex.org/person/D") == [
            "http://ex.org/person/E",
            "http://ex.org/film/F",
        ]

    def test_dangling_references_ignored(self):
        collection = EntityCollection(
            [EntityDescription("u", {"p": ["http://nowhere.org/missing"]})]
        )
        assert collection.neighbors("u") == []

    def test_self_references_ignored(self):
        collection = EntityCollection(
            [EntityDescription("http://e.org/a", {"p": ["http://e.org/a"]})]
        )
        assert collection.neighbors("http://e.org/a") == []

    def test_relationship_edges(self):
        edges = set(build_collection().relationship_edges())
        assert edges == {
            ("http://ex.org/film/F", "http://ex.org/person/D"),
            ("http://ex.org/person/D", "http://ex.org/person/E"),
        }

    def test_graph_invalidated_on_add(self):
        collection = build_collection()
        assert collection.neighbors("http://ex.org/person/E") == []
        collection.add(
            EntityDescription(
                "http://ex.org/person/E", {"knows": ["http://ex.org/film/F"]}
            )
        )
        assert collection.neighbors("http://ex.org/person/E") == ["http://ex.org/film/F"]


class TestStatistics:
    def test_counts(self):
        stats = build_collection().statistics()
        assert stats.description_count == 3
        assert stats.triple_count == 5
        assert stats.property_count == 4
        assert stats.relationship_count == 2
        assert stats.source_count == 1

    def test_averages(self):
        stats = build_collection().statistics()
        assert stats.avg_values_per_description == pytest.approx(5 / 3)
        assert stats.avg_out_degree == pytest.approx(2 / 3)

    def test_as_rows(self):
        rows = build_collection().statistics().as_rows()
        assert ("descriptions", "3") in rows

    def test_empty_collection(self):
        stats = EntityCollection(name="empty").statistics()
        assert stats.description_count == 0
        assert stats.avg_out_degree == 0.0
