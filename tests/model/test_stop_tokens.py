"""Tests for corpus-driven stop-token inference."""

from __future__ import annotations

import pytest

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer, infer_stop_tokens


def corpus() -> EntityCollection:
    descriptions = [
        EntityDescription(
            f"http://e/{i}",
            {"p": [f"restaurant unique{i}"]},  # 'restaurant' in every doc
        )
        for i in range(10)
    ]
    return EntityCollection(descriptions, name="kb")


class TestInference:
    def test_ubiquitous_token_detected(self):
        stops = infer_stop_tokens([corpus()], Tokenizer(include_uri_infix=False))
        assert "restaurant" in stops

    def test_rare_tokens_kept(self):
        stops = infer_stop_tokens([corpus()], Tokenizer(include_uri_infix=False))
        assert "unique3" not in stops

    def test_threshold_respected(self):
        stops = infer_stop_tokens(
            [corpus()],
            Tokenizer(include_uri_infix=False),
            max_document_fraction=1.0,
        )
        assert stops == frozenset()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            infer_stop_tokens([corpus()], max_document_fraction=0.0)
        with pytest.raises(ValueError):
            infer_stop_tokens([corpus()], max_document_fraction=1.5)

    def test_empty_corpus(self):
        assert infer_stop_tokens([EntityCollection(name="e")]) == frozenset()

    def test_multiple_collections_pooled(self):
        stops = infer_stop_tokens(
            [corpus(), corpus()], Tokenizer(include_uri_infix=False)
        )
        assert "restaurant" in stops


class TestWithStopTokens:
    def test_copy_suppresses_tokens(self):
        base = Tokenizer(include_uri_infix=False)
        stops = infer_stop_tokens([corpus()], base)
        silenced = base.with_stop_tokens(stops)
        description = EntityDescription("u", {"p": ["restaurant unique1"]})
        assert "restaurant" in base.token_set(description)
        assert "restaurant" not in silenced.token_set(description)
        assert "unique1" in silenced.token_set(description)

    def test_copy_preserves_settings(self):
        base = Tokenizer(min_token_length=3, include_uri_infix=False)
        copy = base.with_stop_tokens({"xyz"})
        assert copy.min_token_length == 3
        assert not copy.include_uri_infix

    def test_original_unchanged(self):
        base = Tokenizer()
        base.with_stop_tokens({"abc"})
        assert "abc" not in base.stop_tokens

    def test_stop_tokens_shrink_blocking(self):
        from repro.blocking.token_blocking import TokenBlocking

        collection = corpus()
        base = Tokenizer(include_uri_infix=False)
        plain = TokenBlocking(base).build(collection)
        stops = infer_stop_tokens([collection], base)
        silenced = TokenBlocking(base.with_stop_tokens(stops)).build(collection)
        assert silenced.total_comparisons() < plain.total_comparisons()
