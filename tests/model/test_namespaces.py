"""Tests for URI prefix/infix/suffix decomposition."""

from __future__ import annotations

from repro.model.namespaces import split_uri, uri_infix, uri_local_name


class TestSplitUri:
    def test_dbpedia_style(self):
        assert split_uri("http://dbpedia.org/resource/Berlin") == (
            "http://dbpedia.org/resource/",
            "Berlin",
            "",
        )

    def test_fragment_identifier(self):
        prefix, infix, suffix = split_uri("http://ex.org/ontology#Person")
        assert prefix == "http://ex.org/ontology#"
        assert infix == "Person"
        assert suffix == ""

    def test_technical_suffix_stripped(self):
        assert split_uri("http://ex.org/page/Berlin.html") == (
            "http://ex.org/page/",
            "Berlin",
            ".html",
        )

    def test_trailing_slash_is_suffix(self):
        prefix, infix, suffix = split_uri("http://ex.org/resource/Berlin/")
        assert infix == "Berlin"
        assert suffix == "/"

    def test_domain_only(self):
        prefix, infix, suffix = split_uri("http://example.org")
        assert infix == "example.org"

    def test_empty_uri(self):
        assert split_uri("") == ("", "", "")

    def test_no_scheme(self):
        prefix, infix, _ = split_uri("foo/bar/baz")
        assert infix == "baz"
        assert prefix == "foo/bar/"

    def test_rdf_suffix(self):
        assert split_uri("http://ex.org/data/Thing.rdf")[2] == ".rdf"


class TestInfixHelpers:
    def test_uri_infix(self):
        assert uri_infix("http://dbpedia.org/resource/New_York_City") == "New_York_City"

    def test_local_name_replaces_separators(self):
        assert uri_local_name("http://dbpedia.org/resource/New_York_City") == "New York City"
        assert uri_local_name("http://ex.org/r/a-b+c") == "a b c"

    def test_local_name_of_opaque_id(self):
        assert uri_local_name("http://kbb.example.org/m/0f1a2") == "0f1a2"
