"""Tests for the LOD shape-analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    interlinking_density,
    match_regime,
    similarity_regime,
    vocabulary_overlap,
)
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


def kb(name: str, entries: dict[str, dict[str, list[str]]]) -> EntityCollection:
    return EntityCollection(
        [EntityDescription(uri, attrs, source=name) for uri, attrs in entries.items()],
        name=name,
    )


class TestVocabularyOverlap:
    def test_disjoint_vocabularies(self):
        kb1 = kb("a", {"http://a/1": {"p1": ["x"], "p2": ["y"]}})
        kb2 = kb("b", {"http://b/1": {"q1": ["x"]}})
        overlap = vocabulary_overlap(kb1, kb2)
        assert overlap.shared_properties == 0
        assert overlap.jaccard == 0.0
        assert overlap.proprietary_fraction == 1.0

    def test_partial_overlap(self):
        kb1 = kb("a", {"http://a/1": {"name": ["x"], "p": ["y"]}})
        kb2 = kb("b", {"http://b/1": {"name": ["x"], "q": ["y"]}})
        overlap = vocabulary_overlap(kb1, kb2)
        assert overlap.shared_properties == 1
        assert overlap.jaccard == pytest.approx(1 / 3)

    def test_synthetic_kbs_are_proprietary(self, center_dataset):
        overlap = vocabulary_overlap(center_dataset.kb1, center_dataset.kb2)
        assert overlap.proprietary_fraction == 1.0


class TestSimilarityRegime:
    def test_empty_pairs_rejected(self):
        kb1 = kb("a", {"http://a/1": {"p": ["x"]}})
        with pytest.raises(ValueError):
            similarity_regime([kb1], [])

    def test_center_classification(self, center_dataset):
        regime = match_regime(
            center_dataset.kb1, center_dataset.kb2, center_dataset.gold
        )
        assert regime.regime == "center"
        assert regime.mean_jaccard > 0.5
        assert regime.low_evidence_fraction <= 0.05

    def test_periphery_classification(self, periphery_dataset):
        regime = match_regime(
            periphery_dataset.kb1, periphery_dataset.kb2, periphery_dataset.gold
        )
        assert regime.regime == "periphery"
        assert regime.low_evidence_pairs > 0

    def test_counts(self):
        kb1 = kb("a", {"http://a/1": {"p": ["alpha beta gamma"]}})
        kb2 = kb("b", {"http://b/1": {"q": ["alpha beta gamma"]}})
        regime = similarity_regime([kb1, kb2], [("http://a/1", "http://b/1")])
        assert regime.pair_count == 1
        assert regime.min_jaccard > 0


class TestInterlinkingDensity:
    def test_empty_collection(self):
        assert interlinking_density(EntityCollection(name="empty")) == 0.0

    def test_counts_edges_per_description(self):
        collection = kb(
            "a",
            {
                "http://a/1": {"r": ["http://a/2"]},
                "http://a/2": {"p": ["x"]},
            },
        )
        assert interlinking_density(collection) == pytest.approx(0.5)

    def test_center_denser_than_periphery(self, center_dataset, periphery_dataset):
        center_density = interlinking_density(center_dataset.kb1)
        periphery_density = interlinking_density(periphery_dataset.kb1)
        # relation_keep is lower in the periphery profile.
        assert periphery_density <= center_density
