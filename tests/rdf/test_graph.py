"""Tests for the indexed triple store."""

from __future__ import annotations

from repro.rdf.graph import TripleStore
from repro.rdf.ntriples import Triple, parse_ntriples


def store() -> TripleStore:
    return TripleStore(
        [
            Triple("s1", "p1", "o1"),
            Triple("s1", "p1", "o2"),
            Triple("s1", "p2", "lit", True),
            Triple("s2", "p1", "o1"),
        ]
    )


class TestBasics:
    def test_len_iter(self):
        assert len(store()) == 4
        assert len(list(store())) == 4

    def test_duplicates_collapsed(self):
        s = TripleStore()
        assert s.add(Triple("a", "b", "c")) is True
        assert s.add(Triple("a", "b", "c")) is False
        assert len(s) == 1

    def test_contains(self):
        assert Triple("s1", "p1", "o1") in store()
        assert Triple("x", "y", "z") not in store()

    def test_add_all_counts_new(self):
        s = store()
        added = s.add_all([Triple("s1", "p1", "o1"), Triple("new", "p", "o")])
        assert added == 1

    def test_subjects_predicates(self):
        s = store()
        assert s.subjects() == ["s1", "s2"]
        assert s.predicates() == ["p1", "p2"]


class TestMatch:
    def test_by_subject(self):
        assert len(list(store().match(subject="s1"))) == 3

    def test_by_subject_predicate(self):
        assert len(list(store().match(subject="s1", predicate="p1"))) == 2

    def test_full_pattern(self):
        assert len(list(store().match(subject="s1", predicate="p1", obj="o1"))) == 1

    def test_by_predicate(self):
        assert len(list(store().match(predicate="p1"))) == 3

    def test_by_predicate_object(self):
        assert len(list(store().match(predicate="p1", obj="o1"))) == 2

    def test_by_object(self):
        assert len(list(store().match(obj="o1"))) == 2

    def test_wildcard_matches_all(self):
        assert len(list(store().match())) == 4

    def test_no_matches(self):
        assert list(store().match(subject="ghost")) == []

    def test_triples_of_and_objects(self):
        s = store()
        assert len(s.triples_of("s1")) == 3
        assert s.objects("s1", "p1") == ["o1", "o2"]


class TestSerialization:
    def test_round_trip_via_ntriples(self):
        original = store()
        text = original.to_ntriples()
        reparsed = TripleStore(parse_ntriples(text))
        assert len(reparsed) == len(original)
        for triple in original:
            assert triple in reparsed
