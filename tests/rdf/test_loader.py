"""Tests for RDF → entity-collection loading."""

from __future__ import annotations

import pytest

from repro.rdf.loader import collection_from_triples, load_collection
from repro.rdf.ntriples import Triple

_RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


def triples() -> list[Triple]:
    return [
        Triple("http://e/a", "http://p/name", "Alpha", True),
        Triple("http://e/a", "http://p/knows", "http://e/b"),
        Triple("http://e/a", _RDF_TYPE, "http://t/Person"),
        Triple("http://e/b", "http://p/name", "Beta", True),
        Triple("_:blank", "http://p/name", "Anonymous", True),
    ]


class TestGrouping:
    def test_one_description_per_subject(self):
        collection = collection_from_triples(triples(), name="t")
        assert len(collection) == 2
        assert collection["http://e/a"].first("http://p/name") == "Alpha"

    def test_blank_nodes_skipped_by_default(self):
        collection = collection_from_triples(triples())
        assert "_:blank" not in collection

    def test_blank_nodes_kept_on_request(self):
        collection = collection_from_triples(triples(), skip_blank_nodes=False)
        assert "_:blank" in collection

    def test_rdf_type_kept_by_default(self):
        collection = collection_from_triples(triples())
        assert collection["http://e/a"].get(_RDF_TYPE) == ["http://t/Person"]

    def test_rdf_type_skippable(self):
        collection = collection_from_triples(triples(), skip_rdf_type=True)
        assert collection["http://e/a"].get(_RDF_TYPE) == []

    def test_source_defaults_to_name(self):
        collection = collection_from_triples(triples(), name="mykb")
        assert collection["http://e/a"].source == "mykb"

    def test_relationships_resolved(self):
        collection = collection_from_triples(triples())
        assert collection.neighbors("http://e/a") == ["http://e/b"]


class TestFileLoading:
    def test_load_nt(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text('<http://e/a> <http://p/name> "Alpha" .\n')
        collection = load_collection(str(path))
        assert len(collection) == 1
        assert collection.name == "data"

    def test_load_ttl(self, tmp_path):
        path = tmp_path / "data.ttl"
        path.write_text('@prefix p: <http://p/> .\n<http://e/a> p:name "Alpha" .\n')
        collection = load_collection(str(path))
        assert collection["http://e/a"].first("http://p/name") == "Alpha"

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_collection(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_collection(str(tmp_path / "nope.nt"))

    def test_explicit_name_and_source(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text('<http://e/a> <http://p/name> "Alpha" .\n')
        collection = load_collection(str(path), name="custom", source="src")
        assert collection.name == "custom"
        assert collection["http://e/a"].source == "src"
