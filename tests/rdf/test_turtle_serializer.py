"""Tests for the Turtle serializer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.rdf.ntriples import Triple
from repro.rdf.turtle import parse_turtle, serialize_turtle

_RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


def triples() -> list[Triple]:
    return [
        Triple("http://e/a", "http://p/name", "Alpha", True),
        Triple("http://e/a", "http://p/name", "Alfa", True),
        Triple("http://e/a", "http://p/knows", "http://e/b"),
        Triple("http://e/a", _RDF_TYPE, "http://t/Person"),
        Triple("http://e/b", "http://p/name", "Beta", True, "en"),
        Triple("http://e/b", "http://p/age", "42", True, "", "http://www.w3.org/2001/XMLSchema#integer"),
    ]


class TestSerialization:
    def test_round_trip(self):
        text = serialize_turtle(triples())
        assert set(parse_turtle(text)) == set(triples())

    def test_round_trip_with_prefixes(self):
        text = serialize_turtle(
            triples(), prefixes={"p": "http://p/", "e": "http://e/"}
        )
        assert "@prefix p:" in text
        assert "p:name" in text
        assert set(parse_turtle(text)) == set(triples())

    def test_rdf_type_rendered_as_a(self):
        text = serialize_turtle(triples())
        assert " a " in text.replace("\n", " ")

    def test_subject_grouping(self):
        text = serialize_turtle(triples())
        # One subject block per subject, predicates joined by ';'.
        assert text.count("<http://e/a>\n") == 1
        assert ";" in text

    def test_object_lists(self):
        text = serialize_turtle(triples())
        assert '"Alpha", "Alfa"' in text

    def test_escapes_round_trip(self):
        tricky = [Triple("http://e/x", "http://p/v", 'line\n"quoted"\ttab\\', True)]
        assert list(parse_turtle(serialize_turtle(tricky))) == tricky

    def test_language_and_datatype_round_trip(self):
        text = serialize_turtle(triples())
        reparsed = {t for t in parse_turtle(text) if t.is_literal}
        languages = {t.language for t in reparsed}
        datatypes = {t.datatype for t in reparsed}
        assert "en" in languages
        assert any(dt.endswith("integer") for dt in datatypes)

    def test_empty(self):
        assert serialize_turtle([]) == ""
        assert list(parse_turtle(serialize_turtle([]))) == []

    def test_blank_nodes(self):
        data = [Triple("_:b1", "http://p/v", "x", True)]
        assert list(parse_turtle(serialize_turtle(data))) == data

    literal_values = st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=1),
        max_size=40,
    )

    @given(literal_values)
    def test_any_literal_round_trips(self, value):
        data = [Triple("http://e/x", "http://p/v", value, True)]
        assert list(parse_turtle(serialize_turtle(data))) == data
