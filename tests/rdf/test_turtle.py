"""Tests for the Turtle-subset reader."""

from __future__ import annotations

import pytest

from repro.rdf.ntriples import NTriplesParseError, Triple
from repro.rdf.turtle import parse_turtle


class TestDirectives:
    def test_prefix_expansion(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a ex:p ex:b .
        """
        (triple,) = parse_turtle(text)
        assert triple == Triple("http://ex.org/a", "http://ex.org/p", "http://ex.org/b")

    def test_sparql_style_prefix(self):
        text = """
        PREFIX ex: <http://ex.org/>
        ex:a ex:p ex:b .
        """
        (triple,) = parse_turtle(text)
        assert triple.subject == "http://ex.org/a"

    def test_base_resolution(self):
        text = """
        @base <http://ex.org/> .
        <a> <p> <b> .
        """
        (triple,) = parse_turtle(text)
        assert triple.subject == "http://ex.org/a"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(NTriplesParseError):
            list(parse_turtle("nope:a nope:p nope:b ."))


class TestStatementForms:
    def test_a_keyword(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:x a ex:Type .
        """
        (triple,) = parse_turtle(text)
        assert triple.predicate.endswith("#type")

    def test_predicate_list(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:x ex:p "1" ; ex:q "2" .
        """
        triples = list(parse_turtle(text))
        assert len(triples) == 2
        assert {t.predicate for t in triples} == {"http://ex.org/p", "http://ex.org/q"}
        assert all(t.subject == "http://ex.org/x" for t in triples)

    def test_object_list(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:x ex:p "1", "2", "3" .
        """
        triples = list(parse_turtle(text))
        assert [t.object for t in triples] == ["1", "2", "3"]

    def test_trailing_semicolon(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:x ex:p "1" ; .
        """
        assert len(list(parse_turtle(text))) == 1

    def test_literals_with_tags(self):
        text = """
        @prefix ex: <http://ex.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:x ex:lang "hola"@es ; ex:typed "5"^^xsd:int .
        """
        by_predicate = {t.predicate: t for t in parse_turtle(text)}
        assert by_predicate["http://ex.org/lang"].language == "es"
        assert by_predicate["http://ex.org/typed"].datatype.endswith("#int")

    def test_numeric_and_boolean_shorthand(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:x ex:n 42 ; ex:d 3.14 ; ex:b true .
        """
        objects = {t.predicate.rsplit("/", 1)[1]: t for t in parse_turtle(text)}
        assert objects["n"].datatype.endswith("integer")
        assert objects["d"].datatype.endswith("decimal")
        assert objects["b"].object == "true"

    def test_long_literal(self):
        text = '@prefix ex: <http://ex.org/> .\nex:x ex:p """multi\nline "quoted" text""" .'
        (triple,) = parse_turtle(text)
        assert "multi\nline" in triple.object

    def test_blank_node_subject(self):
        text = """
        @prefix ex: <http://ex.org/> .
        _:node ex:p "v" .
        """
        (triple,) = parse_turtle(text)
        assert triple.subject == "_:node"

    def test_comments_ignored(self):
        text = """
        @prefix ex: <http://ex.org/> . # namespace
        ex:a ex:p ex:b . # statement
        """
        assert len(list(parse_turtle(text))) == 1

    def test_anonymous_bnode_rejected_clearly(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a ex:p [ ex:q "v" ] .
        """
        with pytest.raises(NTriplesParseError):
            list(parse_turtle(text))

    def test_empty_document(self):
        assert list(parse_turtle("")) == []
        assert list(parse_turtle("@prefix ex: <http://ex.org/> .")) == []
