"""Fuzzed round-trip tests across the RDF stack."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rdf.graph import TripleStore
from repro.rdf.ntriples import Triple, parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle, serialize_turtle

# IRIs: scheme + authority + safe path characters (the profile real LOD
# identifiers live in).
iri_body = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789/_-.~%"),
    min_size=1,
    max_size=30,
)
iris = iri_body.map(lambda body: f"http://ex.org/{body}")
bnodes = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789"),
    min_size=1,
    max_size=10,
).map(lambda label: f"_:{label}")
literals = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=1),
    max_size=50,
)
languages = st.sampled_from(["", "en", "fr", "de-AT", "el"])


@st.composite
def triple_values(draw):
    subject = draw(st.one_of(iris, bnodes))
    predicate = draw(iris)
    if draw(st.booleans()):
        value = draw(literals)
        language = draw(languages)
        datatype = "" if language else draw(st.sampled_from(["", "http://www.w3.org/2001/XMLSchema#string"]))
        return Triple(subject, predicate, value, True, language, datatype)
    return Triple(subject, predicate, draw(st.one_of(iris, bnodes)))


class TestNTriplesFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(triple_values(), max_size=15))
    def test_serialize_parse_round_trip(self, data):
        text = serialize_ntriples(data)
        assert list(parse_ntriples(text)) == data

    @settings(max_examples=50, deadline=None)
    @given(st.lists(triple_values(), max_size=15))
    def test_store_round_trip(self, data):
        store = TripleStore(data)
        reparsed = TripleStore(parse_ntriples(store.to_ntriples()))
        assert set(reparsed) == set(store)


class TestTurtleFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(triple_values(), max_size=15))
    def test_serialize_parse_round_trip(self, data):
        text = serialize_turtle(data)
        assert set(parse_turtle(text)) == set(data)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(triple_values(), max_size=15))
    def test_turtle_and_ntriples_agree(self, data):
        from_turtle = set(parse_turtle(serialize_turtle(data)))
        from_ntriples = set(parse_ntriples(serialize_ntriples(data)))
        assert from_turtle == from_ntriples
