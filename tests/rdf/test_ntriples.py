"""Tests for the N-Triples parser and serializer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.rdf.ntriples import (
    NTriplesParseError,
    Triple,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    serialize_triple,
)


class TestParseLine:
    def test_simple_iri_triple(self):
        triple = parse_ntriples_line("<http://a> <http://p> <http://b> .")
        assert triple == Triple("http://a", "http://p", "http://b")
        assert not triple.is_literal

    def test_plain_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "hello world" .')
        assert triple.object == "hello world"
        assert triple.is_literal

    def test_language_tagged_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "bonjour"@fr .')
        assert triple.language == "fr"
        assert triple.datatype == ""

    def test_datatyped_literal(self):
        triple = parse_ntriples_line(
            '<http://a> <http://p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.datatype.endswith("integer")
        assert triple.object == "42"

    def test_blank_nodes(self):
        triple = parse_ntriples_line("_:b1 <http://p> _:b2 .")
        assert triple.subject == "_:b1"
        assert triple.object == "_:b2"

    def test_escapes_in_literal(self):
        triple = parse_ntriples_line(r'<http://a> <http://p> "line\nbreak \"q\" \\ tab\t" .')
        assert triple.object == 'line\nbreak "q" \\ tab\t'

    def test_unicode_escapes(self):
        triple = parse_ntriples_line(r'<http://a> <http://p> "café" .')
        assert triple.object == "café"
        triple = parse_ntriples_line(r'<http://a> <http://p> "\U0001F600" .')
        assert triple.object == "😀"

    def test_unicode_escape_in_iri(self):
        triple = parse_ntriples_line(r"<http://a/café> <http://p> <http://b> .")
        assert triple.subject == "http://a/café"

    def test_extra_whitespace_tolerated(self):
        triple = parse_ntriples_line("<http://a>   <http://p>\t<http://b>   .")
        assert triple.predicate == "http://p"


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<http://a> <http://p> <http://b>",  # missing dot
            "<http://a> <http://p> .",  # missing object
            '<http://a> "lit" <http://b> .',  # literal predicate
            "<http://a> <http://p> <http://b> . extra",  # trailing garbage
            '<http://a> <http://p> "unterminated .',
            "<http://a <http://p> <http://b> .",  # unterminated IRI
            r'<http://a> <http://p> "bad\q" .',  # invalid escape
            '<http://a> <http://p> "x"@ .',  # empty language
            "<> <http://p> <http://b> .",  # empty IRI
            "_: <http://p> <http://b> .",  # empty bnode label
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line(line)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesParseError) as excinfo:
            list(parse_ntriples("<http://a> <http://p> <http://b> .\nbroken line ."))
        assert excinfo.value.line_number == 2


class TestParseDocument:
    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n<http://a> <http://p> <http://b> .\n  \n"
        triples = list(parse_ntriples(text))
        assert len(triples) == 1

    def test_iterable_of_lines(self):
        lines = ["<http://a> <http://p> <http://b> ."] * 3
        assert len(list(parse_ntriples(lines))) == 3


class TestRoundTrip:
    CASES = [
        Triple("http://a", "http://p", "http://b"),
        Triple("_:b1", "http://p", "_:b2"),
        Triple("http://a", "http://p", "plain text", True),
        Triple("http://a", "http://p", "hola", True, "es"),
        Triple("http://a", "http://p", "42", True, "", "http://www.w3.org/2001/XMLSchema#integer"),
        Triple("http://a", "http://p", 'tricky "quotes"\nand\tlines\\', True),
    ]

    @pytest.mark.parametrize("triple", CASES)
    def test_round_trip(self, triple):
        line = serialize_triple(triple)
        assert parse_ntriples_line(line) == triple

    def test_document_round_trip(self):
        text = serialize_ntriples(self.CASES)
        assert list(parse_ntriples(text)) == self.CASES

    literal_text = st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=1),
        max_size=60,
    )

    @given(literal_text)
    def test_any_literal_round_trips(self, value):
        triple = Triple("http://a", "http://p", value, True)
        # \r is normalized away by splitlines; serialize escapes it instead.
        assert parse_ntriples_line(serialize_triple(triple)) == triple
