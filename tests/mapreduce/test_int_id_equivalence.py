"""Bit-identity suite: int-ID parallel meta-blocking == sequential graph.

The int-ID MapReduce formulation promises results **bit-identical** to
the sequential :class:`~repro.metablocking.graph.BlockingGraph` fast
path — pairs, float weights and surviving-edge order — for all six
weighting schemes × the four canonical pruners, on all three sample
corpora, at every worker count, on both executors.  This suite is that
promise spelled out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.datasets import load_movies, load_people, load_restaurants
from repro.mapreduce import (
    MapReduceEngine,
    ProcessExecutor,
    parallel_metablocking_ids,
    parallel_pair_table,
)
from repro.metablocking.graph import BlockingGraph, pair_table_for
from repro.metablocking.pruning import make_pruner
from repro.metablocking.weighting import make_scheme

CORPORA = ("movies", "restaurants", "people")
SCHEME_NAMES = ("CBS", "ECBS", "JS", "EJS", "ARCS", "X2")
PRUNER_NAMES = ("WEP", "CEP", "WNP", "CNP")
WORKER_COUNTS = (1, 3, 4)

_LOADERS = {
    "movies": load_movies,
    "restaurants": load_restaurants,
    "people": load_people,
}


@pytest.fixture(scope="module")
def corpus_blocks():
    """Token blocks of each sample corpus."""
    blocks = {}
    for corpus, loader in _LOADERS.items():
        kb_a, kb_b, _ = loader()
        blocks[corpus] = TokenBlocking().build(kb_a, kb_b)
    return blocks


@pytest.fixture(scope="module")
def sequential_edges(corpus_blocks):
    """Expected (pair, weight) lists from the sequential fast path."""
    expected = {}
    for corpus, blocks in corpus_blocks.items():
        for scheme_name in SCHEME_NAMES:
            for pruner_name in PRUNER_NAMES:
                edges = make_pruner(pruner_name).prune(
                    BlockingGraph(blocks, make_scheme(scheme_name))
                )
                expected[(corpus, scheme_name, pruner_name)] = [
                    (edge.pair, edge.weight) for edge in edges
                ]
    return expected


@pytest.fixture(scope="module")
def process_engines():
    """Persistent multiprocessing engines, one per swept worker count."""
    if not ProcessExecutor.available():
        pytest.skip("fork start method unavailable")
    engines = {
        workers: MapReduceEngine(workers=workers, executor="process")
        for workers in WORKER_COUNTS
    }
    yield engines
    for engine in engines.values():
        engine.close()


def _as_pairs(edges):
    return [(edge.pair, edge.weight) for edge in edges]


class TestPairTable:
    """The MapReduce pair table equals the sequential one bit for bit."""

    @pytest.mark.parametrize("corpus", CORPORA)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_serial(self, corpus_blocks, corpus, workers):
        blocks = corpus_blocks[corpus]
        reference = pair_table_for(blocks)
        table, metrics = parallel_pair_table(
            MapReduceEngine(workers=workers), blocks
        )
        assert table.pairs == reference.pairs  # row order included
        assert np.array_equal(table.ids_a, reference.ids_a)
        assert np.array_equal(table.ids_b, reference.ids_b)
        assert np.array_equal(table.common, reference.common)
        # Bit-identical floats, not approx: the ARCS fold is re-sequenced
        # across the shuffle to match the sequential enumeration exactly.
        assert np.array_equal(table.arcs, reference.arcs)
        assert metrics.shuffle_records > 0
        assert metrics.shuffle_bytes > 0

    @pytest.mark.parametrize("corpus", CORPORA)
    def test_process(self, corpus_blocks, process_engines, corpus):
        blocks = corpus_blocks[corpus]
        reference = pair_table_for(blocks)
        for workers, engine in process_engines.items():
            table, _ = parallel_pair_table(engine, blocks)
            assert table.pairs == reference.pairs, workers
            assert np.array_equal(table.common, reference.common)
            assert np.array_equal(table.arcs, reference.arcs)


class TestSerialExecutorEquivalence:
    """Full matrix on the deterministic in-process oracle."""

    @pytest.mark.parametrize("pruner_name", PRUNER_NAMES)
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    @pytest.mark.parametrize("corpus", CORPORA)
    def test_bit_identical(
        self, corpus_blocks, sequential_edges, corpus, scheme_name, pruner_name
    ):
        expected = sequential_edges[(corpus, scheme_name, pruner_name)]
        for workers in WORKER_COUNTS:
            parallel, metrics = parallel_metablocking_ids(
                MapReduceEngine(workers=workers),
                corpus_blocks[corpus],
                make_scheme(scheme_name),
                make_pruner(pruner_name),
            )
            assert _as_pairs(parallel) == expected, (workers, "edges differ")
            assert len(metrics) >= 2  # stats + at least one pruning job


class TestProcessExecutorEquivalence:
    """Full matrix through real multiprocessing workers."""

    @pytest.mark.parametrize("pruner_name", PRUNER_NAMES)
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    @pytest.mark.parametrize("corpus", CORPORA)
    def test_bit_identical(
        self,
        corpus_blocks,
        sequential_edges,
        process_engines,
        corpus,
        scheme_name,
        pruner_name,
    ):
        expected = sequential_edges[(corpus, scheme_name, pruner_name)]
        for workers, engine in process_engines.items():
            parallel, _ = parallel_metablocking_ids(
                engine,
                corpus_blocks[corpus],
                make_scheme(scheme_name),
                make_pruner(pruner_name),
            )
            assert _as_pairs(parallel) == expected, (workers, "edges differ")


class TestReciprocalVariants:
    """Reciprocal WNP/CNP ride the same entity-centric chain."""

    @pytest.mark.parametrize("pruner_name", ["ReciprocalWNP", "ReciprocalCNP"])
    @pytest.mark.parametrize("corpus", CORPORA)
    def test_bit_identical(self, corpus_blocks, corpus, pruner_name):
        blocks = corpus_blocks[corpus]
        expected = _as_pairs(
            make_pruner(pruner_name).prune(BlockingGraph(blocks, make_scheme("ARCS")))
        )
        parallel, _ = parallel_metablocking_ids(
            MapReduceEngine(workers=3),
            blocks,
            make_scheme("ARCS"),
            make_pruner(pruner_name),
        )
        assert _as_pairs(parallel) == expected


class TestEdgeCases:
    def test_empty_collection(self):
        from repro.blocking.block import BlockCollection

        blocks = BlockCollection(name="empty")
        blocks.prime_id_views(
            __import__("repro.model.interner", fromlist=["EntityInterner"])
            .EntityInterner(),
            [],
        )
        edges, _ = parallel_metablocking_ids(
            MapReduceEngine(workers=4), blocks, make_scheme("ARCS"), make_pruner("CNP")
        )
        assert edges == []

    def test_unsupported_pruner_rejected(self, corpus_blocks):
        class Bogus:
            name = "bogus"

        with pytest.raises(TypeError):
            parallel_metablocking_ids(
                MapReduceEngine(workers=2),
                corpus_blocks["movies"],
                make_scheme("CBS"),
                Bogus(),
            )
