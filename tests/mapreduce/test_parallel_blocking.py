"""Equivalence tests: MapReduce token blocking == sequential token blocking."""

from __future__ import annotations

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.parallel_blocking import parallel_token_blocking
from repro.model.tokenizer import Tokenizer


def assert_same_blocks(sequential, parallel):
    assert sequential.keys() == parallel.keys()
    for key in sequential.keys():
        seq_block, par_block = sequential[key], parallel[key]
        assert sorted(seq_block.entities1) == sorted(par_block.entities1)
        if seq_block.is_bipartite:
            assert sorted(seq_block.entities2) == sorted(par_block.entities2 or [])


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_clean_clean_equivalence(self, movies, workers):
        kb_a, kb_b, _ = movies
        tokenizer = Tokenizer(include_uri_infix=True)
        sequential = TokenBlocking(tokenizer).build(kb_a, kb_b)
        parallel, metrics = parallel_token_blocking(
            MapReduceEngine(workers=workers), kb_a, kb_b, tokenizer
        )
        assert_same_blocks(sequential, parallel)
        assert metrics.workers == workers

    def test_dirty_equivalence(self, dirty_dataset):
        collection, _ = dirty_dataset
        tokenizer = Tokenizer()
        sequential = TokenBlocking(tokenizer).build(collection)
        parallel, _ = parallel_token_blocking(
            MapReduceEngine(workers=4), collection, tokenizer=tokenizer
        )
        assert_same_blocks(sequential, parallel)

    def test_singleton_semantics_match(self, restaurants):
        kb_a, kb_b, _ = restaurants
        sequential = TokenBlocking().build(kb_a, kb_b, drop_singletons=False)
        parallel, _ = parallel_token_blocking(
            MapReduceEngine(workers=2), kb_a, kb_b, drop_singletons=False
        )
        assert_same_blocks(sequential, parallel)

    def test_metrics_expose_shuffle_volume(self, restaurants):
        kb_a, kb_b, _ = restaurants
        _, metrics = parallel_token_blocking(MapReduceEngine(workers=2), kb_a, kb_b)
        assert metrics.shuffle_records == metrics.map_output_records
        assert metrics.shuffle_bytes > 0

    def test_worker_count_does_not_change_blocks(self, center_dataset):
        blocks1, _ = parallel_token_blocking(
            MapReduceEngine(workers=1), center_dataset.kb1, center_dataset.kb2
        )
        blocks8, _ = parallel_token_blocking(
            MapReduceEngine(workers=8), center_dataset.kb1, center_dataset.kb2
        )
        assert_same_blocks(blocks1, blocks8)
