"""The shared-memory data plane: store lifecycle, descriptors, identity.

Three layers of guarantees, each pinned here:

* **plumbing** — :class:`SharedBlockStore` publish/view/fetch round-trips
  bytes exactly, arenas hand out aligned reservations and refuse
  overflow, and every lifecycle exit (``destroy``, context manager,
  engine safety net, driver crash) converges to zero surviving
  ``repro_shm_*`` segments in ``/dev/shm``;
* **transport identity** — :func:`partition_batch_into` (descriptors in
  a shared arena) routes and orders rows exactly like
  :func:`partition_batch` (materialized batches), and the string-column
  hash equals the engine's scalar partitioner row for row;
* **end-to-end identity** — on hypothesis-generated block collections
  the descriptor-based map/shuffle/reduce output is bit-identical to
  the sequential oracle across 1–4 workers × all six weighting schemes
  × WEP/CEP/WNP/CNP, on the serial executor and through real
  multiprocessing workers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocking.block import Block, BlockCollection
from repro.mapreduce import (
    MapReduceEngine,
    ProcessExecutor,
    hash_partitioner,
    leaked_segments,
    parallel_metablocking_ids,
    parallel_pair_table,
)
from repro.mapreduce.records import (
    DescriptorBatch,
    partition_batch,
    partition_batch_into,
    stable_hash_str_array,
)
from repro.mapreduce.shm import (
    ATTACH_COUNT,
    SEGMENTS_CREATED,
    ArenaWriter,
    ArrayRef,
    SharedBlockStore,
    arena_capacity,
    attach_array,
    shared_memory_available,
)
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import make_pruner
from repro.metablocking.weighting import make_scheme
from repro.model.interner import EntityInterner

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory unavailable"
)

SCHEME_NAMES = ("CBS", "ECBS", "JS", "EJS", "ARCS", "X2")
PRUNER_NAMES = ("WEP", "CEP", "WNP", "CNP")


# ---------------------------------------------------------------------------
# Store plumbing
# ---------------------------------------------------------------------------


class TestSharedBlockStore:
    def test_publish_view_fetch_round_trip(self):
        ints = np.arange(100, dtype=np.int64)
        floats = np.linspace(0.0, 1.0, 37)
        small = np.array([7], dtype=np.int32)
        with SharedBlockStore() as store:
            refs = store.publish_arrays(ints, floats, small)
            assert [ref.nbytes for ref in refs] == [800, 296, 4]
            for ref, original in zip(refs, (ints, floats, small)):
                assert store.view(ref).dtype == original.dtype
                assert np.array_equal(store.view(ref), original)
            copies = [store.fetch(ref) for ref in refs]
        # Fetched copies outlive the store; views would not.
        assert np.array_equal(copies[0], ints)
        assert np.array_equal(copies[1], floats)

    def test_attach_array_sees_driver_bytes(self):
        data = np.arange(64, dtype=np.float64)
        with SharedBlockStore() as store:
            (ref,) = store.publish_arrays(data)
            attached = attach_array(ref)
            assert np.array_equal(attached, data)
            # Zero-copy: a write through the attached view is visible
            # through the store's own view of the same segment.
            attached[0] = -1.0
            assert store.view(ref)[0] == -1.0
            del attached

    def test_segments_are_prefixed_and_accounted(self):
        created_before = SEGMENTS_CREATED.value
        store = SharedBlockStore()
        try:
            store.publish_arrays(np.zeros(10))
            store.allocate(1024)
            names = leaked_segments()
            assert any(name.startswith(store.store_id) for name in names)
            assert SEGMENTS_CREATED.value == created_before + 2
        finally:
            store.destroy()
        assert not any(
            name.startswith(store.store_id) for name in leaked_segments()
        )

    def test_destroy_is_idempotent(self):
        store = SharedBlockStore()
        store.publish_arrays(np.ones(5))
        store.destroy()
        store.destroy()  # second call must be a no-op, not an error
        assert not any(
            name.startswith(store.store_id) for name in leaked_segments()
        )

    def test_attach_count_increments(self):
        with SharedBlockStore() as store:
            (ref,) = store.publish_arrays(np.arange(4))
            before = ATTACH_COUNT.value
            attach_array(ref)  # first attach of this segment
            attach_array(ref)  # cached: no second attach
            assert ATTACH_COUNT.value == before + 1


class TestArenaWriter:
    def test_reserve_write_round_trip(self):
        with SharedBlockStore() as store:
            arena = store.allocate(arena_capacity(100, 16, 2, 2))
            writer = ArenaWriter(arena)
            a = np.arange(50, dtype=np.int64)
            b = np.linspace(0, 1, 50)
            ref_a = writer.write(a)
            ref_b = writer.write(b)
            assert ref_a.offset != ref_b.offset
            assert np.array_equal(attach_array(ref_a), a)
            assert np.array_equal(attach_array(ref_b), b)

    def test_reservations_are_aligned(self):
        with SharedBlockStore() as store:
            writer = ArenaWriter(store.allocate(4096))
            ref1, _ = writer.reserve(np.int8, 3)  # 3 bytes, pads to 16
            ref2, _ = writer.reserve(np.int64, 4)
            assert ref1.offset == 0
            assert ref2.offset % 16 == 0

    def test_overflow_raises(self):
        with SharedBlockStore() as store:
            writer = ArenaWriter(store.allocate(64))
            writer.reserve(np.int64, 8)  # exactly fills the arena
            with pytest.raises(ValueError, match="overflow"):
                writer.reserve(np.int64, 1)


class TestDescriptorBatch:
    def test_round_trip_and_accounting(self):
        keys = np.arange(20, dtype=np.int64)
        weights = np.linspace(0, 1, 20)
        with SharedBlockStore() as store:
            writer = ArenaWriter(store.allocate(arena_capacity(20, 16, 1, 2)))
            batch = DescriptorBatch(
                (writer.write(keys), writer.write(weights)), len(keys)
            )
            assert len(batch) == 20
            # nbytes reports the referenced payload — what a materialized
            # shuffle would have shipped — not the pickled descriptor size.
            assert batch.nbytes == keys.nbytes + weights.nbytes
            got_keys, got_weights = batch.columns
            assert np.array_equal(got_keys, keys)
            assert np.array_equal(got_weights, weights)


# ---------------------------------------------------------------------------
# Transport identity
# ---------------------------------------------------------------------------


class TestPartitionBatchInto:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=200),
        st.integers(1, 8),
    )
    def test_matches_materialized_partitioning(self, raw_keys, partitions):
        keys = np.array(raw_keys, dtype=np.int64)
        payload = np.arange(len(keys), dtype=np.float64)
        expected = partition_batch((keys, payload), keys, partitions)
        with SharedBlockStore() as store:
            writer = ArenaWriter(
                store.allocate(arena_capacity(len(keys), 16, partitions, 2))
            )
            got = partition_batch_into((keys, payload), keys, partitions, writer)
            assert [p for p, _ in got] == [p for p, _ in expected]
            for (_, desc), (_, batch) in zip(got, expected):
                assert len(desc) == len(batch)
                for desc_col, col in zip(desc.columns, batch.columns):
                    assert desc_col.dtype == col.dtype
                    assert np.array_equal(desc_col, col)

    def test_empty_input_returns_nothing(self):
        with SharedBlockStore() as store:
            writer = ArenaWriter(store.allocate(64))
            keys = np.empty(0, dtype=np.int64)
            assert partition_batch_into((keys,), keys, 4, writer) == []


class TestStringHashColumn:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.text(max_size=12), min_size=1, max_size=100),
        st.integers(1, 9),
    )
    def test_matches_scalar_partitioner(self, values, buckets):
        column = np.array(values)
        assignment = stable_hash_str_array(column, buckets)
        for value, bucket in zip(column.tolist(), assignment.tolist()):
            assert bucket == hash_partitioner(value, buckets)


# ---------------------------------------------------------------------------
# Hypothesis differential: descriptor path == sequential oracle
# ---------------------------------------------------------------------------

_uris_a = st.lists(
    st.integers(0, 14).map("a{}".format), min_size=1, max_size=6, unique=True
)
_uris_b = st.lists(
    st.integers(0, 14).map("b{}".format), min_size=1, max_size=6, unique=True
)
_block_collections = st.lists(
    st.tuples(_uris_a, _uris_b), min_size=1, max_size=12
)


def _build_blocks(raw: list[tuple[list[str], list[str]]]) -> BlockCollection:
    """A primed bipartite block collection from generated member lists."""
    blocks = BlockCollection(name="generated")
    interner = EntityInterner()
    id_blocks = []
    for index, (side1, side2) in enumerate(raw):
        block = Block(f"k{index}", side1, side2)
        blocks.add(block)
        id_blocks.append(
            (
                [interner.intern(u) for u in side1],
                [interner.intern(u) for u in side2],
                block.cardinality(),
            )
        )
    blocks.prime_id_views(interner, id_blocks)
    return blocks


def _edges(edge_list):
    return [(edge.pair, edge.weight) for edge in edge_list]


class TestDifferentialIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        _block_collections,
        st.sampled_from(SCHEME_NAMES),
        st.sampled_from(PRUNER_NAMES),
        st.integers(1, 4),
    )
    def test_serial_executor_bit_identical(
        self, raw, scheme_name, pruner_name, workers
    ):
        blocks = _build_blocks(raw)
        expected = _edges(
            make_pruner(pruner_name).prune(
                BlockingGraph(blocks, make_scheme(scheme_name))
            )
        )
        with MapReduceEngine(workers=workers, executor="serial") as engine:
            parallel, _ = parallel_metablocking_ids(
                engine, blocks, make_scheme(scheme_name), make_pruner(pruner_name)
            )
        assert _edges(parallel) == expected
        assert leaked_segments() == []

    @settings(max_examples=8, deadline=None)
    @given(
        _block_collections,
        st.sampled_from(SCHEME_NAMES),
        st.sampled_from(PRUNER_NAMES),
    )
    def test_process_executor_bit_identical(self, raw, scheme_name, pruner_name):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        blocks = _build_blocks(raw)
        expected = _edges(
            make_pruner(pruner_name).prune(
                BlockingGraph(blocks, make_scheme(scheme_name))
            )
        )
        for engine in _process_engines():
            parallel, _ = parallel_metablocking_ids(
                engine, blocks, make_scheme(scheme_name), make_pruner(pruner_name)
            )
            assert _edges(parallel) == expected, engine.workers


#: persistent process engines shared by every hypothesis example — pool
#: startup would otherwise dominate; torn down by the module fixture below
_ENGINES: dict[int, MapReduceEngine] = {}


def _process_engines():
    if not _ENGINES:
        for workers in (1, 2, 4):
            _ENGINES[workers] = MapReduceEngine(
                workers=workers, executor="process"
            )
    return _ENGINES.values()


@pytest.fixture(scope="module", autouse=True)
def _close_engines():
    yield
    while _ENGINES:
        _, engine = _ENGINES.popitem()
        engine.close()


# ---------------------------------------------------------------------------
# /dev/shm accounting
# ---------------------------------------------------------------------------


class TestSegmentAccounting:
    def test_clean_run_leaves_no_segments(self):
        blocks = _build_blocks([(["a0", "a1"], ["b0"]), (["a1"], ["b0", "b1"])])
        with MapReduceEngine(workers=3) as engine:
            parallel_metablocking_ids(
                engine, blocks, make_scheme("ARCS"), make_pruner("CNP")
            )
        assert leaked_segments() == []

    def test_driver_crash_releases_store(self, monkeypatch):
        """A failure mid-driver (after publish) still unlinks everything."""
        blocks = _build_blocks([(["a0", "a1"], ["b0", "b1"])])
        engine = MapReduceEngine(workers=2)

        def explode(*args, **kwargs):
            raise RuntimeError("simulated phase failure")

        monkeypatch.setattr(engine, "run_array", explode)
        with pytest.raises(RuntimeError, match="simulated"):
            parallel_pair_table(engine, blocks)
        # The driver's finally released (and destroyed) its store: the
        # engine tracks nothing and /dev/shm is clean.
        assert engine._stores == set()
        assert leaked_segments() == []
        engine.close()

    def test_engine_close_reaps_adopted_stores(self):
        """The safety net: adopted-but-never-released stores die with
        the engine, so even a driver that skipped its finally cannot
        leak past ``engine.close()``."""
        engine = MapReduceEngine(workers=2)
        store = SharedBlockStore()
        engine.adopt_store(store)
        store.publish_arrays(np.arange(16))
        assert any(
            name.startswith(store.store_id) for name in leaked_segments()
        )
        engine.close()
        assert leaked_segments() == []

    def test_release_store_is_idempotent_with_close(self):
        engine = MapReduceEngine(workers=2)
        store = SharedBlockStore()
        engine.adopt_store(store)
        store.allocate(256)
        engine.release_store(store)
        assert leaked_segments() == []
        engine.close()  # must not trip over the already-released store
        assert leaked_segments() == []
