"""Tests for the MapReduce engine and its executors."""

from __future__ import annotations

import pytest

from repro.mapreduce.engine import (
    JobMetrics,
    MapReduceEngine,
    MapReduceJob,
    ProcessExecutor,
    SerialExecutor,
    hash_partitioner,
    make_executor,
)
from repro.utils.rng import stable_hash, stable_hash_int


def word_count_job(with_combiner: bool = False) -> MapReduceJob:
    def mapper(_key, line):
        for word in line.split():
            yield word, 1

    def reducer(word, counts):
        yield word, sum(counts)

    return MapReduceJob(
        name="word-count",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer if with_combiner else None,
    )


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog"),
]
EXPECTED = {"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}


class TestEngine:
    def test_word_count(self):
        output, _ = MapReduceEngine(workers=3).run(word_count_job(), LINES)
        assert dict(output) == EXPECTED

    def test_single_worker_equivalent(self):
        out1, _ = MapReduceEngine(workers=1).run(word_count_job(), LINES)
        out4, _ = MapReduceEngine(workers=4).run(word_count_job(), LINES)
        assert dict(out1) == dict(out4)

    def test_combiner_preserves_result(self):
        plain, _ = MapReduceEngine(workers=2).run(word_count_job(), LINES)
        combined, _ = MapReduceEngine(workers=2).run(word_count_job(True), LINES)
        assert dict(plain) == dict(combined)

    def test_combiner_reduces_shuffle(self):
        _, plain = MapReduceEngine(workers=1).run(word_count_job(), LINES)
        _, combined = MapReduceEngine(workers=1).run(word_count_job(True), LINES)
        assert combined.shuffle_records < plain.shuffle_records

    def test_empty_input(self):
        output, metrics = MapReduceEngine(workers=2).run(word_count_job(), [])
        assert output == []
        assert metrics.map_input_records == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(workers=0)

    def test_more_workers_than_records(self):
        output, _ = MapReduceEngine(workers=16).run(word_count_job(), LINES)
        assert dict(output) == EXPECTED

    def test_run_chain(self):
        def invert_mapper(word, count):
            yield count, word

        def collect_reducer(count, word_list):
            yield count, sorted(word_list)

        chain = [
            word_count_job(),
            MapReduceJob(name="invert", mapper=invert_mapper, reducer=collect_reducer),
        ]
        output, metrics = MapReduceEngine(workers=2).run_chain(chain, LINES)
        result = dict(output)
        assert result[3] == ["the"]
        assert set(result[2]) == {"dog", "quick"}
        assert len(metrics) == 2


class TestMetrics:
    def run_metrics(self, workers: int) -> JobMetrics:
        _, metrics = MapReduceEngine(workers=workers).run(word_count_job(), LINES)
        return metrics

    def test_counters(self):
        metrics = self.run_metrics(2)
        assert metrics.map_input_records == 3
        assert metrics.map_output_records == 10
        assert metrics.shuffle_records == 10
        assert metrics.reduce_groups == 6
        assert metrics.reduce_output_records == 6
        assert metrics.shuffle_bytes > 0

    def test_task_costs_populated(self):
        metrics = self.run_metrics(2)
        assert len(metrics.map_task_costs) == 2
        assert len(metrics.reduce_task_costs) == 2

    def test_critical_path_shrinks_with_workers(self):
        sequential = self.run_metrics(1).critical_path_cost
        parallel = self.run_metrics(3).critical_path_cost
        assert parallel <= sequential

    def test_skew_of_empty_run(self):
        _, metrics = MapReduceEngine(workers=2).run(word_count_job(), [])
        assert metrics.skew == 1.0

    def test_skew_at_least_one(self):
        assert self.run_metrics(3).skew >= 1.0


class TestPartitioner:
    def test_deterministic(self):
        assert hash_partitioner("key", 8) == hash_partitioner("key", 8)

    def test_in_range(self):
        for key in ("a", ("tuple", "key"), 42):
            assert 0 <= hash_partitioner(key, 5) < 5

    def test_string_keys_keep_legacy_partitioning(self):
        # Regression: non-int keys must route exactly as the historical
        # repr-based partitioner did (int keys took a new fast path).
        for key in ("a", "token", "", ("pair", "tuple"), 3.5, None, True):
            for buckets in (1, 2, 5, 8):
                assert hash_partitioner(key, buckets) == stable_hash(
                    repr(key), buckets
                ), (key, buckets)

    def test_int_keys_avoid_repr(self):
        for key in (0, 7, 1 << 40, (3 << 32) | 9):
            for buckets in (1, 3, 8):
                assert hash_partitioner(key, buckets) == stable_hash_int(
                    key, buckets
                )

    def test_scalar_matches_vectorized(self):
        np = pytest.importorskip("numpy")
        from repro.mapreduce.records import stable_hash_int_array

        keys = np.array([0, 1, 7, (5 << 32) | 2, (1 << 62) + 13], dtype=np.int64)
        for buckets in (1, 2, 7, 16):
            vector = stable_hash_int_array(keys, buckets)
            assert vector.tolist() == [
                stable_hash_int(int(k), buckets) for k in keys
            ]

    def test_partitioning_respected(self):
        # All records of one key land in the same reduce group exactly once.
        def mapper(_k, v):
            yield v % 5, 1

        def reducer(k, values):
            yield k, len(values)

        job = MapReduceJob(name="mod", mapper=mapper, reducer=reducer)
        output, _ = MapReduceEngine(workers=4).run(job, [(i, i) for i in range(100)])
        assert dict(output) == {r: 20 for r in range(5)}


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor("serial", 2), SerialExecutor)
        serial = SerialExecutor()
        assert make_executor(serial, 2) is serial
        with pytest.raises(ValueError):
            make_executor("bogus", 2)

    def test_process_executor_word_count(self):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        with MapReduceEngine(workers=2, executor="process") as engine:
            output, metrics = engine.run(word_count_job(True), LINES)
        assert dict(output) == EXPECTED
        assert metrics.executor == "process"

    def test_executors_produce_identical_output(self):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        serial_out, _ = MapReduceEngine(workers=3).run(word_count_job(), LINES)
        with MapReduceEngine(workers=3, executor="process") as engine:
            process_out, _ = engine.run(word_count_job(), LINES)
        assert serial_out == process_out  # order included

    def test_wall_clock_measured(self):
        _, metrics = MapReduceEngine(workers=2).run(word_count_job(), LINES)
        assert metrics.map_wall_s >= 0.0
        assert metrics.reduce_wall_s >= 0.0
        assert metrics.wall_s == metrics.map_wall_s + metrics.reduce_wall_s

    def test_single_worker_process_runs_inline(self):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        with MapReduceEngine(workers=1, executor="process") as engine:
            output, _ = engine.run(word_count_job(), LINES)
        assert dict(output) == EXPECTED

    def test_process_pool_close_idempotent(self):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        executor = ProcessExecutor(workers=2)
        executor.run_specs([(sorted, ([3, 1],)), (sorted, ([2, 0],))])
        executor.close()
        executor.close()

    def test_timeout_raises(self):
        if not ProcessExecutor.available():
            pytest.skip("fork start method unavailable")
        import time

        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        with pytest.raises(RuntimeError, match="exceeded"):
            executor.run_specs([(time.sleep, (30,)), (time.sleep, (30,))])
        executor.close()
