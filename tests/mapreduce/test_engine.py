"""Tests for the in-process MapReduce engine."""

from __future__ import annotations

import pytest

from repro.mapreduce.engine import (
    JobMetrics,
    MapReduceEngine,
    MapReduceJob,
    hash_partitioner,
)


def word_count_job(with_combiner: bool = False) -> MapReduceJob:
    def mapper(_key, line):
        for word in line.split():
            yield word, 1

    def reducer(word, counts):
        yield word, sum(counts)

    return MapReduceJob(
        name="word-count",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer if with_combiner else None,
    )


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog"),
]
EXPECTED = {"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}


class TestEngine:
    def test_word_count(self):
        output, _ = MapReduceEngine(workers=3).run(word_count_job(), LINES)
        assert dict(output) == EXPECTED

    def test_single_worker_equivalent(self):
        out1, _ = MapReduceEngine(workers=1).run(word_count_job(), LINES)
        out4, _ = MapReduceEngine(workers=4).run(word_count_job(), LINES)
        assert dict(out1) == dict(out4)

    def test_combiner_preserves_result(self):
        plain, _ = MapReduceEngine(workers=2).run(word_count_job(), LINES)
        combined, _ = MapReduceEngine(workers=2).run(word_count_job(True), LINES)
        assert dict(plain) == dict(combined)

    def test_combiner_reduces_shuffle(self):
        _, plain = MapReduceEngine(workers=1).run(word_count_job(), LINES)
        _, combined = MapReduceEngine(workers=1).run(word_count_job(True), LINES)
        assert combined.shuffle_records < plain.shuffle_records

    def test_empty_input(self):
        output, metrics = MapReduceEngine(workers=2).run(word_count_job(), [])
        assert output == []
        assert metrics.map_input_records == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(workers=0)

    def test_more_workers_than_records(self):
        output, _ = MapReduceEngine(workers=16).run(word_count_job(), LINES)
        assert dict(output) == EXPECTED

    def test_run_chain(self):
        def invert_mapper(word, count):
            yield count, word

        def collect_reducer(count, word_list):
            yield count, sorted(word_list)

        chain = [
            word_count_job(),
            MapReduceJob(name="invert", mapper=invert_mapper, reducer=collect_reducer),
        ]
        output, metrics = MapReduceEngine(workers=2).run_chain(chain, LINES)
        result = dict(output)
        assert result[3] == ["the"]
        assert set(result[2]) == {"dog", "quick"}
        assert len(metrics) == 2


class TestMetrics:
    def run_metrics(self, workers: int) -> JobMetrics:
        _, metrics = MapReduceEngine(workers=workers).run(word_count_job(), LINES)
        return metrics

    def test_counters(self):
        metrics = self.run_metrics(2)
        assert metrics.map_input_records == 3
        assert metrics.map_output_records == 10
        assert metrics.shuffle_records == 10
        assert metrics.reduce_groups == 6
        assert metrics.reduce_output_records == 6
        assert metrics.shuffle_bytes > 0

    def test_task_costs_populated(self):
        metrics = self.run_metrics(2)
        assert len(metrics.map_task_costs) == 2
        assert len(metrics.reduce_task_costs) == 2

    def test_critical_path_shrinks_with_workers(self):
        sequential = self.run_metrics(1).critical_path_cost
        parallel = self.run_metrics(3).critical_path_cost
        assert parallel <= sequential

    def test_skew_of_empty_run(self):
        _, metrics = MapReduceEngine(workers=2).run(word_count_job(), [])
        assert metrics.skew == 1.0

    def test_skew_at_least_one(self):
        assert self.run_metrics(3).skew >= 1.0


class TestPartitioner:
    def test_deterministic(self):
        assert hash_partitioner("key", 8) == hash_partitioner("key", 8)

    def test_in_range(self):
        for key in ("a", ("tuple", "key"), 42):
            assert 0 <= hash_partitioner(key, 5) < 5

    def test_partitioning_respected(self):
        # All records of one key land in the same reduce group exactly once.
        def mapper(_k, v):
            yield v % 5, 1

        def reducer(k, values):
            yield k, len(values)

        job = MapReduceJob(name="mod", mapper=mapper, reducer=reducer)
        output, _ = MapReduceEngine(workers=4).run(job, [(i, i) for i in range(100)])
        assert dict(output) == {r: 20 for r in range(5)}
