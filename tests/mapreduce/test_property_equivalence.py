"""Property test: the MapReduce engine equals a sequential reference
implementation for arbitrary jobs, inputs and worker counts."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

records = st.lists(
    st.tuples(st.integers(0, 50), st.integers(-100, 100)), max_size=80
)


def reference(mapper, reducer, data):
    grouped: dict = {}
    for key, value in data:
        for out_key, out_value in mapper(key, value):
            grouped.setdefault(out_key, []).append(out_value)
    output = []
    for key in grouped:
        output.extend(reducer(key, grouped[key]))
    return sorted(output, key=repr)


def sum_mapper(key, value):
    yield key % 7, value


def sum_reducer(key, values):
    yield key, sum(values)


def fanout_mapper(key, value):
    yield key % 3, value
    if value % 2 == 0:
        yield "even", 1


def count_reducer(key, values):
    yield key, len(values)


class TestGenericEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(1, 9))
    def test_sum_job(self, data, workers):
        job = MapReduceJob("sum", sum_mapper, sum_reducer)
        output, _ = MapReduceEngine(workers).run(job, data)
        assert sorted(output, key=repr) == reference(sum_mapper, sum_reducer, data)

    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(1, 9))
    def test_fanout_job(self, data, workers):
        job = MapReduceJob("fanout", fanout_mapper, count_reducer)
        output, _ = MapReduceEngine(workers).run(job, data)
        assert sorted(output, key=repr) == reference(
            fanout_mapper, count_reducer, data
        )

    @settings(max_examples=40, deadline=None)
    @given(records, st.integers(1, 9))
    def test_combiner_transparent_for_associative_reduce(self, data, workers):
        with_combiner = MapReduceJob("sum", sum_mapper, sum_reducer, combiner=sum_reducer)
        without = MapReduceJob("sum", sum_mapper, sum_reducer)
        engine = MapReduceEngine(workers)
        out_with, metrics_with = engine.run(with_combiner, data)
        out_without, metrics_without = engine.run(without, data)
        assert sorted(out_with, key=repr) == sorted(out_without, key=repr)
        assert metrics_with.shuffle_records <= metrics_without.shuffle_records

    @settings(max_examples=30, deadline=None)
    @given(records)
    def test_worker_count_invariance(self, data):
        job = MapReduceJob("sum", sum_mapper, sum_reducer)
        baseline, _ = MapReduceEngine(1).run(job, data)
        for workers in (2, 5, 8):
            output, metrics = MapReduceEngine(workers).run(job, data)
            assert sorted(output, key=repr) == sorted(baseline, key=repr)
            assert metrics.map_input_records == len(data)

    @settings(max_examples=30, deadline=None)
    @given(records, st.integers(1, 9))
    def test_metric_conservation(self, data, workers):
        job = MapReduceJob("sum", sum_mapper, sum_reducer)
        _, metrics = MapReduceEngine(workers).run(job, data)
        # Without a combiner every map output record crosses the shuffle.
        assert metrics.shuffle_records == metrics.map_output_records
        assert len(metrics.reduce_task_costs) == workers
        assert sum(1 for _ in data) == metrics.map_input_records
