"""Scalar-vs-vectorized ``stable_hash_int`` fuzz over the full int64 range.

The partitioning contract: a key routes to the same reducer whether it
is hashed one at a time (``stable_hash_int``, the scalar splitmix64
finalizer) or a million rows at once (``stable_hash_int_array``, the
numpy elementwise version).  Negative int64 values matter — the scalar
path masks to the low 64 bits while numpy wraps two's-complement via
``astype(uint64)`` — so the fuzz covers the entire signed range plus
the adversarial boundary values.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import stable_hash_int

np = pytest.importorskip("numpy")

from repro.mapreduce.records import stable_hash_int_array  # noqa: E402

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

int64_values = st.integers(INT64_MIN, INT64_MAX)
bucket_counts = st.integers(1, 1024)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(int64_values, min_size=1, max_size=64), buckets=bucket_counts)
def test_vectorized_matches_scalar_over_full_int64_range(values, buckets):
    array = np.array(values, dtype=np.int64)
    vectorized = stable_hash_int_array(array, buckets)
    assert vectorized.tolist() == [
        stable_hash_int(value, buckets) for value in values
    ]


@settings(max_examples=100, deadline=None)
@given(value=int64_values, buckets=bucket_counts)
def test_scalar_is_in_range_and_deterministic(value, buckets):
    bucket = stable_hash_int(value, buckets)
    assert 0 <= bucket < buckets
    assert stable_hash_int(value, buckets) == bucket


def test_boundary_values_agree():
    boundary = [
        INT64_MIN,
        INT64_MIN + 1,
        -1,
        0,
        1,
        INT64_MAX - 1,
        INT64_MAX,
        (1 << 32) - 1,
        1 << 32,
        (INT64_MAX >> 1) + 1,
    ]
    array = np.array(boundary, dtype=np.int64)
    for buckets in (1, 2, 3, 7, 16, 255, 1024):
        assert stable_hash_int_array(array, buckets).tolist() == [
            stable_hash_int(value, buckets) for value in boundary
        ]


def test_negative_values_mask_like_two_complement():
    """The scalar path's ``& _U64`` equals numpy's uint64 wraparound."""
    for value in (-1, -12345, INT64_MIN, -(1 << 40)):
        for buckets in (2, 8, 1024):
            assert stable_hash_int(value, buckets) == stable_hash_int(
                value & ((1 << 64) - 1), buckets
            )
            assert (
                stable_hash_int_array(
                    np.array([value], dtype=np.int64), buckets
                )[0]
                == stable_hash_int(value, buckets)
            )
