"""Equivalence tests: MapReduce meta-blocking == sequential meta-blocking."""

from __future__ import annotations

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.parallel_metablocking import (
    parallel_metablocking,
    parallel_node_pruning,
    parallel_pair_statistics,
)
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import CEP, CNP, ReciprocalCNP, ReciprocalWNP, WEP, WNP
from repro.metablocking.weighting import ARCS, CBS, ECBS, JS, make_scheme


@pytest.fixture(scope="module")
def movie_blocks(movies):
    kb_a, kb_b, _ = movies
    return TokenBlocking().build(kb_a, kb_b)


class TestPairStatistics:
    def test_matches_sequential_statistics(self, movie_blocks):
        engine = MapReduceEngine(workers=4)
        stats, _ = parallel_pair_statistics(engine, movie_blocks)
        graph = BlockingGraph(movie_blocks, CBS())
        sequential = graph._pair_statistics()
        assert set(stats) == set(sequential)
        for pair, (common, arcs) in sequential.items():
            assert stats[pair][0] == common
            assert stats[pair][1] == pytest.approx(arcs)

    def test_worker_invariance(self, movie_blocks):
        stats1, _ = parallel_pair_statistics(MapReduceEngine(1), movie_blocks)
        stats8, _ = parallel_pair_statistics(MapReduceEngine(8), movie_blocks)
        assert set(stats1) == set(stats8)
        for pair in stats1:
            assert stats1[pair][0] == stats8[pair][0]
            assert stats1[pair][1] == pytest.approx(stats8[pair][1])


def edges_as_set(edges):
    return {(e.pair, round(e.weight, 9)) for e in edges}


class TestGlobalPruning:
    @pytest.mark.parametrize("scheme_name", ["CBS", "ECBS", "JS", "EJS", "ARCS"])
    def test_wep_equivalence(self, movie_blocks, scheme_name):
        sequential = WEP().prune(BlockingGraph(movie_blocks, make_scheme(scheme_name)))
        parallel, _ = parallel_metablocking(
            MapReduceEngine(4), movie_blocks, make_scheme(scheme_name), WEP()
        )
        assert edges_as_set(parallel) == edges_as_set(sequential)

    def test_cep_equivalence(self, movie_blocks):
        sequential = CEP(k=25).prune(BlockingGraph(movie_blocks, ARCS()))
        parallel, _ = parallel_metablocking(
            MapReduceEngine(4), movie_blocks, ARCS(), CEP(k=25)
        )
        # CEP keeps exactly k edges; tie-handling must agree.
        assert edges_as_set(parallel) == edges_as_set(sequential)

    def test_metrics_returned(self, movie_blocks):
        _, metrics = parallel_metablocking(MapReduceEngine(2), movie_blocks, CBS(), WEP())
        assert len(metrics) == 2
        assert metrics[0].job_name == "pair-statistics"


class TestNodePruning:
    @pytest.mark.parametrize("pruner_factory", [WNP, ReciprocalWNP])
    def test_wnp_equivalence(self, movie_blocks, pruner_factory):
        scheme = ECBS()
        sequential = pruner_factory().prune(BlockingGraph(movie_blocks, ECBS()))
        parallel, _ = parallel_node_pruning(
            MapReduceEngine(4), movie_blocks, scheme, pruner_factory()
        )
        assert edges_as_set(parallel) == edges_as_set(sequential)

    @pytest.mark.parametrize("pruner_factory", [CNP, ReciprocalCNP])
    def test_cnp_equivalence(self, movie_blocks, pruner_factory):
        sequential = pruner_factory(k=2).prune(BlockingGraph(movie_blocks, ARCS()))
        parallel, _ = parallel_node_pruning(
            MapReduceEngine(4), movie_blocks, ARCS(), pruner_factory(k=2)
        )
        assert edges_as_set(parallel) == edges_as_set(sequential)

    def test_dispatch_via_parallel_metablocking(self, movie_blocks):
        parallel, metrics = parallel_metablocking(
            MapReduceEngine(2), movie_blocks, ARCS(), CNP(k=2)
        )
        assert len(metrics) == 3  # stats + node retention + vote merge
        sequential = CNP(k=2).prune(BlockingGraph(movie_blocks, ARCS()))
        assert edges_as_set(parallel) == edges_as_set(sequential)

    def test_non_node_pruner_rejected(self, movie_blocks):
        with pytest.raises(TypeError):
            parallel_node_pruning(MapReduceEngine(2), movie_blocks, CBS(), WEP())

    def test_worker_invariance(self, movie_blocks):
        one, _ = parallel_node_pruning(MapReduceEngine(1), movie_blocks, JS(), WNP())
        eight, _ = parallel_node_pruning(MapReduceEngine(8), movie_blocks, JS(), WNP())
        assert edges_as_set(one) == edges_as_set(eight)
