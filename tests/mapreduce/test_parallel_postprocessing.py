"""Equivalence tests: MapReduce block post-processing == sequential."""

from __future__ import annotations

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.parallel_postprocessing import (
    parallel_block_filtering,
    parallel_block_purging,
)


def assert_same_blocks(sequential, parallel):
    assert set(sequential.keys()) == set(parallel.keys())
    for key in sequential.keys():
        seq_block, par_block = sequential[key], parallel[key]
        assert sorted(seq_block.entities1) == sorted(par_block.entities1)
        if seq_block.is_bipartite:
            assert sorted(seq_block.entities2) == sorted(par_block.entities2 or [])
    assert sequential.distinct_comparisons() == parallel.distinct_comparisons()


@pytest.fixture(scope="module")
def movie_blocks(movies):
    kb_a, kb_b, _ = movies
    return TokenBlocking().build(kb_a, kb_b)


@pytest.fixture(scope="module")
def dirty_blocks(dirty_dataset):
    collection, _ = dirty_dataset
    return TokenBlocking().build(collection)


class TestParallelPurging:
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_adaptive_equivalence_clean_clean(self, movie_blocks, workers):
        sequential = BlockPurging().process(movie_blocks)
        parallel, metrics = parallel_block_purging(
            MapReduceEngine(workers), movie_blocks
        )
        assert_same_blocks(sequential, parallel)
        assert len(metrics) == 2

    def test_adaptive_equivalence_dirty(self, dirty_blocks):
        sequential = BlockPurging().process(dirty_blocks)
        parallel, _ = parallel_block_purging(MapReduceEngine(4), dirty_blocks)
        assert_same_blocks(sequential, parallel)

    def test_explicit_threshold(self, movie_blocks):
        purging = BlockPurging(max_cardinality=5)
        sequential = purging.process(movie_blocks)
        parallel, _ = parallel_block_purging(
            MapReduceEngine(4), movie_blocks, purging
        )
        assert_same_blocks(sequential, parallel)

    def test_empty_collection(self):
        from repro.blocking.block import BlockCollection

        parallel, _ = parallel_block_purging(MapReduceEngine(2), BlockCollection())
        assert len(parallel) == 0


class TestParallelFiltering:
    @pytest.mark.parametrize("ratio", [0.5, 0.8, 1.0])
    def test_equivalence_clean_clean(self, movie_blocks, ratio):
        filtering = BlockFiltering(ratio=ratio)
        sequential = filtering.process(movie_blocks)
        parallel, metrics = parallel_block_filtering(
            MapReduceEngine(4), movie_blocks, filtering
        )
        assert_same_blocks(sequential, parallel)
        assert len(metrics) == 2

    def test_equivalence_dirty(self, dirty_blocks):
        filtering = BlockFiltering(ratio=0.6)
        sequential = filtering.process(dirty_blocks)
        parallel, _ = parallel_block_filtering(
            MapReduceEngine(4), dirty_blocks, filtering
        )
        assert_same_blocks(sequential, parallel)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_invariance(self, movie_blocks, workers):
        baseline, _ = parallel_block_filtering(MapReduceEngine(1), movie_blocks)
        parallel, _ = parallel_block_filtering(MapReduceEngine(workers), movie_blocks)
        assert_same_blocks(baseline, parallel)


class TestFullParallelPipeline:
    def test_purge_then_filter_matches_sequential(self, center_dataset):
        blocks = TokenBlocking().build(center_dataset.kb1, center_dataset.kb2)
        sequential = BlockFiltering().process(BlockPurging().process(blocks))
        engine = MapReduceEngine(4)
        purged, _ = parallel_block_purging(engine, blocks)
        filtered, _ = parallel_block_filtering(engine, purged)
        assert_same_blocks(sequential, filtered)
