"""ProcessExecutor timeout-path coverage: kill, surface, recover.

The per-phase hard timeout exists so a deadlocked worker fails the job
instead of hanging the driver.  These tests pin the whole path on both
dispatch routes (picklable specs on the persistent pool, closure tasks
on fork-inherited pools): the stuck phase raises, the stuck pool is
torn down, and the executor remains usable — the next phase builds a
fresh pool and completes.
"""

from __future__ import annotations

import time

import pytest

from repro.mapreduce import MapReduceEngine, MapReduceJob, ProcessExecutor

pytestmark = pytest.mark.skipif(
    not ProcessExecutor.available(), reason="fork start method unavailable"
)


def _sleep_forever(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


class TestSpecPathTimeout:
    def test_timeout_surfaces_and_pool_recovers(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
            # The stuck pool was terminated by the timeout handler...
            assert executor._pool is None
            # ...and the executor still serves work: a fresh pool is
            # built lazily and the phase completes.
            results = executor.run_specs(
                [(sorted, ([3, 1],)), (sorted, ([2, 0],))]
            )
            assert results == [[1, 3], [0, 2]]
        finally:
            executor.close()

    def test_timeout_does_not_leak_into_later_phases(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError):
                executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
            # Repeated phases after recovery keep working (the killed
            # sleepers must not poison subsequent map_async calls).
            for _ in range(3):
                assert executor.run_specs(
                    [(len, ("ab",)), (len, ("abc",))]
                ) == [2, 3]
        finally:
            executor.close()


class TestClosureTaskPathTimeout:
    def test_closure_tasks_honor_timeout_and_recover(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                executor.run_tasks(
                    [lambda: time.sleep(30), lambda: time.sleep(30)]
                )
            assert executor.run_tasks([lambda: 1 + 1, lambda: 2 + 2]) == [2, 4]
        finally:
            executor.close()


class TestEngineLevelTimeout:
    def test_stuck_map_phase_fails_the_job(self):
        def stuck_mapper(_key, _value):
            time.sleep(30)
            yield _key, _value

        def reducer(key, values):
            yield key, len(values)

        job = MapReduceJob(name="stuck", mapper=stuck_mapper, reducer=reducer)
        engine = MapReduceEngine(
            workers=2, executor=ProcessExecutor(workers=2, task_timeout_s=0.2)
        )
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                engine.run(job, [(i, i) for i in range(4)])
            # The engine (same executor instance) recovers for the next job.
            def mapper(key, value):
                yield value % 2, 1

            ok_job = MapReduceJob(name="ok", mapper=mapper, reducer=reducer)
            output, metrics = engine.run(ok_job, [(i, i) for i in range(8)])
            assert dict(output) == {0: 4, 1: 4}
            assert metrics.executor == "process"
        finally:
            engine.close()
