"""ProcessExecutor failure-path coverage: timeouts and worker deaths.

The per-phase hard timeout exists so a deadlocked worker fails the job
instead of hanging the driver.  These tests pin the whole path on both
dispatch routes (picklable specs on the persistent pool, closure tasks
on fork-inherited pools): the stuck phase raises, the stuck pool is
torn down, and the executor remains usable — the next phase builds a
fresh pool and completes.

A worker *dying* mid-phase (OOM kill, segfault) is a different failure:
``multiprocessing.Pool`` silently respawns the process but the task it
was running is lost, so without intervention the phase hangs until the
timeout.  The executor treats the death as transient — it re-drives the
whole phase on a fresh pool with bounded attempts — and these tests
cover both the recovered case (worker dies once, phase completes on the
re-drive) and the give-up case (workers keep dying, bounded attempts
exhaust into a ``RuntimeError``).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

import numpy as np

from repro.mapreduce import (
    MapReduceEngine,
    MapReduceJob,
    ProcessExecutor,
    SharedBlockStore,
    attach_array,
    leaked_segments,
)

pytestmark = pytest.mark.skipif(
    not ProcessExecutor.available(), reason="fork start method unavailable"
)


def _sleep_forever(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _die_once_then(sentinel: str, value: int) -> int:
    """SIGKILL the calling worker the first time, succeed afterwards.

    The sentinel file is the cross-attempt memory: the first execution
    creates it and kills its own process (a real abrupt death, no
    exception propagation); the re-driven attempt finds it and returns.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _always_die(value: int) -> int:
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - never reached


def _attach_sum_die_once(sentinel: str, ref) -> float:
    """Attach a published array, then die the first time around.

    The shared-memory analogue of :func:`_die_once_then`: proves a
    re-driven phase re-attaches the driver's segments on the fresh pool
    and reads the same bytes.
    """
    total = float(attach_array(ref).sum())
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return total


class TestSpecPathTimeout:
    def test_timeout_surfaces_and_pool_recovers(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
            # The stuck pool was terminated by the timeout handler...
            assert executor._pool is None
            # ...and the executor still serves work: a fresh pool is
            # built lazily and the phase completes.
            results = executor.run_specs(
                [(sorted, ([3, 1],)), (sorted, ([2, 0],))]
            )
            assert results == [[1, 3], [0, 2]]
        finally:
            executor.close()

    def test_timeout_does_not_leak_into_later_phases(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError):
                executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
            # Repeated phases after recovery keep working (the killed
            # sleepers must not poison subsequent map_async calls).
            for _ in range(3):
                assert executor.run_specs(
                    [(len, ("ab",)), (len, ("abc",))]
                ) == [2, 3]
        finally:
            executor.close()


class TestClosureTaskPathTimeout:
    def test_closure_tasks_honor_timeout_and_recover(self):
        executor = ProcessExecutor(workers=2, task_timeout_s=0.2)
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                executor.run_tasks(
                    [lambda: time.sleep(30), lambda: time.sleep(30)]
                )
            assert executor.run_tasks([lambda: 1 + 1, lambda: 2 + 2]) == [2, 4]
        finally:
            executor.close()


class TestWorkerDeathRecovery:
    def test_spec_phase_survives_one_worker_death(self, tmp_path):
        executor = ProcessExecutor(
            workers=2, task_timeout_s=30.0, retry_backoff_s=0.01
        )
        sentinel = str(tmp_path / "died-once")
        try:
            results = executor.run_specs(
                [(_die_once_then, (sentinel, i)) for i in range(4)]
            )
            assert results == [0, 1, 2, 3]
        finally:
            executor.close()

    def test_closure_phase_survives_one_worker_death(self, tmp_path):
        executor = ProcessExecutor(
            workers=2, task_timeout_s=30.0, retry_backoff_s=0.01
        )
        sentinel = str(tmp_path / "died-once")
        try:
            results = executor.run_tasks(
                [lambda i=i: _die_once_then(sentinel, i) for i in range(4)]
            )
            assert results == [0, 1, 2, 3]
        finally:
            executor.close()

    def test_persistent_deaths_exhaust_attempts_and_raise(self):
        executor = ProcessExecutor(
            workers=2, task_timeout_s=30.0,
            retry_attempts=1, retry_backoff_s=0.01,
        )
        try:
            with pytest.raises(RuntimeError, match="lost workers"):
                executor.run_specs(
                    [(_always_die, (i,)) for i in range(4)]
                )
            # The damaged pool was discarded; the executor still works.
            assert executor.run_specs(
                [(len, ("ab",)), (len, ("abc",))]
            ) == [2, 3]
        finally:
            executor.close()

    def test_executor_usable_after_mixed_failures(self, tmp_path):
        executor = ProcessExecutor(
            workers=2, task_timeout_s=0.5,
            retry_attempts=1, retry_backoff_s=0.01,
        )
        sentinel = str(tmp_path / "died-once")
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
            assert executor.run_specs(
                [(_die_once_then, (sentinel, i)) for i in range(3)]
            ) == [0, 1, 2]
        finally:
            executor.close()


class TestSegmentCleanupOnFailure:
    """No failure mode may leave a ``repro_shm_*`` segment behind.

    The lifecycle contract says success, crash and re-drive all converge
    to zero surviving segments: the driver's ``finally`` (here played by
    the engine-adoption safety net) unlinks whatever was published, no
    matter how the phase using it died.
    """

    def test_timeout_mid_phase_leaves_no_segments(self):
        engine = MapReduceEngine(
            workers=2, executor=ProcessExecutor(workers=2, task_timeout_s=0.2)
        )
        store = SharedBlockStore()
        engine.adopt_store(store)
        try:
            store.publish_arrays(np.arange(128, dtype=np.int64))
            with pytest.raises(RuntimeError, match="exceeded"):
                engine.executor.run_specs(
                    [(_sleep_forever, (30.0,)), (_sleep_forever, (30.0,))]
                )
        finally:
            engine.close()
        assert leaked_segments() == []

    def test_worker_death_redrives_attachments_and_cleans_up(self, tmp_path):
        """A killed worker's phase re-drives, re-attaches the same
        segments on the fresh pool, and produces the right answer — and
        nothing survives in ``/dev/shm`` afterwards."""
        engine = MapReduceEngine(
            workers=2,
            executor=ProcessExecutor(
                workers=2, task_timeout_s=30.0, retry_backoff_s=0.01
            ),
        )
        store = SharedBlockStore()
        engine.adopt_store(store)
        sentinel = str(tmp_path / "died-once")
        data = np.arange(100, dtype=np.int64)
        try:
            (ref,) = store.publish_arrays(data)
            results = engine.executor.run_specs(
                [(_attach_sum_die_once, (sentinel, ref)) for _ in range(4)]
            )
            assert results == [float(data.sum())] * 4
        finally:
            engine.close()
        assert leaked_segments() == []

    def test_exhausted_attempts_leave_no_segments(self):
        engine = MapReduceEngine(
            workers=2,
            executor=ProcessExecutor(
                workers=2, task_timeout_s=30.0,
                retry_attempts=1, retry_backoff_s=0.01,
            ),
        )
        store = SharedBlockStore()
        engine.adopt_store(store)
        try:
            store.publish_arrays(np.ones(32))
            with pytest.raises(RuntimeError, match="lost workers"):
                engine.executor.run_specs([(_always_die, (i,)) for i in range(4)])
        finally:
            engine.close()
        assert leaked_segments() == []


class TestEngineLevelTimeout:
    def test_stuck_map_phase_fails_the_job(self):
        def stuck_mapper(_key, _value):
            time.sleep(30)
            yield _key, _value

        def reducer(key, values):
            yield key, len(values)

        job = MapReduceJob(name="stuck", mapper=stuck_mapper, reducer=reducer)
        engine = MapReduceEngine(
            workers=2, executor=ProcessExecutor(workers=2, task_timeout_s=0.2)
        )
        try:
            with pytest.raises(RuntimeError, match="exceeded"):
                engine.run(job, [(i, i) for i in range(4)])
            # The engine (same executor instance) recovers for the next job.
            def mapper(key, value):
                yield value % 2, 1

            ok_job = MapReduceJob(name="ok", mapper=mapper, reducer=reducer)
            output, metrics = engine.run(ok_job, [(i, i) for i in range(8)])
            assert dict(output) == {0: 4, 1: 4}
            assert metrics.executor == "process"
        finally:
            engine.close()
