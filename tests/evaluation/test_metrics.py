"""Tests for PC/PQ/RR and matching quality measures."""

from __future__ import annotations

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import (
    brute_force_comparisons,
    evaluate_blocks,
    evaluate_comparisons,
    evaluate_matches,
)


def gold() -> GoldStandard:
    return GoldStandard.from_pairs([("a", "x"), ("b", "y"), ("c", "z")])


class TestBruteForce:
    def test_dirty(self):
        assert brute_force_comparisons(10) == 45

    def test_clean_clean(self):
        assert brute_force_comparisons(10, 20) == 200


class TestEvaluateBlocks:
    def blocks(self) -> BlockCollection:
        return BlockCollection(
            [
                Block("k1", ["a"], ["x"]),          # covers (a,x)
                Block("k2", ["b"], ["y", "q"]),     # covers (b,y) + 1 miss
                Block("k3", ["c"], ["w"]),          # miss
            ]
        )

    def test_pairs_completeness(self):
        quality = evaluate_blocks(self.blocks(), gold(), 10, 10)
        assert quality.pairs_completeness == pytest.approx(2 / 3)
        assert quality.covered_matches == 2

    def test_pairs_quality(self):
        quality = evaluate_blocks(self.blocks(), gold(), 10, 10)
        # 4 distinct comparisons, 2 are matches.
        assert quality.pairs_quality == pytest.approx(0.5)

    def test_reduction_ratio(self):
        quality = evaluate_blocks(self.blocks(), gold(), 10, 10)
        assert quality.reduction_ratio == pytest.approx(1 - 4 / 100)

    def test_counts(self):
        quality = evaluate_blocks(self.blocks(), gold(), 10, 10)
        assert quality.blocks == 3
        assert quality.distinct_comparisons == 4
        assert quality.total_comparisons == 4

    def test_as_row_formatting(self):
        row = evaluate_blocks(self.blocks(), gold(), 10, 10).as_row()
        assert row["PC"] == "0.667"
        assert "comparisons" in row

    def test_empty_blocks(self):
        quality = evaluate_blocks(BlockCollection(), gold(), 10, 10)
        assert quality.pairs_completeness == 0.0
        assert quality.pairs_quality == 0.0
        assert quality.reduction_ratio == 1.0


class TestEvaluateComparisons:
    def test_arbitrary_comparison_set(self):
        comparisons = {("a", "x"), ("q", "r")}
        quality = evaluate_comparisons(comparisons, gold(), 5, 5)
        assert quality.pairs_completeness == pytest.approx(1 / 3)
        assert quality.pairs_quality == pytest.approx(0.5)

    def test_empty_gold(self):
        quality = evaluate_comparisons({("a", "b")}, GoldStandard(), 5, 5)
        assert quality.pairs_completeness == 0.0


class TestEvaluateMatches:
    def test_perfect(self):
        quality = evaluate_matches(set(gold().matches), gold())
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_partial(self):
        predicted = {("a", "x"), ("wrong", "zz")}
        quality = evaluate_matches(predicted, gold())
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == pytest.approx(1 / 3)
        expected_f1 = 2 * 0.5 * (1 / 3) / (0.5 + 1 / 3)
        assert quality.f1 == pytest.approx(expected_f1)

    def test_empty_prediction(self):
        quality = evaluate_matches(set(), gold())
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_as_row(self):
        row = evaluate_matches(set(gold().matches), gold()).as_row()
        assert row == {"precision": "1.000", "recall": "1.000", "F1": "1.000"}
