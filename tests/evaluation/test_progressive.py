"""Tests for progressive curves and AUC."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.progressive import ProgressiveCurve, area_under_curve


class TestCurveRecording:
    def test_record_and_length(self):
        curve = ProgressiveCurve("s")
        curve.record(0, recall=0.0)
        curve.record(10, recall=0.5)
        assert len(curve) == 2

    def test_non_decreasing_comparisons_enforced(self):
        curve = ProgressiveCurve()
        curve.record(10, recall=0.1)
        with pytest.raises(ValueError):
            curve.record(5, recall=0.2)

    def test_missing_series_carries_forward(self):
        curve = ProgressiveCurve()
        curve.record(0, recall=0.1, benefit=1.0)
        curve.record(10, recall=0.2)  # benefit carried forward
        assert curve.series["benefit"] == [1.0, 1.0]

    def test_new_series_backfilled_with_zero(self):
        curve = ProgressiveCurve()
        curve.record(0, recall=0.1)
        curve.record(10, recall=0.2, benefit=3.0)
        assert curve.series["benefit"] == [0.0, 3.0]


class TestValueAt:
    def curve(self) -> ProgressiveCurve:
        curve = ProgressiveCurve()
        curve.record(0, recall=0.0)
        curve.record(10, recall=0.4)
        curve.record(20, recall=0.8)
        return curve

    def test_step_interpolation(self):
        curve = self.curve()
        assert curve.value_at(0) == 0.0
        assert curve.value_at(9) == 0.0
        assert curve.value_at(10) == 0.4
        assert curve.value_at(15) == 0.4
        assert curve.value_at(100) == 0.8

    def test_before_first_checkpoint(self):
        curve = ProgressiveCurve()
        curve.record(10, recall=0.5)
        assert curve.value_at(5) == 0.0

    def test_unknown_series(self):
        assert self.curve().value_at(10, "nope") == 0.0

    def test_final(self):
        assert self.curve().final() == 0.8
        assert ProgressiveCurve().final() == 0.0


class TestAuc:
    def test_perfect_curve(self):
        # Recall 1.0 from the start.
        assert area_under_curve([0, 10], [1.0, 1.0]) == pytest.approx(1.0)

    def test_late_curve_scores_lower(self):
        early = area_under_curve([0, 1, 10], [0.0, 1.0, 1.0])
        late = area_under_curve([0, 9, 10], [0.0, 1.0, 1.0])
        assert early > late

    def test_explicit_budget_normalization(self):
        auc = area_under_curve([0, 5], [0.0, 1.0], max_x=10)
        assert auc == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            area_under_curve([0, 1], [0.0])

    def test_empty(self):
        assert area_under_curve([], []) == 0.0

    def test_curve_auc_method(self):
        curve = ProgressiveCurve()
        curve.record(0, recall=0.0)
        curve.record(10, recall=1.0)
        curve.record(20, recall=1.0)
        assert curve.auc() == pytest.approx(0.5)

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.floats(0, 1)),
            min_size=1,
            max_size=20,
        )
    )
    def test_auc_bounded(self, points):
        points.sort()
        xs = [p[0] for p in points]
        ys = sorted(p[1] for p in points)  # non-decreasing recall
        auc = area_under_curve(xs, ys)
        assert 0.0 <= auc <= 1.0 + 1e-9


class TestDownsample:
    def test_keeps_endpoints(self):
        curve = ProgressiveCurve()
        for i in range(100):
            curve.record(i, recall=i / 100)
        thinned = curve.downsample(10)
        assert thinned.comparisons[0] == 0
        assert thinned.comparisons[-1] == 99
        assert len(thinned) <= 11

    def test_short_curve_untouched(self):
        curve = ProgressiveCurve()
        curve.record(0, recall=0.0)
        assert curve.downsample(10) is curve
