"""Tests for the ASCII progress chart."""

from __future__ import annotations

from repro.evaluation.progressive import ProgressiveCurve
from repro.evaluation.reporting import format_progress_chart


def make_curve(label: str, speed: float) -> ProgressiveCurve:
    curve = ProgressiveCurve(label)
    for i in range(11):
        curve.record(i * 10, recall=min(1.0, i * speed))
    return curve


class TestChart:
    def test_contains_axes_and_legend(self):
        chart = format_progress_chart([make_curve("fast", 0.2)], title="T")
        assert chart.startswith("T")
        assert "1.0" in chart and "0.0" in chart
        assert "* fast" in chart

    def test_multiple_curves_get_distinct_glyphs(self):
        chart = format_progress_chart(
            [make_curve("fast", 0.2), make_curve("slow", 0.05)]
        )
        assert "* fast" in chart
        assert "o slow" in chart
        body = chart.split("└")[0]
        assert "*" in body and "o" in body

    def test_faster_curve_rises_earlier(self):
        chart = format_progress_chart(
            [make_curve("fast", 0.5), make_curve("slow", 0.02)], width=30, height=8
        )
        lines = chart.splitlines()
        top_line = next(line for line in lines if line.startswith("1.0"))
        bottom_half = lines[5]
        # The fast curve reaches the top row; the slow one lingers low.
        assert "*" in top_line

    def test_empty_input(self):
        assert format_progress_chart([], title="nothing") == "nothing"

    def test_curve_without_points(self):
        assert format_progress_chart([ProgressiveCurve("empty")], title="x") == "x"

    def test_dimensions_respected(self):
        chart = format_progress_chart([make_curve("a", 0.2)], width=25, height=6)
        body_lines = [l for l in chart.splitlines() if "┤" in l or "│" in l]
        assert len(body_lines) == 6
