"""Tests for B-cubed and closest-cluster evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.clusters import bcubed, closest_cluster_f1


def fs(*items):
    return frozenset(items)


class TestBCubed:
    def test_perfect_clustering(self):
        clusters = [fs("a", "b"), fs("x", "y", "z")]
        score = bcubed(clusters, clusters)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_over_merging_hurts_precision(self):
        gold = [fs("a", "b"), fs("x", "y")]
        predicted = [fs("a", "b", "x", "y")]
        score = bcubed(predicted, gold)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == 1.0

    def test_over_splitting_hurts_recall(self):
        gold = [fs("a", "b", "x", "y")]
        predicted = [fs("a", "b"), fs("x", "y")]
        score = bcubed(predicted, gold)
        assert score.precision == 1.0
        assert score.recall == pytest.approx(0.5)

    def test_missing_items_treated_as_singletons(self):
        gold = [fs("a", "b")]
        predicted = []  # resolver found nothing
        score = bcubed(predicted, gold)
        assert score.precision == 1.0  # singleton predictions are "pure"
        assert score.recall == pytest.approx(0.5)

    def test_universe_extends_average(self):
        gold = [fs("a", "b")]
        predicted = [fs("a", "b")]
        with_extra = bcubed(predicted, gold, universe=["a", "b", "solo"])
        assert with_extra.precision == 1.0
        assert with_extra.recall == 1.0  # solo is a singleton in both

    def test_empty_everything(self):
        score = bcubed([], [])
        assert score.precision == 0.0
        assert score.f1 == 0.0

    def test_known_textbook_value(self):
        # Amigó et al. style check: one wrong assignment in a 3-cluster.
        gold = [fs("a", "b", "c"), fs("d")]
        predicted = [fs("a", "b", "d"), fs("c")]
        score = bcubed(predicted, gold)
        # precision: a=2/3, b=2/3, d=1/3, c=1 -> (2/3+2/3+1/3+1)/4 = 2/3
        assert score.precision == pytest.approx(2 / 3)
        # recall: a=2/3, b=2/3, c=1/3, d=1 -> 2/3
        assert score.recall == pytest.approx(2 / 3)

    @given(
        st.lists(
            st.lists(st.integers(0, 30), min_size=1, max_size=5),
            max_size=8,
        )
    )
    def test_self_score_is_perfect(self, raw_clusters):
        # Deduplicate membership to make a valid partition.
        seen: set[int] = set()
        clusters = []
        for raw in raw_clusters:
            members = frozenset(str(i) for i in raw if i not in seen)
            seen.update(int(m) for m in members)
            if members:
                clusters.append(members)
        score = bcubed(clusters, clusters)
        if clusters:
            assert score.precision == pytest.approx(1.0)
            assert score.recall == pytest.approx(1.0)

    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=30),
        st.lists(st.integers(0, 15), min_size=1, max_size=30),
    )
    def test_bounds(self, a_labels, b_labels):
        size = min(len(a_labels), len(b_labels))

        def partition(labels):
            groups: dict[int, set[str]] = {}
            for item, label in enumerate(labels[:size]):
                groups.setdefault(label, set()).add(str(item))
            return [frozenset(g) for g in groups.values()]

        score = bcubed(partition(a_labels), partition(b_labels))
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f1 <= 1.0


class TestClosestClusterF1:
    def test_perfect(self):
        clusters = [fs("a", "b"), fs("x", "y")]
        assert closest_cluster_f1(clusters, clusters) == 1.0

    def test_empty_gold(self):
        assert closest_cluster_f1([fs("a", "b")], []) == 0.0

    def test_no_predictions(self):
        assert closest_cluster_f1([], [fs("a", "b")]) == 0.0

    def test_partial_overlap(self):
        gold = [fs("a", "b", "c")]
        predicted = [fs("a", "b")]
        # precision 1, recall 2/3 -> F1 = 0.8
        assert closest_cluster_f1(predicted, gold) == pytest.approx(0.8)

    def test_picks_best_candidate(self):
        gold = [fs("a", "b", "c")]
        predicted = [fs("a"), fs("a2", "zz"), fs("a", "b", "c", "d")]
        # best is the 3/4-overlap cluster: p=3/4, r=1 -> 6/7
        assert closest_cluster_f1(predicted, gold) == pytest.approx(6 / 7)
