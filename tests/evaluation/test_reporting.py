"""Tests for ASCII reporting."""

from __future__ import annotations

from repro.evaluation.progressive import ProgressiveCurve
from repro.evaluation.reporting import format_series, format_sparkline, format_table


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(
            [
                {"method": "token", "PC": "0.95"},
                {"method": "attribute-clustering", "PC": "0.90"},
            ]
        )
        lines = table.splitlines()
        assert lines[0].startswith("method")
        assert len(lines) == 4  # header, rule, two rows

    def test_title_included(self):
        table = format_table([{"a": "1"}], title="E2")
        assert table.splitlines()[0] == "E2"

    def test_union_of_columns(self):
        table = format_table([{"a": "1"}, {"b": "2"}])
        header = table.splitlines()[0]
        assert "a" in header and "b" in header

    def test_first_column_forced(self):
        table = format_table([{"x": "1", "key": "k"}], first_column="key")
        assert table.splitlines()[0].startswith("key")

    def test_empty_rows(self):
        table = format_table([], title="empty")
        assert "empty" in table


class TestFormatSeries:
    def make_curve(self, label: str, speed: float) -> ProgressiveCurve:
        curve = ProgressiveCurve(label)
        for i in range(11):
            curve.record(i * 10, recall=min(1.0, i * speed))
        return curve

    def test_series_side_by_side(self):
        fast = self.make_curve("fast", 0.2)
        slow = self.make_curve("slow", 0.05)
        text = format_series([fast, slow], points=5)
        header = text.splitlines()[1]
        assert "fast" in header and "slow" in header and "budget" in header

    def test_values_reflect_curves(self):
        fast = self.make_curve("fast", 0.2)
        text = format_series([fast], points=2)
        assert "1.000" in text

    def test_empty_curve_list(self):
        assert format_series([], title="nothing") == "nothing"


class TestSparkline:
    def test_empty(self):
        assert format_sparkline([]) == ""

    def test_monotone_shape(self):
        line = format_sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] <= line[-1]

    def test_width_cap(self):
        line = format_sparkline([float(i) for i in range(200)], width=40)
        assert len(line) == 40
