"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs cannot build; this shim lets ``pip install -e .``
take the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
