"""Progressive relational ER, after Altowim, Kalashnikov & Mehrotra [1].

The PVLDB 2014 approach the poster contrasts with: resolution proceeds in
**windows** over data partitions (here: blocks), and an adaptive
cost/benefit analysis decides which partition to spend the next window of
comparisons on.  Benefit is the *quantity of resolved pairs*; the benefit
of a partition is estimated from the duplicate density observed so far in
that partition (with a Bayesian-style prior before any observation),
updated after every window.  The loop:

1. score every block by expected matches per comparison;
2. pick the best block, execute up to ``window_size`` of its remaining
   comparisons;
3. update the block's density estimate with the observed outcomes;
4. repeat until the budget is consumed or no comparisons remain.

Differences from the original are confined to the substrate: partitions
are token blocks rather than relational co-occurrence partitions, and the
influence graph between partitions is approximated by shared entities
(a match found in one block raises the prior of other blocks containing
either matched description — the original's inter-partition influence).
"""

from __future__ import annotations

from repro.blocking.block import BlockCollection
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveResult, ResolutionContext
from repro.datasets.gold import GoldStandard
from repro.evaluation.progressive import ProgressiveCurve
from repro.matching.matcher import Matcher
from repro.model.collection import EntityCollection
from repro.utils.heap import AddressableMaxHeap


class AltowimProgressiveER:
    """Windowed, density-driven progressive resolver.

    Args:
        window_size: comparisons granted to the chosen block per round.
        prior_matches / prior_comparisons: Beta-like prior of every
            block's duplicate density (expected matches per comparison
            before observation).
        influence_boost: added to the density numerator of blocks sharing
            an entity with a confirmed match (inter-partition influence).
    """

    def __init__(
        self,
        window_size: int = 20,
        prior_matches: float = 0.5,
        prior_comparisons: float = 5.0,
        influence_boost: float = 0.25,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if prior_comparisons <= 0:
            raise ValueError("prior_comparisons must be positive")
        self.window_size = window_size
        self.prior_matches = prior_matches
        self.prior_comparisons = prior_comparisons
        self.influence_boost = influence_boost

    def run(
        self,
        blocks: BlockCollection,
        matcher: Matcher,
        collections: list[EntityCollection],
        budget: CostBudget | None = None,
        gold: GoldStandard | None = None,
        checkpoint_every: int = 10,
    ) -> ProgressiveResult:
        """Resolve within *budget*, window by window.

        *gold* instruments the recall curve only.
        """
        context = ResolutionContext(collections)
        matcher.bind(context)
        budget = (budget or CostBudget()).copy()
        curve = ProgressiveCurve(label="altowim")
        result = ProgressiveResult(
            match_graph=context.match_graph, curve=curve, budget=budget
        )
        gold_matches = len(gold.matches) if gold is not None else 0
        found_gold = 0

        # Per-block execution state: a pair iterator plus density counters.
        iterators = {block.key: block.comparisons() for block in blocks}
        observed_matches: dict[str, float] = {block.key: 0.0 for block in blocks}
        observed_comparisons: dict[str, float] = {block.key: 0.0 for block in blocks}
        heap: AddressableMaxHeap[str] = AddressableMaxHeap()
        for block in blocks:
            heap.push(block.key, self._density(block.key, observed_matches, observed_comparisons))
        block_index = blocks.entity_index()

        def checkpoint() -> None:
            values = {"benefit": result.benefit_total}
            if gold is not None:
                values["recall"] = found_gold / gold_matches if gold_matches else 0.0
            curve.record(budget.comparisons_executed, **values)

        checkpoint()
        while heap and not budget.exhausted:
            key, _score = heap.pop()
            iterator = iterators[key]
            executed_in_window = 0
            depleted = False
            while executed_in_window < self.window_size and not budget.exhausted:
                pair = next(iterator, None)
                if pair is None:
                    depleted = True
                    break
                if pair in context.match_graph:
                    result.skipped_decided += 1
                    continue
                decision = matcher.decide(pair[0], pair[1])
                budget.charge_comparison()
                executed_in_window += 1
                observed_comparisons[key] += 1
                context.match_graph.record(decision)
                if decision.is_match:
                    observed_matches[key] += 1
                    result.benefit_total += 1.0
                    if gold is not None and pair in gold.matches:
                        found_gold += 1
                    self._propagate_influence(
                        pair, key, block_index, observed_matches, heap,
                        observed_comparisons,
                    )
                if budget.comparisons_executed % checkpoint_every == 0:
                    checkpoint()
            if not depleted:
                heap.push_or_update(
                    key, self._density(key, observed_matches, observed_comparisons)
                )
        checkpoint()
        return result

    # -- internals ------------------------------------------------------------

    def _density(
        self,
        key: str,
        matches: dict[str, float],
        comparisons: dict[str, float],
    ) -> float:
        return (matches[key] + self.prior_matches) / (
            comparisons[key] + self.prior_comparisons
        )

    def _propagate_influence(
        self,
        pair: tuple[str, str],
        current_key: str,
        block_index: dict[str, list[str]],
        matches: dict[str, float],
        heap: AddressableMaxHeap[str],
        comparisons: dict[str, float],
    ) -> None:
        """Raise the density prior of blocks sharing the matched entities."""
        influenced: set[str] = set()
        for uri in pair:
            influenced.update(block_index.get(uri, ()))
        influenced.discard(current_key)
        for key in influenced:
            if key in matches:
                matches[key] += self.influence_boost
                if key in heap:
                    heap.update(key, self._density(key, matches, comparisons))
