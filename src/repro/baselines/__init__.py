"""Baseline resolvers MinoanER is compared against (E5, E6).

* :mod:`repro.baselines.ordered` — the shared budgeted executor plus the
  random-order and oracle-order baselines and the non-progressive batch
  resolver;
* :mod:`repro.baselines.altowim` — a re-implementation of the progressive
  relational ER approach of Altowim, Kalashnikov & Mehrotra (PVLDB 2014)
  [1], the work the poster explicitly contrasts its quality-aware benefit
  with.
"""

from repro.baselines.ordered import (
    run_ordered,
    random_order_baseline,
    oracle_order_baseline,
    batch_baseline,
)
from repro.baselines.altowim import AltowimProgressiveER

__all__ = [
    "run_ordered",
    "random_order_baseline",
    "oracle_order_baseline",
    "batch_baseline",
    "AltowimProgressiveER",
]
