"""Order-based baselines: a budgeted executor over a fixed comparison order.

The simplest progressive strategies differ only in how they order the
candidate comparisons before consuming the budget:

* **random order** — the naive pay-as-you-go lower bound;
* **oracle order** — all gold matches first: the (unreachable) upper
  bound any scheduler is squeezed against;
* **batch order** — blocking-native order (no scheduling at all): what a
  non-progressive resolver yields if interrupted at the budget.
"""

from __future__ import annotations

from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveResult, ResolutionContext
from repro.datasets.gold import GoldStandard
from repro.evaluation.progressive import ProgressiveCurve
from repro.matching.matcher import Matcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.utils.rng import deterministic_rng


def run_ordered(
    pairs: list[tuple[str, str]],
    matcher: Matcher,
    collections: list[EntityCollection],
    budget: CostBudget | None = None,
    gold: GoldStandard | None = None,
    label: str = "ordered",
    checkpoint_every: int = 10,
) -> ProgressiveResult:
    """Execute *pairs* in the given order until the budget is consumed.

    Duplicated pairs are executed once; *gold* instruments the recall
    curve only.
    """
    context = ResolutionContext(collections)
    matcher.bind(context)
    budget = (budget or CostBudget()).copy()
    # Pre-score only what the budget can reach: a tightly budgeted run
    # must not pay for vectorized scoring of comparisons it will never
    # execute (pairs past the prefix simply fall back to scalar scoring).
    if budget.max_cost is None:
        matcher.prime(pairs)
    else:
        matcher.prime(pairs[: int(budget.remaining) + 1])
    curve = ProgressiveCurve(label=label)
    result = ProgressiveResult(
        match_graph=context.match_graph, curve=curve, budget=budget
    )
    gold_matches = len(gold.matches) if gold is not None else 0
    found_gold = 0

    def checkpoint() -> None:
        values = {"benefit": result.benefit_total}
        if gold is not None:
            values["recall"] = found_gold / gold_matches if gold_matches else 0.0
        curve.record(budget.comparisons_executed, **values)

    checkpoint()
    for pair in pairs:
        if budget.exhausted:
            break
        if pair in context.match_graph:
            result.skipped_decided += 1
            continue
        decision = matcher.decide(pair[0], pair[1])
        budget.charge_comparison()
        context.match_graph.record(decision)
        if decision.is_match:
            result.benefit_total += 1.0
            if gold is not None and pair in gold.matches:
                found_gold += 1
        if budget.comparisons_executed % checkpoint_every == 0:
            checkpoint()
    checkpoint()
    return result


def random_order_baseline(
    edges: list[WeightedEdge],
    matcher: Matcher,
    collections: list[EntityCollection],
    budget: CostBudget | None = None,
    gold: GoldStandard | None = None,
    seed: int = 7,
    checkpoint_every: int = 10,
) -> ProgressiveResult:
    """Comparisons in seeded-random order."""
    pairs = [edge.pair for edge in sorted(edges, key=lambda e: e.pair)]
    deterministic_rng(seed, "random-order").shuffle(pairs)
    return run_ordered(
        pairs, matcher, collections, budget, gold,
        label="random", checkpoint_every=checkpoint_every,
    )


def oracle_order_baseline(
    edges: list[WeightedEdge],
    matcher: Matcher,
    collections: list[EntityCollection],
    gold: GoldStandard,
    budget: CostBudget | None = None,
    checkpoint_every: int = 10,
) -> ProgressiveResult:
    """Gold matches first — the upper bound on progressive recall.

    Only the *ordering* consults the gold standard; decisions still come
    from the matcher.
    """
    matches = [e.pair for e in edges if e.pair in gold.matches]
    rest = [e.pair for e in edges if e.pair not in gold.matches]
    matches.sort()
    rest.sort()
    return run_ordered(
        matches + rest, matcher, collections, budget, gold,
        label="oracle", checkpoint_every=checkpoint_every,
    )


def batch_baseline(
    edges: list[WeightedEdge],
    matcher: Matcher,
    collections: list[EntityCollection],
    budget: CostBudget | None = None,
    gold: GoldStandard | None = None,
    checkpoint_every: int = 10,
) -> ProgressiveResult:
    """Blocking-native pair order (sorted pairs): no scheduling signal."""
    pairs = sorted(edge.pair for edge in edges)
    return run_ordered(
        pairs, matcher, collections, budget, gold,
        label="batch", checkpoint_every=checkpoint_every,
    )
