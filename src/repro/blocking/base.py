"""The blocker interface.

Every blocking method maps one collection (dirty ER) or two collections
(clean-clean ER) to a :class:`~repro.blocking.block.BlockCollection`.
Methods differ only in how they derive blocking keys per description, so
the base class implements the grouping loop and subclasses supply
:meth:`Blocker.keys_for`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.blocking.block import Block, BlockCollection
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner


class Blocker(ABC):
    """Base class for key-based blocking methods."""

    #: human-readable name used in experiment tables
    name = "blocker"

    @abstractmethod
    def keys_for(self, description: EntityDescription) -> set[str]:
        """The blocking keys of one description."""

    def build(
        self,
        collection1: EntityCollection,
        collection2: EntityCollection | None = None,
        drop_singletons: bool = True,
    ) -> BlockCollection:
        """Group descriptions by shared keys.

        Args:
            collection1: first (or only) KB.
            collection2: second KB for clean-clean ER; when given, blocks
                are bipartite and only cross-KB comparisons are implied.
            drop_singletons: discard blocks that imply no comparison
                (single-member blocks, or one-sided bipartite blocks).

        Returns:
            The block collection, with deterministic block order (sorted
            keys) for reproducible downstream processing.
        """
        groups1: dict[str, list[str]] = {}
        for description in collection1:
            for key in self.keys_for(description):
                groups1.setdefault(key, []).append(description.uri)

        # Members are in hand while blocks are built, so entity ids are
        # interned here (in first-placement order, matching what the lazy
        # view would compute) and primed onto the collection — the cold
        # meta-blocking path no longer re-derives them from finished
        # blocks.
        interner = EntityInterner()
        intern = interner.intern
        id_blocks: list[tuple[list[int], list[int] | None, int]] = []

        blocks = BlockCollection(name=f"{self.name}({collection1.name})")
        if collection2 is None:
            for key in sorted(groups1):
                members = groups1[key]
                if drop_singletons and len(members) < 2:
                    continue
                block = Block(key, members)
                blocks.add(block)
                id_blocks.append(
                    (list(map(intern, block.entities1)), None, block.cardinality())
                )
            blocks.prime_id_views(interner, id_blocks)
            return blocks

        groups2: dict[str, list[str]] = {}
        for description in collection2:
            for key in self.keys_for(description):
                groups2.setdefault(key, []).append(description.uri)

        blocks.name = f"{self.name}({collection1.name},{collection2.name})"
        for key in sorted(set(groups1) | set(groups2)):
            side1 = groups1.get(key, [])
            side2 = groups2.get(key, [])
            if drop_singletons and (not side1 or not side2):
                continue
            block = Block(key, side1, side2)
            blocks.add(block)
            assert block.entities2 is not None
            id_blocks.append(
                (
                    list(map(intern, block.entities1)),
                    list(map(intern, block.entities2)),
                    block.cardinality(),
                )
            )
        blocks.prime_id_views(interner, id_blocks)
        return blocks
