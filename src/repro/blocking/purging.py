"""Block purging: discard oversized, low-signal blocks.

Token blocking produces a heavy-tailed block-size distribution: a few stop
-word-like tokens generate blocks containing thousands of descriptions,
contributing the bulk of the comparison cost while carrying almost no
matching signal (co-occurring in a huge block says little).  Block purging
(Papadakis et al.) removes those blocks.

Two policies are provided:

* an explicit ``max_cardinality`` cutoff, and
* the **adaptive** policy from the literature: scan blocks from largest to
  smallest cardinality and purge while the marginal comparisons-per-
  assignment ratio of the remaining collection keeps improving — i.e. find
  the smallest cardinality threshold such that keeping larger blocks would
  grow comparisons disproportionately to the block assignments (matching
  evidence) they add.
"""

from __future__ import annotations

from repro.blocking.block import BlockCollection


def cardinality_histogram(blocks: BlockCollection) -> dict[int, tuple[int, int]]:
    """Per-cardinality-level ``(comparisons, assignments)`` totals.

    The block-size distribution the adaptive purging policy consumes:
    level ``c`` maps to the summed comparisons and block assignments of
    every block whose cardinality is exactly ``c``.  The streaming
    processed view maintains the same histogram incrementally (one
    level update per touched key) and feeds it to
    :func:`threshold_from_histogram`, so batch and streaming purge from
    the identical distribution.
    """
    by_cardinality: dict[int, tuple[int, int]] = {}
    for block in blocks:
        cardinality = block.cardinality()
        comps, assigns = by_cardinality.get(cardinality, (0, 0))
        by_cardinality[cardinality] = (
            comps + cardinality,
            assigns + len(block),
        )
    return by_cardinality


def threshold_from_histogram(
    histogram: dict[int, tuple[int, int]], smoothing: float
) -> int:
    """The adaptive cardinality cutoff for a block-size *histogram*.

    Accumulates comparisons (CC) and assignments (BC) over the sorted
    levels, then scans from the **largest** level downwards, purging a
    level while its inclusion inflates the collection-wide CC/BC ratio
    by more than *smoothing* relative to the collection without it.
    Returns the largest surviving level (1 for an empty histogram).
    """
    if not histogram:
        return 1
    levels = sorted(histogram)
    cum_comparisons = [0] * len(levels)
    cum_assignments = [0] * len(levels)
    running_comps = 0
    running_assigns = 0
    for i, level in enumerate(levels):
        comps, assigns = histogram[level]
        running_comps += comps
        running_assigns += assigns
        cum_comparisons[i] = running_comps
        cum_assignments[i] = running_assigns

    cut = len(levels) - 1
    while cut > 0:
        ratio_with = cum_comparisons[cut] / max(cum_assignments[cut], 1)
        ratio_without = cum_comparisons[cut - 1] / max(cum_assignments[cut - 1], 1)
        if ratio_with <= smoothing * ratio_without:
            break
        cut -= 1
    return levels[cut]


class BlockPurging:
    """Remove blocks whose comparison cardinality exceeds a threshold.

    Args:
        max_cardinality: explicit cutoff; if None, the adaptive policy
            picks the cutoff from the block-size distribution.
        smoothing: adaptive policy's tolerance factor — the largest
            cardinality level survives only if including it inflates the
            collection's comparisons-per-assignment ratio by at most this
            factor (1.1 keeps PC ≈ 1.0 while purging stop-token blocks on
            every corpus in the evaluation; E3 sweeps it).
    """

    name = "block-purging"

    def __init__(self, max_cardinality: int | None = None, smoothing: float = 1.1) -> None:
        if max_cardinality is not None and max_cardinality < 1:
            raise ValueError("max_cardinality must be >= 1")
        if smoothing < 1.0:
            raise ValueError("smoothing must be >= 1.0")
        self.max_cardinality = max_cardinality
        self.smoothing = smoothing

    def signature(self) -> tuple:
        """Hashable identity of this operator's parameterization.

        Snapshot caches key processed results by operator signature, so
        two equal-parameter instances share a cache entry while a
        subclass (different qualname) never collides with the base.
        """
        return (type(self).__qualname__, self.max_cardinality, self.smoothing)

    def process(self, blocks: BlockCollection) -> BlockCollection:
        """Return a new collection without the purged blocks."""
        threshold = (
            self.max_cardinality
            if self.max_cardinality is not None
            else self.adaptive_threshold(blocks)
        )
        kept = [block for block in blocks if block.cardinality() <= threshold]
        return BlockCollection(kept, name=f"purged({blocks.name})")

    def adaptive_threshold(self, blocks: BlockCollection) -> int:
        """Compute the adaptive cardinality cutoff for *blocks*.

        Group blocks by comparison cardinality and accumulate, per level,
        the comparisons (CC) and block assignments (BC) of all blocks at or
        below it.  Scanning from the **largest** level downwards, a level is
        purged while its inclusion inflates the collection-wide CC/BC ratio
        by more than the ``smoothing`` factor relative to the collection
        without it — the signature of stop-token blocks, which contribute
        quadratically many comparisons but only linearly many assignments
        (matching evidence).  The threshold is the largest surviving level.

        Delegates to the module-level :func:`cardinality_histogram` /
        :func:`threshold_from_histogram` pair so incremental maintainers
        can reuse the exact policy over their own live histograms.
        """
        return threshold_from_histogram(
            cardinality_histogram(blocks), self.smoothing
        )
