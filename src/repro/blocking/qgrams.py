"""Q-grams blocking: sub-token keys robust to typos.

Token blocking misses matching descriptions whose shared evidence is
corrupted by misspellings (``kubrick`` vs ``kubrik`` share no token).
Q-grams blocking (Gravano et al.; a standard member of the blocking
tool-box the meta-blocking literature evaluates) keys each token's
character q-grams instead, so corrupted tokens still co-occur in the
blocks of their intact q-grams.  The price is a larger, noisier block
collection — which is precisely what block purging/filtering and
meta-blocking exist to clean up.
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer


def qgrams(token: str, q: int) -> set[str]:
    """The character q-grams of *token* (the token itself when shorter).

    >>> sorted(qgrams("abcd", 3))
    ['abc', 'bcd']
    """
    if len(token) <= q:
        return {token}
    return {token[i : i + q] for i in range(len(token) - q + 1)}


class QGramsBlocking(Blocker):
    """Blocking keys = q-grams of the description's tokens.

    Args:
        q: gram length (3 is the literature default).
        tokenizer: token extractor shared with the rest of the pipeline.
    """

    name = "qgrams-blocking"

    def __init__(self, q: int = 3, tokenizer: Tokenizer | None = None) -> None:
        if q < 2:
            raise ValueError("q must be >= 2")
        self.q = q
        self.tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
        self.name = f"{self.q}grams-blocking"

    def keys_for(self, description: EntityDescription) -> set[str]:
        keys: set[str] = set()
        for token in self.tokenizer.token_set(description):
            keys.update(qgrams(token, self.q))
        return keys
