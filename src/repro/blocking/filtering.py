"""Block filtering: keep each entity only in its most selective blocks.

Complementary to purging (which drops whole blocks), block filtering
(Papadakis et al.) acts per entity: an entity appearing in many blocks is
removed from its *largest* blocks, keeping only the fraction ``ratio`` of
its smallest (most selective) ones.  The intuition: an entity's small
blocks carry its discriminative tokens; its large blocks are mostly noise.
Filtering shrinks the blocking graph before meta-blocking, which both
speeds meta-blocking up and improves its precision.
"""

from __future__ import annotations

from repro.blocking.block import Block, BlockCollection


class BlockFiltering:
    """Per-entity block retention.

    Args:
        ratio: fraction of each entity's blocks to keep, in (0, 1].  The
            literature default is 0.8; E3 sweeps this.
    """

    name = "block-filtering"

    def __init__(self, ratio: float = 0.8) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio

    def process(self, blocks: BlockCollection) -> BlockCollection:
        """Return a new collection with entities removed from their largest blocks."""
        cardinality: dict[str, int] = {
            block.key: block.cardinality() for block in blocks
        }
        # Rank each entity's blocks by increasing cardinality; keep the
        # ceil(ratio * count) smallest.  Ties break on block key so the
        # result is deterministic.
        keep: dict[str, set[str]] = {}
        for uri, keys in blocks.entity_index().items():
            limit = max(1, int(self.ratio * len(keys) + 0.5))
            ranked = sorted(keys, key=lambda key: (cardinality[key], key))
            keep[uri] = set(ranked[:limit])

        filtered: list[Block] = []
        for block in blocks:
            entities1 = [u for u in block.entities1 if block.key in keep.get(u, ())]
            if block.is_bipartite:
                assert block.entities2 is not None
                entities2 = [u for u in block.entities2 if block.key in keep.get(u, ())]
                if entities1 and entities2:
                    filtered.append(Block(block.key, entities1, entities2))
            else:
                if len(entities1) >= 2:
                    filtered.append(Block(block.key, entities1))
        return BlockCollection(filtered, name=f"filtered({blocks.name})")
