"""Block filtering: keep each entity only in its most selective blocks.

Complementary to purging (which drops whole blocks), block filtering
(Papadakis et al.) acts per entity: an entity appearing in many blocks is
removed from its *largest* blocks, keeping only the fraction ``ratio`` of
its smallest (most selective) ones.  The intuition: an entity's small
blocks carry its discriminative tokens; its large blocks are mostly noise.
Filtering shrinks the blocking graph before meta-blocking, which both
speeds meta-blocking up and improves its precision.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.blocking.block import Block, BlockCollection


def retention_limit(key_count: int, ratio: float) -> int:
    """Blocks an entity with *key_count* blocks keeps under *ratio*.

    ``ceil``-like rounding with a floor of one: every placed entity
    keeps at least its single most selective block.
    """
    return max(1, int(ratio * key_count + 0.5))


def retained_keys(
    keys: Iterable[str],
    cardinality_of: Callable[[str], int],
    ratio: float,
) -> list[str]:
    """The keys of an entity's retained (most selective) blocks, ranked.

    Ranks *keys* by increasing block cardinality (ties broken on the
    key, so the result is deterministic) and keeps the leading
    :func:`retention_limit` fraction.  This is the per-entity decision
    at the heart of block filtering, factored out so the streaming
    processed view can re-apply it to one touched entity at a time with
    its live cardinalities.
    """
    ranked = sorted(keys, key=lambda key: (cardinality_of(key), key))
    return ranked[: retention_limit(len(ranked), ratio)]


class BlockFiltering:
    """Per-entity block retention.

    Args:
        ratio: fraction of each entity's blocks to keep, in (0, 1].  The
            literature default is 0.8; E3 sweeps this.
    """

    name = "block-filtering"

    def __init__(self, ratio: float = 0.8) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio

    def signature(self) -> tuple:
        """Hashable identity of this operator's parameterization.

        Snapshot caches key processed results by operator signature, so
        two equal-parameter instances share a cache entry while a
        subclass (different qualname) never collides with the base.
        """
        return (type(self).__qualname__, self.ratio)

    def process(self, blocks: BlockCollection) -> BlockCollection:
        """Return a new collection with entities removed from their largest blocks."""
        cardinality: dict[str, int] = {
            block.key: block.cardinality() for block in blocks
        }
        keep: dict[str, set[str]] = {}
        for uri, keys in blocks.entity_index().items():
            keep[uri] = set(retained_keys(keys, cardinality.__getitem__, self.ratio))

        filtered: list[Block] = []
        for block in blocks:
            entities1 = [u for u in block.entities1 if block.key in keep.get(u, ())]
            if block.is_bipartite:
                assert block.entities2 is not None
                entities2 = [u for u in block.entities2 if block.key in keep.get(u, ())]
                if entities1 and entities2:
                    filtered.append(Block(block.key, entities1, entities2))
            else:
                if len(entities1) >= 2:
                    filtered.append(Block(block.key, entities1))
        return BlockCollection(filtered, name=f"filtered({blocks.name})")
