"""Attribute-clustering blocking.

Plain token blocking keys on a token regardless of *where* it appears, so
the token ``paris`` groups a person born in Paris with a film titled
"Paris".  Attribute-clustering blocking (Papadakis et al.) restores a
little context without assuming a schema: attributes (properties) are
clustered by the similarity of their **value token sets** across the two
KBs, and blocking keys are scoped by cluster — ``paris`` in a
location-like attribute no longer collides with ``paris`` in a title-like
attribute.  Recall dips slightly; precision improves substantially.

Algorithm (as in the original):

1. compute the value-token profile of every attribute in both collections;
2. link every attribute to its most similar attribute in the *other*
   collection, when similarity exceeds a threshold;
3. take the connected components of the link graph as attribute clusters;
4. attributes left unlinked fall into a single catch-all *glue* cluster;
5. blocking key = ``cluster_id # token``.
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.blocking.block import BlockCollection
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.utils.disjoint_set import DisjointSet
from repro.utils.text import token_split

GLUE_CLUSTER = "glue"


def _jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a or not b:
        return 0.0
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return inter / (len(a) + len(b) - inter)


class AttributeClusteringBlocking(Blocker):
    """Token blocking with cluster-scoped keys.

    The attribute→cluster mapping is learned from the pair of collections
    passed to :meth:`build`; :meth:`keys_for` then uses it.  Calling
    :meth:`keys_for` before :meth:`build` raises ``RuntimeError``.

    Args:
        min_token_length: minimum token length for both profiles and keys.
        similarity_threshold: minimum Jaccard similarity for linking two
            attributes across collections.
    """

    name = "attribute-clustering"

    def __init__(
        self,
        min_token_length: int = 2,
        similarity_threshold: float = 0.1,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        self.min_token_length = min_token_length
        self.similarity_threshold = similarity_threshold
        self._clusters: dict[tuple[str, str], str] | None = None
        self._names: tuple[str, str] = ("", "")

    # -- cluster learning -------------------------------------------------

    def _attribute_profiles(
        self, collection: EntityCollection
    ) -> dict[str, frozenset[str]]:
        tokens: dict[str, set[str]] = {}
        for description in collection:
            # Profiles are built from literal values only: URI-valued
            # attributes carry relationship structure, not value content,
            # and would leak namespace tokens into every profile.
            for prop, value in description.literal_pairs():
                tokens.setdefault(prop, set()).update(
                    token_split(value, self.min_token_length)
                )
        return {prop: frozenset(toks) for prop, toks in tokens.items()}

    def fit(
        self,
        collection1: EntityCollection,
        collection2: EntityCollection | None = None,
    ) -> dict[tuple[str, str], str]:
        """Learn the attribute→cluster mapping and return it.

        Keys of the returned mapping are ``(collection_name, property)``;
        values are cluster ids.
        """
        profiles1 = self._attribute_profiles(collection1)
        if collection2 is None:
            # Dirty ER: cluster attributes of the single collection among
            # themselves using best-match linking.
            profiles2 = profiles1
            name1 = name2 = collection1.name
        else:
            profiles2 = self._attribute_profiles(collection2)
            name1, name2 = collection1.name, collection2.name

        links = DisjointSet()
        qualified: list[tuple[str, str]] = []
        for prop in profiles1:
            links.add((name1, prop))
        for prop in profiles2:
            links.add((name2, prop))

        def link_best(src_profiles, src_name, dst_profiles, dst_name):
            for prop, profile in src_profiles.items():
                best_prop = None
                best_sim = 0.0
                for other_prop, other_profile in dst_profiles.items():
                    if dst_name == src_name and other_prop == prop:
                        continue
                    sim = _jaccard(profile, other_profile)
                    if sim > best_sim or (
                        sim == best_sim and best_prop is not None and other_prop < best_prop
                    ):
                        best_sim, best_prop = sim, other_prop
                if best_prop is not None and best_sim >= self.similarity_threshold:
                    links.union((src_name, prop), (dst_name, best_prop))
                    qualified.append((src_name, prop))

        link_best(profiles1, name1, profiles2, name2)
        if collection2 is not None:
            link_best(profiles2, name2, profiles1, name1)

        qualified_set = set(qualified)
        mapping: dict[tuple[str, str], str] = {}
        cluster_names: dict[tuple[str, str], str] = {}
        for key in sorted(links.items()):
            root = links.find(key)
            if links.size_of(key) < 2 and key not in qualified_set:
                mapping[key] = GLUE_CLUSTER
                continue
            if root not in cluster_names:
                cluster_names[root] = f"c{len(cluster_names)}"
            mapping[key] = cluster_names[root]
        self._clusters = mapping
        self._names = (name1, name2)
        return mapping

    # -- Blocker interface ----------------------------------------------------

    def build(
        self,
        collection1: EntityCollection,
        collection2: EntityCollection | None = None,
        drop_singletons: bool = True,
    ) -> BlockCollection:
        self.fit(collection1, collection2)
        return super().build(collection1, collection2, drop_singletons)

    def keys_for(self, description: EntityDescription) -> set[str]:
        if self._clusters is None:
            raise RuntimeError("call build()/fit() before keys_for()")
        keys: set[str] = set()
        for prop, value in description.literal_pairs():
            cluster = (
                self._clusters.get((description.source, prop))
                or self._clusters.get((self._names[0], prop))
                or self._clusters.get((self._names[1], prop))
                or GLUE_CLUSTER
            )
            for token in token_split(value, self.min_token_length):
                keys.add(f"{cluster}#{token}")
        return keys
