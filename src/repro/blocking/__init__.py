"""Blocking: placing similar descriptions into blocks.

Blocking is MinoanER's pre-processing step: instead of comparing every pair
of descriptions, only pairs co-occurring in at least one block are
candidates for matching.  All methods here are **schema-agnostic**, per the
paper: they assume only that matching descriptions share a common token in
their values or URIs.

* :mod:`repro.blocking.token_blocking` — one block per distinct token;
* :mod:`repro.blocking.prefix_infix_suffix` — URI-aware keys (tokens of the
  URI infix), for sparsely-described periphery entities;
* :mod:`repro.blocking.attribute_clustering` — clusters attributes by value
  similarity and scopes token keys by cluster, trading recall for precision;
* :mod:`repro.blocking.purging` / :mod:`repro.blocking.filtering` — block
  post-processing that discards oversized blocks / each entity's least
  selective blocks.
"""

from repro.blocking.block import Block, BlockCollection, comparison_pair
from repro.blocking.base import Blocker
from repro.blocking.token_blocking import TokenBlocking
from repro.blocking.prefix_infix_suffix import PrefixInfixSuffixBlocking
from repro.blocking.attribute_clustering import AttributeClusteringBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.filtering import BlockFiltering
from repro.blocking.composite import CompositeBlocking
from repro.blocking.qgrams import QGramsBlocking, qgrams

__all__ = [
    "Block",
    "BlockCollection",
    "comparison_pair",
    "Blocker",
    "TokenBlocking",
    "PrefixInfixSuffixBlocking",
    "AttributeClusteringBlocking",
    "BlockPurging",
    "BlockFiltering",
    "CompositeBlocking",
    "QGramsBlocking",
    "qgrams",
]
