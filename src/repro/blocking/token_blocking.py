"""Token blocking: one block per distinct value token.

The baseline schema-agnostic method (Papadakis et al.; used as the first
stage of MinoanER's pipeline): every distinct token appearing in any
attribute value — and, per the paper, optionally in the description URI —
becomes a blocking key.  Matching descriptions that share *any* token are
guaranteed to co-occur in at least one block, which gives token blocking
its high recall (and its enormous number of repeated comparisons, which
meta-blocking then prunes).
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer


class TokenBlocking(Blocker):
    """Schema-agnostic token blocking.

    Args:
        tokenizer: token extractor; defaults to a tokenizer that also mines
            URI-infix tokens, per MinoanER ("a common token in their
            descriptions or URIs").
    """

    name = "token-blocking"

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self.tokenizer = tokenizer or Tokenizer(include_uri_infix=True)

    def keys_for(self, description: EntityDescription) -> set[str]:
        return set(self.tokenizer.token_set(description))
