"""Blocks, block collections and comparison identities.

Terminology (following the blocking literature the paper builds on):

* a **block** is a set of descriptions sharing a blocking key;
* in **dirty ER** a block holds one entity set and implies all
  ``n·(n−1)/2`` intra-block pairs;
* in **clean-clean ER** (two individually duplicate-free KBs) a block is
  bipartite — ``entities1 × entities2`` — and implies only cross-KB pairs;
* a **comparison** is an unordered description pair; the same comparison
  may be implied by many blocks, and de-duplicating those repetitions is
  exactly what meta-blocking is for.
"""

from __future__ import annotations

from typing import Iterable, Iterator

try:  # pragma: no cover - exercised through the array fast paths
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.model.interner import EntityInterner


def comparison_pair(uri_a: str, uri_b: str) -> tuple[str, str]:
    """Canonical unordered identity of a comparison.

    Raises:
        ValueError: when both URIs are identical (a description is never
            compared with itself).
    """
    if uri_a == uri_b:
        raise ValueError(f"self-comparison: {uri_a!r}")
    return (uri_a, uri_b) if uri_a < uri_b else (uri_b, uri_a)


class Block:
    """One block: a key plus the descriptions it groups.

    For clean-clean ER pass both *entities1* and *entities2*; for dirty ER
    pass only *entities1*.
    """

    __slots__ = ("key", "entities1", "entities2", "_side_overlap")

    def __init__(
        self,
        key: str,
        entities1: Iterable[str],
        entities2: Iterable[str] | None = None,
    ) -> None:
        self.key = key
        self.entities1: list[str] = list(dict.fromkeys(entities1))
        self.entities2: list[str] | None = (
            list(dict.fromkeys(entities2)) if entities2 is not None else None
        )
        # Members are fixed at construction, so the cross-side overlap is
        # computed once here, keeping cardinality() O(1) in hot loops.
        self._side_overlap = (
            len(set(self.entities1) & set(self.entities2))
            if self.entities2 is not None
            else 0
        )

    @property
    def is_bipartite(self) -> bool:
        """True for clean-clean (two-sided) blocks."""
        return self.entities2 is not None

    def __repr__(self) -> str:
        if self.is_bipartite:
            return f"Block({self.key!r}, {len(self.entities1)}x{len(self.entities2 or [])})"
        return f"Block({self.key!r}, {len(self.entities1)})"

    def __len__(self) -> int:
        """Number of entity placements (block assignments) in this block."""
        return len(self.entities1) + (len(self.entities2) if self.entities2 else 0)

    def cardinality(self) -> int:
        """Number of comparisons this block implies.

        For bipartite blocks an entity may appear on both sides (dirty
        input reaching a clean-clean block); ``comparisons()`` skips those
        ``a == b`` pairs, so they are subtracted here to keep ARCS
        contributions and CEP/CNP budgets consistent with the enumerated
        comparisons.
        """
        if self.is_bipartite:
            assert self.entities2 is not None
            return len(self.entities1) * len(self.entities2) - self._side_overlap
        n = len(self.entities1)
        return n * (n - 1) // 2

    def entities(self) -> list[str]:
        """All member URIs (both sides for bipartite blocks)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            return self.entities1 + self.entities2
        return list(self.entities1)

    def comparisons(self) -> Iterator[tuple[str, str]]:
        """Iterate over the implied comparisons (canonical pair order)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            for a in self.entities1:
                for b in self.entities2:
                    if a != b:
                        yield comparison_pair(a, b)
            return
        ents = self.entities1
        for i in range(len(ents)):
            for j in range(i + 1, len(ents)):
                yield comparison_pair(ents[i], ents[j])

    def contains_pair(self, uri_a: str, uri_b: str) -> bool:
        """True if this block implies the comparison (uri_a, uri_b)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            s1, s2 = set(self.entities1), set(self.entities2)
            return (uri_a in s1 and uri_b in s2) or (uri_b in s1 and uri_a in s2)
        members = set(self.entities1)
        return uri_a in members and uri_b in members


class BlockIdArrays:
    """Flat array (CSR-style) view of a collection's blocks over dense ids.

    The layout the vectorized meta-blocking path consumes: all side-1
    members concatenated block by block with an offsets array, likewise
    for side-2 members (dirty blocks contribute an empty side-2 span),
    plus per-block bipartite flags and cardinalities.  Requires numpy.
    """

    __slots__ = (
        "side1",
        "offsets1",
        "side2",
        "offsets2",
        "sides",
        "offsets2_abs",
        "bipartite",
        "cardinality",
    )

    def __init__(
        self, id_blocks: list[tuple[list[int], list[int] | None, int]]
    ) -> None:
        assert _np is not None
        sizes1 = _np.fromiter(
            (len(ids1) for ids1, _, _ in id_blocks), dtype=_np.int64, count=len(id_blocks)
        )
        sizes2 = _np.fromiter(
            (len(ids2) if ids2 is not None else 0 for _, ids2, _ in id_blocks),
            dtype=_np.int64,
            count=len(id_blocks),
        )
        self.offsets1 = _np.zeros(len(id_blocks) + 1, dtype=_np.int64)
        _np.cumsum(sizes1, out=self.offsets1[1:])
        self.offsets2 = _np.zeros(len(id_blocks) + 1, dtype=_np.int64)
        _np.cumsum(sizes2, out=self.offsets2[1:])
        self.side1 = _np.fromiter(
            (entity for ids1, _, _ in id_blocks for entity in ids1),
            dtype=_np.int64,
            count=int(self.offsets1[-1]),
        )
        self.side2 = _np.fromiter(
            (
                entity
                for _, ids2, _ in id_blocks
                if ids2 is not None
                for entity in ids2
            ),
            dtype=_np.int64,
            count=int(self.offsets2[-1]),
        )
        self.bipartite = _np.fromiter(
            (ids2 is not None for _, ids2, _ in id_blocks),
            dtype=bool,
            count=len(id_blocks),
        )
        self.cardinality = _np.fromiter(
            (card for _, _, card in id_blocks), dtype=_np.int64, count=len(id_blocks)
        )
        # Both sides in one gatherable array: side-2 spans addressed via
        # offsets2_abs so a single fancy-index serves dirty and bipartite
        # blocks alike.
        self.sides = _np.concatenate([self.side1, self.side2])
        self.offsets2_abs = self.offsets2 + len(self.side1)


class BlockCollection:
    """An ordered set of blocks plus the entity→blocks inverted index.

    The inverted index is what meta-blocking's weighting schemes consume:
    ``blocks_of(e)`` gives the keys of every block containing ``e``, so the
    common-blocks count of a pair is a set intersection.
    """

    def __init__(self, blocks: Iterable[Block] = (), name: str = "blocks") -> None:
        self.name = name
        self._blocks: dict[str, Block] = {}
        self._entity_index: dict[str, list[str]] | None = None
        self._id_views: (
            tuple[EntityInterner, list[tuple[list[int], list[int] | None, int]]] | None
        ) = None
        self._id_arrays: BlockIdArrays | None = None
        #: scheme-independent derived views (e.g. the meta-blocking pair
        #: table) keyed by owner; cleared on any mutation.  Consumers must
        #: treat stored values as immutable.
        self.derived_cache: dict = {}
        for block in blocks:
            self.add(block)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def __getitem__(self, key: str) -> Block:
        return self._blocks[key]

    def __repr__(self) -> str:
        return f"BlockCollection({self.name!r}, {len(self)} blocks)"

    def add(self, block: Block) -> None:
        """Insert *block*.

        Raises:
            ValueError: on duplicate block keys (keys identify blocks).
        """
        if block.key in self._blocks:
            raise ValueError(f"duplicate block key {block.key!r}")
        self._blocks[block.key] = block
        self._invalidate_views()

    def remove(self, key: str) -> Block:
        """Remove and return the block with *key*."""
        block = self._blocks.pop(key)
        self._invalidate_views()
        return block

    def _invalidate_views(self) -> None:
        self._entity_index = None
        self._id_views = None
        self._id_arrays = None
        self.derived_cache.clear()

    def keys(self) -> list[str]:
        """Block keys in insertion order."""
        return list(self._blocks)

    def blocks(self) -> list[Block]:
        """Blocks in insertion order."""
        return list(self._blocks.values())

    # -- aggregate measures --------------------------------------------------

    def total_comparisons(self) -> int:
        """Sum of per-block cardinalities (with repetitions)."""
        return sum(block.cardinality() for block in self)

    def distinct_comparisons(self) -> set[tuple[str, str]]:
        """The de-duplicated comparison set (materialized; use on small data)."""
        out: set[tuple[str, str]] = set()
        for block in self:
            out.update(block.comparisons())
        return out

    def iter_comparisons_with_repetitions(self) -> Iterator[tuple[str, tuple[str, str]]]:
        """Yield ``(block_key, pair)`` for every implied comparison."""
        for block in self:
            for pair in block.comparisons():
                yield block.key, pair

    def total_assignments(self) -> int:
        """Total block assignments (the BC measure's denominator)."""
        return sum(len(block) for block in self)

    def entity_count(self) -> int:
        """Number of distinct entities placed in at least one block."""
        return len(self.entity_index())

    # -- inverted index ------------------------------------------------------

    def entity_index(self) -> dict[str, list[str]]:
        """Entity URI → ordered list of keys of blocks containing it."""
        if self._entity_index is None:
            index: dict[str, list[str]] = {}
            for block in self:
                for uri in block.entities():
                    index.setdefault(uri, []).append(block.key)
            self._entity_index = index
        return self._entity_index

    def blocks_of(self, uri: str) -> list[str]:
        """Keys of the blocks containing *uri* (empty when unindexed)."""
        return list(self.entity_index().get(uri, ()))

    # -- int-id views --------------------------------------------------------

    def prime_id_views(
        self,
        interner: EntityInterner,
        id_blocks: list[tuple[list[int], list[int] | None, int]],
    ) -> None:
        """Adopt id views computed while the blocks were being built.

        Blockers iterate every member anyway, so they intern URIs in
        first-placement order during construction and hand the result
        over here, sparing the cold path a second full pass in
        :meth:`_ensure_id_views`.  Entries must align with iteration
        order and ids must follow first-placement order — exactly what
        :meth:`_ensure_id_views` would have produced.  Any later
        mutation invalidates the primed views as usual.
        """
        self._id_views = (interner, id_blocks)

    def _ensure_id_views(
        self,
    ) -> tuple[EntityInterner, list[tuple[list[int], list[int] | None, int]]]:
        if self._id_views is None:
            interner = EntityInterner()
            intern = interner.intern
            id_blocks: list[tuple[list[int], list[int] | None, int]] = []
            for block in self:
                ids1 = list(map(intern, block.entities1))
                ids2 = (
                    list(map(intern, block.entities2))
                    if block.entities2 is not None
                    else None
                )
                id_blocks.append((ids1, ids2, block.cardinality()))
            self._id_views = (interner, id_blocks)
        return self._id_views

    def interner(self) -> EntityInterner:
        """Dense ids over every entity placed in at least one block.

        Ids follow first-placement order, matching the key order of
        :meth:`entity_index`.  The interner (like every id view) is
        rebuilt lazily after :meth:`add`/:meth:`remove`.
        """
        return self._ensure_id_views()[0]

    def id_blocks(self) -> list[tuple[list[int], list[int] | None, int]]:
        """Blocks as id-arrays: ``(ids1, ids2, cardinality)`` per block.

        ``ids2`` is None for dirty (unipartite) blocks.  Entries align
        with iteration order over the collection.
        """
        return self._ensure_id_views()[1]

    def id_entity_index(self) -> list[list[int]]:
        """Entity id → ordinals (into :meth:`id_blocks`) of its blocks.

        The id-level counterpart of :meth:`entity_index`: the list at
        index ``i`` has one entry per placement of entity ``i``, in block
        insertion order.
        """
        cached = self.derived_cache.get("block.id_entity_index")
        if cached is None:
            interner, id_blocks = self._ensure_id_views()
            cached = [[] for _ in range(len(interner))]
            for ordinal, (ids1, ids2, _) in enumerate(id_blocks):
                for entity_id in ids1:
                    cached[entity_id].append(ordinal)
                if ids2 is not None:
                    for entity_id in ids2:
                        cached[entity_id].append(ordinal)
            self.derived_cache["block.id_entity_index"] = cached
        return cached

    def id_arrays(self) -> BlockIdArrays | None:
        """CSR-style numpy view of the blocks (None when numpy is absent).

        Like the other id views this is a pure re-layout of the block
        structure, built lazily and invalidated on mutation.
        """
        if _np is None:
            return None
        if self._id_arrays is None:
            self._id_arrays = BlockIdArrays(self._ensure_id_views()[1])
        return self._id_arrays

    def comparisons_in_common(self, uri_a: str, uri_b: str) -> int:
        """Number of blocks containing both descriptions."""
        index = self.entity_index()
        blocks_a = set(index.get(uri_a, ()))
        if not blocks_a:
            return 0
        return sum(1 for key in index.get(uri_b, ()) if key in blocks_a)
