"""Blocks, block collections and comparison identities.

Terminology (following the blocking literature the paper builds on):

* a **block** is a set of descriptions sharing a blocking key;
* in **dirty ER** a block holds one entity set and implies all
  ``n·(n−1)/2`` intra-block pairs;
* in **clean-clean ER** (two individually duplicate-free KBs) a block is
  bipartite — ``entities1 × entities2`` — and implies only cross-KB pairs;
* a **comparison** is an unordered description pair; the same comparison
  may be implied by many blocks, and de-duplicating those repetitions is
  exactly what meta-blocking is for.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def comparison_pair(uri_a: str, uri_b: str) -> tuple[str, str]:
    """Canonical unordered identity of a comparison.

    Raises:
        ValueError: when both URIs are identical (a description is never
            compared with itself).
    """
    if uri_a == uri_b:
        raise ValueError(f"self-comparison: {uri_a!r}")
    return (uri_a, uri_b) if uri_a < uri_b else (uri_b, uri_a)


class Block:
    """One block: a key plus the descriptions it groups.

    For clean-clean ER pass both *entities1* and *entities2*; for dirty ER
    pass only *entities1*.
    """

    __slots__ = ("key", "entities1", "entities2")

    def __init__(
        self,
        key: str,
        entities1: Iterable[str],
        entities2: Iterable[str] | None = None,
    ) -> None:
        self.key = key
        self.entities1: list[str] = list(dict.fromkeys(entities1))
        self.entities2: list[str] | None = (
            list(dict.fromkeys(entities2)) if entities2 is not None else None
        )

    @property
    def is_bipartite(self) -> bool:
        """True for clean-clean (two-sided) blocks."""
        return self.entities2 is not None

    def __repr__(self) -> str:
        if self.is_bipartite:
            return f"Block({self.key!r}, {len(self.entities1)}x{len(self.entities2 or [])})"
        return f"Block({self.key!r}, {len(self.entities1)})"

    def __len__(self) -> int:
        """Number of entity placements (block assignments) in this block."""
        return len(self.entities1) + (len(self.entities2) if self.entities2 else 0)

    def cardinality(self) -> int:
        """Number of comparisons this block implies."""
        if self.is_bipartite:
            assert self.entities2 is not None
            return len(self.entities1) * len(self.entities2)
        n = len(self.entities1)
        return n * (n - 1) // 2

    def entities(self) -> list[str]:
        """All member URIs (both sides for bipartite blocks)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            return self.entities1 + self.entities2
        return list(self.entities1)

    def comparisons(self) -> Iterator[tuple[str, str]]:
        """Iterate over the implied comparisons (canonical pair order)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            for a in self.entities1:
                for b in self.entities2:
                    if a != b:
                        yield comparison_pair(a, b)
            return
        ents = self.entities1
        for i in range(len(ents)):
            for j in range(i + 1, len(ents)):
                yield comparison_pair(ents[i], ents[j])

    def contains_pair(self, uri_a: str, uri_b: str) -> bool:
        """True if this block implies the comparison (uri_a, uri_b)."""
        if self.is_bipartite:
            assert self.entities2 is not None
            s1, s2 = set(self.entities1), set(self.entities2)
            return (uri_a in s1 and uri_b in s2) or (uri_b in s1 and uri_a in s2)
        members = set(self.entities1)
        return uri_a in members and uri_b in members


class BlockCollection:
    """An ordered set of blocks plus the entity→blocks inverted index.

    The inverted index is what meta-blocking's weighting schemes consume:
    ``blocks_of(e)`` gives the keys of every block containing ``e``, so the
    common-blocks count of a pair is a set intersection.
    """

    def __init__(self, blocks: Iterable[Block] = (), name: str = "blocks") -> None:
        self.name = name
        self._blocks: dict[str, Block] = {}
        self._entity_index: dict[str, list[str]] | None = None
        for block in blocks:
            self.add(block)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def __getitem__(self, key: str) -> Block:
        return self._blocks[key]

    def __repr__(self) -> str:
        return f"BlockCollection({self.name!r}, {len(self)} blocks)"

    def add(self, block: Block) -> None:
        """Insert *block*.

        Raises:
            ValueError: on duplicate block keys (keys identify blocks).
        """
        if block.key in self._blocks:
            raise ValueError(f"duplicate block key {block.key!r}")
        self._blocks[block.key] = block
        self._entity_index = None

    def remove(self, key: str) -> Block:
        """Remove and return the block with *key*."""
        block = self._blocks.pop(key)
        self._entity_index = None
        return block

    def keys(self) -> list[str]:
        """Block keys in insertion order."""
        return list(self._blocks)

    def blocks(self) -> list[Block]:
        """Blocks in insertion order."""
        return list(self._blocks.values())

    # -- aggregate measures --------------------------------------------------

    def total_comparisons(self) -> int:
        """Sum of per-block cardinalities (with repetitions)."""
        return sum(block.cardinality() for block in self)

    def distinct_comparisons(self) -> set[tuple[str, str]]:
        """The de-duplicated comparison set (materialized; use on small data)."""
        out: set[tuple[str, str]] = set()
        for block in self:
            out.update(block.comparisons())
        return out

    def iter_comparisons_with_repetitions(self) -> Iterator[tuple[str, tuple[str, str]]]:
        """Yield ``(block_key, pair)`` for every implied comparison."""
        for block in self:
            for pair in block.comparisons():
                yield block.key, pair

    def total_assignments(self) -> int:
        """Total block assignments (the BC measure's denominator)."""
        return sum(len(block) for block in self)

    def entity_count(self) -> int:
        """Number of distinct entities placed in at least one block."""
        return len(self.entity_index())

    # -- inverted index ------------------------------------------------------

    def entity_index(self) -> dict[str, list[str]]:
        """Entity URI → ordered list of keys of blocks containing it."""
        if self._entity_index is None:
            index: dict[str, list[str]] = {}
            for block in self:
                for uri in block.entities():
                    index.setdefault(uri, []).append(block.key)
            self._entity_index = index
        return self._entity_index

    def blocks_of(self, uri: str) -> list[str]:
        """Keys of the blocks containing *uri* (empty when unindexed)."""
        return list(self.entity_index().get(uri, ()))

    def comparisons_in_common(self, uri_a: str, uri_b: str) -> int:
        """Number of blocks containing both descriptions."""
        index = self.entity_index()
        blocks_a = set(index.get(uri_a, ()))
        if not blocks_a:
            return 0
        return sum(1 for key in index.get(uri_b, ()) if key in blocks_a)
