"""Composite blocking: the union of several key extractors.

MinoanER's first stage keys on "a common token in their descriptions
**or** URIs" — i.e. the union of token blocking and prefix-infix(-suffix)
blocking.  :class:`CompositeBlocking` generalizes that: it merges the key
sets of any number of blockers, namespacing each member's keys so that a
token key and an identical URI-infix key do not silently merge blocks of
different semantics (a configuration switch restores merged semantics
when that union *is* the intent).
"""

from __future__ import annotations

from typing import Sequence

from repro.blocking.base import Blocker
from repro.model.description import EntityDescription


class CompositeBlocking(Blocker):
    """Union of multiple blockers' keys.

    Args:
        blockers: member blocking methods (at least one).
        namespaced: prefix each key with the owning blocker's name.  With
            ``False``, identical keys from different members merge into
            one block — the exact "description OR URI token" semantics of
            the paper's stage-1 blocking.

    Note: members requiring fitting (attribute clustering) must be fitted
    by a prior :meth:`~repro.blocking.base.Blocker.build` call of their
    own; :meth:`keys_for` raises whatever the member raises otherwise.
    """

    name = "composite"

    def __init__(self, blockers: Sequence[Blocker], namespaced: bool = False) -> None:
        if not blockers:
            raise ValueError("composite blocking requires at least one member")
        self.blockers = list(blockers)
        self.namespaced = namespaced
        member_names = "+".join(b.name for b in self.blockers)
        self.name = f"composite({member_names})"

    def keys_for(self, description: EntityDescription) -> set[str]:
        keys: set[str] = set()
        for blocker in self.blockers:
            member_keys = blocker.keys_for(description)
            if self.namespaced:
                keys.update(f"{blocker.name}:{key}" for key in member_keys)
            else:
                keys.update(member_keys)
        return keys
