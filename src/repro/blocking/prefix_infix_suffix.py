"""Prefix-infix(-suffix) URI blocking.

Periphery-of-the-LOD-cloud descriptions are often sparsely described —
few literals, but a telling URI (``…/resource/Stanley_Kubrick``).  The
prefix-infix(-suffix) technique (Papadakis et al., used by the companion
Big Data 2015 evaluation) decomposes each URI, discards the KB-wide prefix
and technical suffix, and emits the **infix tokens** as blocking keys; the
infixes of URI-valued attributes contribute too, since a description's
neighbours frequently encode its identity (e.g. a film referencing its
director by name-bearing URI).
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.model.description import EntityDescription
from repro.model.namespaces import uri_infix
from repro.utils.text import token_split


class PrefixInfixSuffixBlocking(Blocker):
    """URI-driven blocking keys.

    Args:
        min_token_length: minimum key-token length.
        include_literals: also emit literal-value tokens, yielding the
            "Total Description" variant that subsumes token blocking —
            the configuration MinoanER's first stage uses.
        include_reference_infixes: mine the infixes of URI-valued
            attribute values as well.
    """

    name = "prefix-infix-suffix"

    def __init__(
        self,
        min_token_length: int = 2,
        include_literals: bool = False,
        include_reference_infixes: bool = True,
    ) -> None:
        self.min_token_length = min_token_length
        self.include_literals = include_literals
        self.include_reference_infixes = include_reference_infixes
        if include_literals:
            self.name = "total-description"

    def keys_for(self, description: EntityDescription) -> set[str]:
        keys: set[str] = set(
            token_split(uri_infix(description.uri), self.min_token_length)
        )
        if self.include_reference_infixes:
            for ref in description.object_references():
                keys.update(token_split(uri_infix(ref), self.min_token_length))
        if self.include_literals:
            for value in description.literal_values():
                keys.update(token_split(value, self.min_token_length))
        return keys
