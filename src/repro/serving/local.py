"""An in-process model of the sharded tier (no processes, no queues).

:class:`LocalTier` performs exactly the router's query plan — split the
candidate neighbourhood by partition owner, weigh each partition
separately, merge the disjoint weight maps, prune, match — over a
single in-process replica.  Because every real shard replicates the
same state, one replica models them all; what is left to test is the
*plan*: that per-partition weighing + merge is bit-identical to the
single-store resolver for any shard count, any merge interleaving, and
any subset of partitions marked down (degraded coverage accounting).

That makes this the property-test surface: hypothesis can drive shard
counts, interleavings and failure subsets through thousands of cases in
seconds, which the multiprocessing tier could never afford.
"""

from __future__ import annotations

from typing import Sequence

from repro.blocking.base import Blocker
from repro.core.benefit import BenefitModel, QuantityBenefit
from repro.matching.matcher import ThresholdMatcher
from repro.model.description import EntityDescription
from repro.serving.partition import split_by_owner
from repro.serving.router import RoutedQueryResult
from repro.stream.index import IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.resolver import (
    _StreamContext,
    prune_neighbourhood,
    run_match_phase,
    weigh_candidates,
)
from repro.stream.similarity import StreamingSimilarityIndex
from repro.stream.store import StreamingEntityStore


class LocalTier:
    """The tier's merge semantics without the process machinery.

    Args:
        n_partitions: how many ways the candidate space is split.
        down: mutable set of partitions currently "unreachable" — their
            candidates are dropped from the merge and the result is
            tagged degraded, mirroring the router's no-failover path.
    """

    def __init__(
        self,
        n_partitions: int,
        clean_clean: bool = True,
        blocker: Blocker | None = None,
        threshold: float = 0.4,
        benefit: BenefitModel | None = None,
        scheme: str = "ARCS",
        pruner: str = "CNP",
        budget: int | None = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.n_partitions = n_partitions
        self.scheme = scheme
        self.pruner = pruner
        self.budget = budget
        sources = ("kb1", "kb2") if clean_clean else ("stream",)
        self.store = StreamingEntityStore(sources=sources)
        self.index = IncrementalBlockIndex(self.store, blocker)
        self.pairs = DeltaPairTable(self.index)
        self.context = _StreamContext(self.store)
        self.matcher = ThresholdMatcher(
            StreamingSimilarityIndex(self.store),
            threshold=threshold,
            measure="cosine",
        )
        self.matcher.bind(self.context)
        self.benefit = benefit or QuantityBenefit()
        self.down: set[int] = set()

    def ingest(self, description: EntityDescription, source: int = 0) -> int:
        return self.store.insert(description, source)

    def delete(self, uri: str) -> bool:
        return self.store.delete(uri)

    def resolve(
        self,
        description: EntityDescription,
        source: int = 0,
        scheme: str | None = None,
        pruner: str | None = None,
        budget: int | None = None,
        ingest: bool = True,
        order: Sequence[int] | None = None,
    ) -> RoutedQueryResult:
        """Resolve through the partition-split-and-merge plan.

        ``order`` is the merge interleaving — the sequence in which the
        per-partition answers are folded into the merged weight map
        (default: partition order).  Results must not depend on it; the
        property tests drive random permutations to prove that.
        """
        scheme = scheme if scheme is not None else self.scheme
        pruner = pruner if pruner is not None else self.pruner
        budget = budget if budget is not None else self.budget
        if ingest:
            self.ingest(description, source)
        uri = description.uri
        entity_id = self.store.interner.get(uri, -1)
        uris = self.store.interner.uri_table()
        candidates = (
            self.index.partners_of(entity_id) if entity_id >= 0 else []
        )
        split = split_by_owner(candidates, self.n_partitions)

        merge_order = list(order) if order is not None else list(range(self.n_partitions))
        if sorted(merge_order) != list(range(self.n_partitions)):
            raise ValueError("order must be a permutation of the partitions")
        missing = {p for p in self.down if 0 <= p < self.n_partitions}
        weights: dict[int, float] = {}
        for partition in merge_order:
            if partition in missing:
                continue
            weights.update(
                weigh_candidates(
                    self.pairs, uris, uri, entity_id, split[partition], scheme
                )
            )

        survivors = prune_neighbourhood(
            weights, pruner, uris,
            self.pairs.entities_placed, self.pairs.total_assignments,
        )
        matches, scheduled, comparisons, skipped = run_match_phase(
            uri, survivors, weights, budget,
            self.context, self.matcher, self.benefit, self.store,
        )
        coverage = (self.n_partitions - len(missing)) / self.n_partitions
        return RoutedQueryResult(
            uri=uri,
            matches=matches,
            candidates=len(weights),
            scheduled=scheduled,
            comparisons=comparisons,
            skipped_decided=skipped,
            degraded=bool(missing),
            coverage=coverage,
            missing_partitions=tuple(sorted(missing)),
            weights=weights,
        )
