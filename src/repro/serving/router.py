"""The serving front end: ingest broadcast, query fan-out, merge.

One :class:`Router` owns the tier.  It keeps a replica of the store for
the *match plane* (descriptions, interner, similarity index, match
graph — everything :func:`~repro.stream.resolver.run_match_phase`
needs), broadcasts every accepted mutation to the shard processes in
sequence, and resolves queries by fanning the weigh phase out: each
candidate partition is requested from its home shard, the per-partition
weight maps are merged (partitions are disjoint, so the merge is a
plain union), and pruning + matching run router-side through the same
extracted phase functions the single-store resolver uses.  Weights
depend only on replicated global statistics, so the merged result is
bit-identical to :class:`~repro.stream.resolver.StreamResolver` on the
same event sequence — :func:`verify_equivalence` asserts exactly that
against a freshly replayed oracle.

Robustness is supervised, not assumed: dead or stuck shards are
respawned (WAL recovery + re-drive of the missed suffix), timed-out
requests retry with exponential backoff + jitter and fail over to
another live shard (every shard replicates all partitions), slow
requests are hedged after a p99-derived delay, and when a partition
stays unreachable past the retry budget the query degrades gracefully:
the partial merge is served tagged ``degraded=True`` with coverage
accounting instead of an exception.

The router is single-threaded by design — supervision runs inline
(:meth:`Router.pump`) between queue operations, so respawn, re-drive
and the request stream interleave deterministically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from queue import Empty

from repro.blocking.base import Blocker
from repro.core.benefit import BenefitModel, QuantityBenefit
from repro.matching.matcher import ThresholdMatcher
from repro.model.description import EntityDescription
from repro.obs import DISABLED, Observability
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.serving import messages
from repro.serving.shard import ShardConfig, ShardHandle
from repro.serving.supervisor import (
    DEAD,
    LIVE,
    HedgePolicy,
    RetryPolicy,
    Supervisor,
)
from repro.stream.index import IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.resolver import (
    StreamMatch,
    _StreamContext,
    prune_neighbourhood,
    run_match_phase,
    weigh_candidates,
)
from repro.stream.similarity import StreamingSimilarityIndex
from repro.stream.store import StreamingEntityStore


def _count_property(attr: str):
    """A Counter-backed int field that still supports ``stats.x += 1``."""

    def getter(self):
        return getattr(self, attr).value

    def setter(self, value):
        getattr(self, attr).value = value

    return property(getter, setter)


class ServingStats:
    """Tier-level robustness accounting, backed by metric primitives.

    Like :class:`~repro.stream.workload.WorkloadStats`, the counts live
    in :class:`~repro.obs.metrics.Counter` / :class:`~repro.obs.metrics.
    Histogram` objects and :meth:`bind` registers the *same objects* in
    a registry — the exported ``metrics.txt`` figures equal these by
    construction.
    """

    def __init__(self) -> None:
        self._queries = Counter()
        self._degraded = Counter()
        self._retries = Counter()
        self._hedges = Counter()
        self._hedge_wins = Counter()
        self._failovers = Counter()
        self._respawns = Counter()
        self._shard_deaths = Counter()
        #: end-to-end query latency (router-side)
        self.query_hist = Histogram()
        #: per-shard request latency (send → answer), the hedge input
        self.shard_hist = Histogram()
        #: outage-detected → shard live again
        self.time_to_healthy_hist = Histogram()

    queries = _count_property("_queries")
    degraded = _count_property("_degraded")
    retries = _count_property("_retries")
    hedges = _count_property("_hedges")
    hedge_wins = _count_property("_hedge_wins")
    failovers = _count_property("_failovers")
    respawns = _count_property("_respawns")
    shard_deaths = _count_property("_shard_deaths")

    def bind(self, registry: MetricsRegistry) -> None:
        registry.register("repro.serving.query.count", self._queries)
        registry.register("repro.serving.degraded.count", self._degraded)
        registry.register("repro.serving.retry.count", self._retries)
        registry.register("repro.serving.hedge.count", self._hedges)
        registry.register("repro.serving.hedge.win.count", self._hedge_wins)
        registry.register("repro.serving.failover.count", self._failovers)
        registry.register("repro.serving.respawn.count", self._respawns)
        registry.register("repro.serving.shard.dead.count", self._shard_deaths)
        registry.register("repro.serving.query.seconds", self.query_hist)
        registry.register("repro.serving.shard.request.seconds", self.shard_hist)
        registry.register(
            "repro.serving.time.to.healthy.seconds", self.time_to_healthy_hist
        )

    def summary_rows(self) -> list[dict[str, str]]:
        """Report-ready rows for ``format_table``."""
        query = self.query_hist.summary()
        rows = [
            {"metric": "queries served", "value": str(self.queries)},
            {"metric": "degraded responses", "value": str(self.degraded)},
            {"metric": "retries / failovers",
             "value": f"{self.retries} / {self.failovers}"},
            {"metric": "hedges (wins)",
             "value": f"{self.hedges} ({self.hedge_wins})"},
            {"metric": "shard deaths / respawns",
             "value": f"{self.shard_deaths} / {self.respawns}"},
            {"metric": "query p50 / p99 (ms)",
             "value": f"{query['p50'] * 1e3:.3f} / {query['p99'] * 1e3:.3f}"},
        ]
        if self.time_to_healthy_hist.count:
            tth = self.time_to_healthy_hist.summary()
            rows.append(
                {"metric": "time-to-healthy mean / max (s)",
                 "value": f"{tth['mean']:.3f} / {tth['max']:.3f}"}
            )
        return rows


@dataclass
class RoutedQueryResult:
    """One merged query outcome, with degradation accounting.

    The degradation contract: ``degraded`` is True exactly when at
    least one candidate partition was unreachable, ``coverage`` is the
    fraction of partitions that answered, and ``missing_partitions``
    names the gap — a partial result is always *labelled*, never
    silent.
    """

    uri: str
    matches: list[StreamMatch]
    candidates: int
    scheduled: int
    comparisons: int
    skipped_decided: int
    degraded: bool
    coverage: float
    missing_partitions: tuple[int, ...]
    #: merged candidate-id → weight map (the pruning input)
    weights: dict[int, float] = field(default_factory=dict, repr=False)
    latency: dict[str, float] = field(default_factory=dict)

    def matched_uris(self) -> list[str]:
        return [match.uri for match in self.matches]


@dataclass
class _LogEntry:
    seq: int
    op: str
    description: EntityDescription | None
    uri: str | None
    source: int
    #: router-store version after applying this entry (replicas agree)
    version_after: int


class _Slot:
    """In-flight state of one partition's weigh request."""

    __slots__ = (
        "partition", "shard_id", "sent_at", "attempt",
        "resend_at", "hedge_shard", "done",
    )

    def __init__(self, partition: int) -> None:
        self.partition = partition
        self.shard_id: int | None = None
        self.sent_at = 0.0
        self.attempt = 1
        self.resend_at: float | None = None
        self.hedge_shard: int | None = None
        self.done = False


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_equivalence`."""

    ok: bool
    checked: int
    mismatches: list[str]


class Router:
    """Front end of a sharded serving tier (spawns the shards itself).

    Args:
        n_shards: worker process count == candidate partition count.
        clean_clean: two-source store (kb1/kb2) vs dirty single-source.
        blocker: key extractor for every replica's incremental index.
        threshold: match threshold of the router-side cosine matcher.
        benefit: scheduler benefit model (default: quantity).
        scheme / pruner / budget: per-query defaults.
        durability_root: per-shard WAL directories under
            ``<root>/shard-<i>`` — shards then recover their own state
            on respawn instead of a full re-drive.
        fsync_every / snapshot_every: each shard's durability knobs.
        failover: reroute a dead shard's partitions to a live shard.
        degrade: serve labelled partial merges when partitions stay
            unreachable (False = raise instead).
        auto_respawn / heartbeat_deadline_s / retry / hedge: supervisor
            and request-robustness policies.
        crash_budgets: shard id → CrashyFiles byte budget armed on the
            *initial* spawn (torn-write fault injection).
        query_timeout_s: overall per-query deadline.
        obs: observability handle; the tier's counters/histograms are
            registered in its registry and queries emit spans.
    """

    def __init__(
        self,
        n_shards: int,
        clean_clean: bool = True,
        blocker: Blocker | None = None,
        threshold: float = 0.4,
        benefit: BenefitModel | None = None,
        scheme: str = "ARCS",
        pruner: str = "CNP",
        budget: int | None = None,
        durability_root: str | None = None,
        fsync_every: int = 1,
        snapshot_every: int | None = None,
        failover: bool = True,
        degrade: bool = True,
        auto_respawn: bool = True,
        heartbeat_deadline_s: float = 2.0,
        retry: RetryPolicy | None = None,
        hedge: HedgePolicy | None = None,
        crash_budgets: dict[int, int] | None = None,
        query_timeout_s: float = 30.0,
        poll_interval_s: float = 0.002,
        start_timeout_s: float = 60.0,
        obs: Observability | None = None,
        seed: int = 17,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        import multiprocessing

        self.n_shards = n_shards
        self.obs = obs if obs is not None else DISABLED
        self.blocker = blocker
        self.threshold = threshold
        self.scheme = scheme
        self.pruner = pruner
        self.budget = budget
        self.failover = failover
        self.degrade = degrade
        self.query_timeout_s = query_timeout_s
        self.poll_interval_s = poll_interval_s
        self._sources = ("kb1", "kb2") if clean_clean else ("stream",)

        # The match-plane replica: store + similarity + decisions.  The
        # router does not maintain a block index or pair table — the
        # weigh plane is exactly the work the shards take over.
        self.store = StreamingEntityStore(sources=self._sources)
        self.similarity = StreamingSimilarityIndex(self.store)
        self.context = _StreamContext(self.store)
        self.matcher = ThresholdMatcher(
            self.similarity, threshold=threshold, measure="cosine"
        )
        self.matcher.bind(self.context)
        self.benefit = benefit or QuantityBenefit()

        self.stats = ServingStats()
        if self.obs.enabled:
            self.stats.bind(self.obs.registry)

        self.log: list[_LogEntry] = []
        self._seq = 0
        self._request_seq = 0
        self._sync_seq = 0
        self._current_request: int | None = None
        self._answers: dict[int, messages.Answer] = {}
        self._sync_acks: dict[int, dict[int, int]] = {}

        context = multiprocessing.get_context("fork")
        self.shards = [
            ShardHandle(
                ShardConfig(
                    shard_id=shard_id,
                    n_partitions=n_shards,
                    sources=self._sources,
                    blocker=blocker,
                    durability_dir=(
                        os.path.join(durability_root, f"shard-{shard_id}")
                        if durability_root
                        else None
                    ),
                    fsync_every=fsync_every,
                    snapshot_every=snapshot_every,
                ),
                context,
            )
            for shard_id in range(n_shards)
        ]
        self.supervisor = Supervisor(
            self.shards,
            heartbeat_deadline_s=heartbeat_deadline_s,
            auto_respawn=auto_respawn,
            retry=retry,
            hedge=hedge,
            on_respawn=self._redrive,
            stats=self.stats,
            seed=seed,
        )
        self._closed = False
        budgets = crash_budgets or {}
        for handle in self.shards:
            handle.spawn(crash_budget=budgets.get(handle.shard_id))
        self._await_all_live(start_timeout_s)

    # -- lifecycle -----------------------------------------------------------

    def _await_all_live(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.pump() == 0:
                time.sleep(self.poll_interval_s)
            if self.supervisor.all_live():
                return
        self.close()
        raise RuntimeError(
            f"serving tier failed to start within {timeout_s:.0f}s"
        )

    def close(self) -> None:
        """Poison-pill shutdown of every shard; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.supervisor.auto_respawn = False
        for handle in self.shards:
            handle.stop()
            handle.state = DEAD

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervision pump ----------------------------------------------------

    def pump(self) -> int:
        """Drain shard responses + run one supervision tick.

        Returns the number of messages handled; callers waiting on
        external progress should sleep when it is 0.
        """
        self.supervisor.tick()
        handled = 0
        for handle in self.shards:
            queue_obj = handle.response_queue
            if queue_obj is None:
                continue
            while True:
                try:
                    message = queue_obj.get_nowait()
                except Empty:
                    break
                except Exception:
                    # Torn pickle from a writer killed mid-put; the
                    # respawn replaces this queue wholesale.
                    break
                handled += 1
                self._on_response(message)
        return handled

    def _on_response(self, message) -> None:
        if isinstance(message, messages.Answer):
            if message.request_id == self._current_request:
                self._answers.setdefault(message.partitions[0], message)
        elif isinstance(message, messages.Ready):
            self.supervisor.on_ready(message.shard_id, message.version)
        elif isinstance(message, messages.Synced):
            acks = self._sync_acks.get(message.sync_id)
            if acks is not None:
                acks[message.shard_id] = message.version
        # Stopped needs no bookkeeping: stop() joins on the process.

    def _redrive(self, shard_id: int, version: int) -> None:
        """Catch a respawned shard up to the router's event log.

        Runs *before* the shard is marked live, so its FIFO request
        queue holds the full missed suffix ahead of any future query —
        later queries therefore always see the caught-up state.
        """
        handle = self.shards[shard_id]
        for entry in self.log:
            if entry.version_after > version:
                handle.send(
                    messages.Ingest(
                        entry.seq, entry.op, entry.description,
                        entry.uri, entry.source,
                    )
                )

    # -- ingestion -----------------------------------------------------------

    def ingest(self, description: EntityDescription, source: int = 0) -> int:
        """Apply + broadcast one insert; returns the entity id."""
        self.pump()
        entity_id = self.store.insert(description, source)
        self._log_and_broadcast("insert", description, None, source)
        return entity_id

    def delete(self, uri: str) -> bool:
        """Apply + broadcast one retraction; True when the URI was live."""
        self.pump()
        present = self.store.delete(uri)
        self._log_and_broadcast("delete", None, uri, 0)
        return present

    def _log_and_broadcast(
        self,
        op: str,
        description: EntityDescription | None,
        uri: str | None,
        source: int,
    ) -> None:
        self._seq += 1
        entry = _LogEntry(
            self._seq, op, description, uri, source, self.store.version
        )
        self.log.append(entry)
        message = messages.Ingest(entry.seq, op, description, uri, source)
        for handle in self.shards:
            # Only live shards receive the broadcast directly; anything
            # else catches up through the re-drive on ready.
            if handle.state == LIVE:
                handle.send(message)

    # -- query fan-out -------------------------------------------------------

    def resolve(
        self,
        description: EntityDescription,
        source: int = 0,
        scheme: str | None = None,
        pruner: str | None = None,
        budget: int | None = None,
        ingest: bool = True,
        _context=None,
        _matcher=None,
    ) -> RoutedQueryResult:
        """Resolve one description through the tier.

        Mirrors :meth:`~repro.stream.resolver.StreamResolver.resolve`
        (same defaults, same semantics) with the weigh phase executed
        across the shards.  ``_context`` / ``_matcher`` override the
        match plane for one call — the equivalence verifier uses fresh
        planes so verification never pollutes serving decisions.
        """
        scheme = scheme if scheme is not None else self.scheme
        pruner = pruner if pruner is not None else self.pruner
        budget = budget if budget is not None else self.budget
        with self.obs.span("serving.query", source=source) as span:
            result = self._resolve(
                description, source, scheme, pruner, budget, ingest,
                _context or self.context, _matcher or self.matcher,
            )
            span.set(
                candidates=result.candidates,
                degraded=result.degraded,
                coverage=result.coverage,
            )
        return result

    def _resolve(
        self, description, source, scheme, pruner, budget, ingest,
        context, matcher,
    ) -> RoutedQueryResult:
        t_total = time.perf_counter()
        latency: dict[str, float] = {}

        t0 = time.perf_counter()
        if ingest:
            self.ingest(description, source)
        else:
            self.pump()
        latency["ingest_s"] = time.perf_counter() - t0

        uri = description.uri
        t0 = time.perf_counter()
        answers, missing = self._fan_out(uri, source, scheme)
        latency["fanout_s"] = time.perf_counter() - t0

        degraded = bool(missing)
        coverage = (self.n_shards - len(missing)) / self.n_shards
        if degraded and not self.degrade:
            raise RuntimeError(
                f"partitions {sorted(missing)} unavailable and graceful "
                "degradation is disabled"
            )

        weights: dict[int, float] = {}
        entities_placed, total_assignments = 1, 0
        for answer in answers.values():
            weights.update(answer.weights)
            entities_placed = answer.entities_placed
            total_assignments = answer.total_assignments

        t0 = time.perf_counter()
        uris = self.store.interner.uri_table()
        survivors = prune_neighbourhood(
            weights, pruner, uris, entities_placed, total_assignments
        )
        matches, scheduled, comparisons, skipped = run_match_phase(
            uri, survivors, weights, budget,
            context, matcher, self.benefit, self.store,
        )
        latency["match_s"] = time.perf_counter() - t0
        latency["total_s"] = time.perf_counter() - t_total

        self.stats.queries += 1
        self.stats.query_hist.observe(latency["total_s"])
        if degraded:
            self.stats.degraded += 1
        return RoutedQueryResult(
            uri=uri,
            matches=matches,
            candidates=len(weights),
            scheduled=scheduled,
            comparisons=comparisons,
            skipped_decided=skipped,
            degraded=degraded,
            coverage=coverage,
            missing_partitions=tuple(sorted(missing)),
            weights=weights,
            latency=latency,
        )

    def _fan_out(
        self, uri: str, source: int, scheme: str
    ) -> tuple[dict[int, messages.Answer], set[int]]:
        """Request every partition's weights; retry/hedge/fail over.

        Returns ``(answers by partition, failed partitions)``.
        """
        self._request_seq += 1
        request_id = self._request_seq
        self._current_request = request_id
        self._answers = {}
        retry = self.supervisor.retry
        hedge = self.supervisor.hedge
        hedge_delay = hedge.delay_s(sorted(self.stats.shard_hist.values))

        slots = [_Slot(partition) for partition in range(self.n_shards)]
        failed: set[int] = set()
        now = time.monotonic()
        for slot in slots:
            self._assign(slot, request_id, uri, source, scheme, now, failed)

        deadline = now + self.query_timeout_s
        try:
            while True:
                pending = [
                    s for s in slots
                    if not s.done and s.partition not in failed
                ]
                if not pending:
                    break
                progressed = self.pump() > 0
                now = time.monotonic()
                if now >= deadline:
                    for slot in pending:
                        failed.add(slot.partition)
                    break
                for slot in pending:
                    self._advance_slot(
                        slot, request_id, uri, source, scheme,
                        now, retry, hedge, hedge_delay, failed,
                    )
                if not progressed:
                    time.sleep(self.poll_interval_s)
            return dict(self._answers), failed
        finally:
            self._current_request = None
            self._answers = {}

    def _assign(
        self, slot: _Slot, request_id, uri, source, scheme, now, failed,
    ) -> None:
        """Initial dispatch: home shard if live, else fail over."""
        home = slot.partition
        if self.shards[home].state == LIVE:
            slot.shard_id = home
        elif self.failover:
            other = self.supervisor.pick_other({home})
            if other is None:
                # Nothing live right now — defer, the retry path keeps
                # probing while the supervisor respawns.
                slot.shard_id = home
                slot.resend_at = now
                return
            slot.shard_id = other
            self.stats.failovers += 1
        else:
            # No failover: wait for the home shard to come back (the
            # retry budget bounds how long).
            slot.shard_id = home
            slot.resend_at = now
            return
        self._send_slot(slot, request_id, uri, source, scheme, now)

    def _send_slot(self, slot, request_id, uri, source, scheme, now) -> None:
        self.shards[slot.shard_id].send(
            messages.Query(request_id, (slot.partition,), uri, source, scheme)
        )
        slot.sent_at = now

    def _advance_slot(
        self, slot, request_id, uri, source, scheme,
        now, retry, hedge, hedge_delay, failed,
    ) -> None:
        answer = self._answers.get(slot.partition)
        if answer is not None:
            slot.done = True
            if slot.sent_at:
                self.stats.shard_hist.observe(now - slot.sent_at)
            if slot.hedge_shard is not None and answer.shard_id == slot.hedge_shard:
                self.stats.hedge_wins += 1
            return

        if slot.resend_at is not None:
            # Backing off (or waiting for any shard to come live).
            if now < slot.resend_at:
                return
            target = self.shards[slot.shard_id]
            if target.state != LIVE:
                if self.failover:
                    other = self.supervisor.pick_other({slot.shard_id})
                    if other is not None:
                        slot.shard_id = other
                        self.stats.failovers += 1
                    else:
                        slot.resend_at = now + retry.base_delay_s
                        return
                else:
                    if slot.attempt > retry.attempts:
                        failed.add(slot.partition)
                        return
                    slot.attempt += 1
                    self.stats.retries += 1
                    slot.resend_at = now + retry.backoff_s(
                        slot.attempt - 1, self.supervisor.rng
                    )
                    return
            slot.resend_at = None
            self._send_slot(slot, request_id, uri, source, scheme, now)
            return

        target = self.shards[slot.shard_id]
        timed_out = now - slot.sent_at > retry.timeout_s
        if target.state != LIVE or timed_out:
            if slot.attempt > retry.attempts:
                failed.add(slot.partition)
                return
            slot.attempt += 1
            self.stats.retries += 1
            if target.state != LIVE and self.failover:
                other = self.supervisor.pick_other({slot.shard_id})
                if other is not None:
                    slot.shard_id = other
                    self.stats.failovers += 1
            slot.resend_at = now + retry.backoff_s(
                slot.attempt - 1, self.supervisor.rng
            )
            return

        if (
            hedge.enabled
            and slot.hedge_shard is None
            and now - slot.sent_at >= hedge_delay
        ):
            other = self.supervisor.pick_other({slot.shard_id})
            if other is not None:
                self.shards[other].send(
                    messages.Query(
                        request_id, (slot.partition,), uri, source, scheme
                    )
                )
                slot.hedge_shard = other
                self.stats.hedges += 1

    # -- barriers ------------------------------------------------------------

    def sync(self, timeout_s: float = 30.0) -> bool:
        """Wait until every shard is live and caught up to the log.

        True when all shards acknowledged the router's current store
        version; False on timeout (some shard stayed down or behind).
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.pump() == 0:
                time.sleep(self.poll_interval_s)
            if not self.supervisor.all_live():
                continue
            self._sync_seq += 1
            sync_id = self._sync_seq
            self._sync_acks[sync_id] = {}
            for handle in self.shards:
                handle.send(messages.Sync(sync_id))
            round_deadline = min(deadline, time.monotonic() + 2.0)
            while time.monotonic() < round_deadline:
                if self.pump() == 0:
                    time.sleep(self.poll_interval_s)
                acks = self._sync_acks[sync_id]
                if len(acks) == self.n_shards:
                    break
                if not self.supervisor.all_live():
                    break
            acks = self._sync_acks.pop(sync_id, {})
            if len(acks) == self.n_shards and all(
                version == self.store.version for version in acks.values()
            ):
                return True
        return False

    # -- fresh match planes (verification) -----------------------------------

    def fresh_match_plane(self, store: StreamingEntityStore):
        """A fresh (context, matcher) pair over *store*.

        Decisions recorded through it never touch the serving match
        graph — the verifier's isolation mechanism.
        """
        context = _StreamContext(store)
        matcher = ThresholdMatcher(
            StreamingSimilarityIndex(store),
            threshold=self.threshold,
            measure="cosine",
        )
        matcher.bind(context)
        return context, matcher


def verify_equivalence(
    router: Router,
    queries: list[tuple[EntityDescription, int]],
    scheme: str | None = None,
    pruner: str | None = None,
    budget: int | None = None,
    sync_timeout_s: float = 30.0,
) -> VerificationReport:
    """Assert the tier's merges are bit-identical to a single store.

    Replays the router's full event log into a fresh single-store
    oracle (store + incremental index + pair table), then resolves
    every query on both sides through *fresh, isolated* match planes —
    so the comparison depends only on store/index state, not on which
    match decisions were recorded during outages.  Compared per query:
    the merged weight map (float-exact), the pruned survivor list and
    the match list (URI, similarity and weight all bit-equal).

    The tier side must be at full coverage: :meth:`Router.sync` runs
    first, and any degraded answer is itself a mismatch.
    """
    scheme = scheme if scheme is not None else router.scheme
    pruner = pruner if pruner is not None else router.pruner
    budget = budget if budget is not None else router.budget
    if not router.sync(timeout_s=sync_timeout_s):
        return VerificationReport(
            ok=False, checked=0,
            mismatches=["tier did not reach a healthy synced state"],
        )

    oracle_store = StreamingEntityStore(sources=router._sources)
    oracle_index = IncrementalBlockIndex(oracle_store, router.blocker)
    oracle_pairs = DeltaPairTable(oracle_index)
    for entry in router.log:
        if entry.op == "insert":
            oracle_store.insert(entry.description, entry.source)
        else:
            oracle_store.delete(entry.uri)

    tier_plane = router.fresh_match_plane(router.store)
    oracle_plane = router.fresh_match_plane(oracle_store)
    oracle_uris = oracle_store.interner.uri_table()

    mismatches: list[str] = []
    for description, source in queries:
        uri = description.uri
        result = router.resolve(
            description, source, scheme=scheme, pruner=pruner, budget=budget,
            ingest=False, _context=tier_plane[0], _matcher=tier_plane[1],
        )
        if result.degraded:
            mismatches.append(
                f"{uri}: degraded during verification "
                f"(missing {result.missing_partitions})"
            )
            continue

        entity_id = oracle_store.interner.get(uri, -1)
        candidate_ids = (
            oracle_index.partners_of(entity_id) if entity_id >= 0 else []
        )
        oracle_weights = weigh_candidates(
            oracle_pairs, oracle_uris, uri, entity_id, candidate_ids, scheme
        )
        if result.weights != oracle_weights:
            mismatches.append(f"{uri}: merged weights diverge from oracle")
            continue
        oracle_survivors = prune_neighbourhood(
            oracle_weights, pruner, oracle_uris,
            oracle_pairs.entities_placed, oracle_pairs.total_assignments,
        )
        oracle_matches, _, oracle_comparisons, _ = run_match_phase(
            uri, oracle_survivors, oracle_weights, budget,
            oracle_plane[0], oracle_plane[1], router.benefit, oracle_store,
        )
        if result.matches != oracle_matches:
            mismatches.append(f"{uri}: match list diverges from oracle")
        elif result.comparisons != oracle_comparisons:
            mismatches.append(f"{uri}: comparison count diverges from oracle")
    return VerificationReport(
        ok=not mismatches, checked=len(queries), mismatches=mismatches
    )
