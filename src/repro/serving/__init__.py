"""Fault-tolerant sharded serving tier over the streaming resolver.

The streaming layer (:mod:`repro.stream`) serves one resolver in one
process.  This package turns it into a production-shaped tier: N worker
processes (**shards**) each hold a full replica of the streaming state
and own a disjoint slice of the *candidate partition space* (entity ids
hashed via :func:`~repro.utils.rng.stable_hash_int`); a front-end
:class:`~repro.serving.router.Router` broadcasts ingest events to every
shard, fans each query's weigh phase out across the shards, and merges
the per-partition candidate weights into results **bit-identical** to
the single-store :class:`~repro.stream.resolver.StreamResolver` — by
construction, because shards and router execute the same extracted
phase functions (:func:`~repro.stream.resolver.weigh_candidates`,
:func:`~repro.stream.resolver.prune_neighbourhood`,
:func:`~repro.stream.resolver.run_match_phase`) over replicas built
from the same event sequence.

Failure is a first-class input: a :class:`~repro.serving.supervisor.
Supervisor` heartbeat-monitors the shards, retries timed-out requests
with exponential backoff + jitter, hedges slow requests after a
p99-derived delay, respawns dead shards (recovering their state from a
per-shard :class:`~repro.stream.durability.Durability` WAL when
configured, re-driving the missed event suffix either way), and — when
a partition stays unreachable past the retry budget — degrades
gracefully: the router serves the partial merge tagged
``degraded=True`` with per-response coverage accounting instead of
failing the query.

The :mod:`~repro.serving.harness` module drives the tier with an
open-loop (constant-rate) load generator supporting ramp-up, a
declarative fault schedule (``kill:1@t=5``, ``stall:0@t=2:dur=0.8``,
``torn:1@spawn:budget=4096``) and per-period latency tables.
"""

from repro.serving.harness import (
    Fault,
    LoadReport,
    parse_fault,
    run_open_loop,
    spawn_budgets,
)
from repro.serving.local import LocalTier
from repro.serving.partition import owner_of, split_by_owner
from repro.serving.router import (
    RoutedQueryResult,
    Router,
    ServingStats,
    VerificationReport,
    verify_equivalence,
)
from repro.serving.shard import ShardConfig, ShardHandle
from repro.serving.supervisor import (
    DEAD,
    LIVE,
    RECOVERING,
    HedgePolicy,
    RetryPolicy,
    Supervisor,
)

__all__ = [
    "DEAD",
    "Fault",
    "HedgePolicy",
    "LIVE",
    "LoadReport",
    "LocalTier",
    "RECOVERING",
    "RetryPolicy",
    "RoutedQueryResult",
    "Router",
    "ServingStats",
    "ShardConfig",
    "ShardHandle",
    "Supervisor",
    "VerificationReport",
    "owner_of",
    "parse_fault",
    "run_open_loop",
    "spawn_budgets",
    "split_by_owner",
    "verify_equivalence",
]
