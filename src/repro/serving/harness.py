"""Open-loop load harness with a declarative fault schedule.

The generator is wrk2-style open loop: arrivals are scheduled on a
fixed timeline (optionally ramped), and each operation's latency is
measured from its *scheduled* arrival, not from when the loop got
around to issuing it — so a stalled tier shows up as queueing delay
instead of being silently absorbed (the coordinated-omission trap).

Faults are declarative strings, parsed by :func:`parse_fault`::

    kill:1@t=5              SIGKILL shard 1 five seconds in
    kill:1@e=120            ... or right before event #120
    stall:0@t=2:dur=0.8     block shard 0's main loop for 800 ms
    freeze:0@t=3            SIGSTOP shard 0 (alive, heartbeat stale)
    torn:1@spawn:budget=4096  CrashyFiles byte budget at spawn — the
                            shard's durability I/O tears mid-run

``kill``/``stall``/``freeze`` are fired by this harness while driving
load; ``torn`` is armed at spawn time (pass it to the router via
``crash_budgets`` — see :func:`spawn_budgets`), because a torn write is
a property of the shard's file layer, not an external signal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.metrics import Histogram
from repro.serving import messages
from repro.serving.router import Router
from repro.stream.workload import WorkloadEvent

_FAULT_KINDS = ("kill", "stall", "freeze", "torn")


@dataclass
class Fault:
    """One scheduled fault against one shard."""

    kind: str
    shard: int
    at_s: float | None = None
    at_event: int | None = None
    at_spawn: bool = False
    duration_s: float = 0.0
    budget: int | None = None
    fired: bool = False

    def spec(self) -> str:
        """Round-trip back to the declarative string form."""
        if self.at_spawn:
            trigger = "spawn"
        elif self.at_event is not None:
            trigger = f"e={self.at_event}"
        else:
            trigger = f"t={self.at_s:g}"
        text = f"{self.kind}:{self.shard}@{trigger}"
        if self.kind == "stall":
            text += f":dur={self.duration_s:g}"
        if self.kind == "torn":
            text += f":budget={self.budget}"
        return text


def parse_fault(spec: str) -> Fault:
    """Parse one declarative fault spec (see module docstring)."""
    try:
        head, rest = spec.split("@", 1)
        kind, shard_text = head.split(":", 1)
    except ValueError:
        raise ValueError(f"malformed fault spec {spec!r}") from None
    if kind not in _FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} (expected one of {_FAULT_KINDS})"
        )
    fault = Fault(kind=kind, shard=int(shard_text))
    parts = rest.split(":")
    trigger = parts[0]
    if trigger == "spawn":
        fault.at_spawn = True
    elif trigger.startswith("t="):
        fault.at_s = float(trigger[2:])
    elif trigger.startswith("e="):
        fault.at_event = int(trigger[2:])
    else:
        raise ValueError(
            f"malformed fault trigger {trigger!r} (want t=<s>, e=<n> or spawn)"
        )
    for option in parts[1:]:
        key, _, value = option.partition("=")
        if key == "dur":
            fault.duration_s = float(value)
        elif key == "budget":
            fault.budget = int(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {spec!r}")
    if fault.kind == "stall" and fault.duration_s <= 0.0:
        raise ValueError("stall faults need dur=<seconds>")
    if fault.kind == "torn":
        if not fault.at_spawn:
            raise ValueError("torn faults are spawn-time only (use @spawn)")
        if fault.budget is None:
            raise ValueError("torn faults need budget=<bytes>")
    elif fault.at_spawn:
        raise ValueError("@spawn is only valid for torn faults")
    return fault


def spawn_budgets(faults) -> dict[int, int]:
    """The ``Router(crash_budgets=...)`` map for the torn faults."""
    return {f.shard: f.budget for f in faults if f.kind == "torn"}


@dataclass
class LoadReport:
    """Everything one open-loop run measured."""

    duration_s: float
    events: int
    queries: int
    degraded_queries: int
    achieved_eps: float
    target_eps: float
    #: (event index, scheduled time rel. start, latency_s, degraded)
    samples: list[tuple[int, float, float, bool]] = field(repr=False)
    #: harness fault log: (spec, fired-at time rel. start)
    fault_log: list[tuple[str, float]]
    #: ``time.monotonic()`` at loop start — subtract it from supervisor
    #: event times to place deaths/respawns on the report timeline
    start_monotonic: float = 0.0

    def latencies_s(self) -> list[float]:
        return [latency for _, _, latency, _ in self.samples]

    def degraded_after(self, t_s: float) -> int:
        """Degraded responses scheduled at or after *t_s* — the
        "degraded queries after recovery" gate input."""
        return sum(
            1 for _, at, _, degraded in self.samples
            if degraded and at >= t_s
        )

    def period_rows(self, period_s: float = 1.0) -> list[dict[str, str]]:
        """Per-period latency table (nearest-rank percentiles)."""
        buckets: dict[int, Histogram] = {}
        degraded: dict[int, int] = {}
        for _, at, latency, was_degraded in self.samples:
            period = int(at // period_s)
            buckets.setdefault(period, Histogram()).observe(latency)
            degraded[period] = degraded.get(period, 0) + int(was_degraded)
        rows = []
        for period in sorted(buckets):
            hist = buckets[period]
            rows.append({
                "period": f"{period * period_s:.0f}-{(period + 1) * period_s:.0f}s",
                "ops": str(hist.count),
                "p50_ms": f"{hist.p50 * 1e3:.2f}",
                "p90_ms": f"{hist.p90 * 1e3:.2f}",
                "p99_ms": f"{hist.p99 * 1e3:.2f}",
                "degraded": str(degraded[period]),
            })
        return rows


def run_open_loop(
    router: Router,
    events: list[WorkloadEvent],
    rate_eps: float = 200.0,
    ramp_s: float = 0.0,
    faults: tuple[Fault, ...] | list[Fault] = (),
    scheme: str | None = None,
    pruner: str | None = None,
    budget: int | None = None,
) -> LoadReport:
    """Drive *events* through the tier at a scheduled open-loop rate.

    Arrivals integrate a rate that ramps linearly from 10 % to 100 % of
    ``rate_eps`` over ``ramp_s`` seconds.  ``kill``/``stall``/``freeze``
    faults fire from this loop when their time or event-index trigger is
    reached; torn faults must already be armed on the router (see
    :func:`spawn_budgets`).

    The router is left running — shutdown (poison pills) is the
    caller's job, so a report can be followed by verification.
    """
    if rate_eps <= 0:
        raise ValueError("rate_eps must be positive")
    pending = [f for f in faults if not f.at_spawn]
    fault_log: list[tuple[str, float]] = []
    samples: list[tuple[int, float, float, bool]] = []
    queries = degraded_queries = 0

    def rate_at(t: float) -> float:
        if ramp_s <= 0.0 or t >= ramp_s:
            return rate_eps
        return rate_eps * (0.1 + 0.9 * (t / ramp_s))

    def fire(fault: Fault, now_rel: float) -> None:
        fault.fired = True
        handle = router.shards[fault.shard]
        if fault.kind == "kill":
            handle.kill()
        elif fault.kind == "freeze":
            handle.freeze()
        elif fault.kind == "stall":
            handle.send(messages.Stall(fault.duration_s))
        fault_log.append((fault.spec(), now_rel))

    start = time.monotonic()
    scheduled = 0.0
    for index, event in enumerate(events):
        for fault in pending:
            if (
                not fault.fired
                and fault.at_event is not None
                and index >= fault.at_event
            ):
                fire(fault, time.monotonic() - start)
        while True:
            now_rel = time.monotonic() - start
            for fault in pending:
                if (
                    not fault.fired
                    and fault.at_s is not None
                    and now_rel >= fault.at_s
                ):
                    fire(fault, now_rel)
            if now_rel >= scheduled:
                break
            # Idle until the next arrival; keep supervision moving so
            # respawns are not deferred to the next operation.
            router.pump()
            time.sleep(min(scheduled - now_rel, 0.002))

        if event.kind == "delete":
            router.delete(event.description.uri)
        else:
            # Both inserts and explicit queries resolve (streaming ER:
            # every arriving description is matched on arrival).
            result = router.resolve(
                event.description,
                source=event.source,
                scheme=scheme,
                pruner=pruner,
                budget=budget,
                ingest=event.kind == "insert",
            )
            latency = (time.monotonic() - start) - scheduled
            samples.append((index, scheduled, latency, result.degraded))
            queries += 1
            degraded_queries += int(result.degraded)
        scheduled += 1.0 / rate_at(scheduled)

    duration = time.monotonic() - start
    return LoadReport(
        duration_s=duration,
        events=len(events),
        queries=queries,
        degraded_queries=degraded_queries,
        achieved_eps=len(events) / duration if duration > 0 else 0.0,
        target_eps=rate_eps,
        samples=samples,
        fault_log=fault_log,
        start_monotonic=start,
    )
