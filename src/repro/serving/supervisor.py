"""Shard supervision: liveness, retry/hedge policy, respawn.

The supervisor is deliberately single-threaded: the router calls
:meth:`Supervisor.tick` from its own loop (every ingest, every poll
iteration while waiting on answers), so death detection, respawn and
re-drive interleave deterministically with the request stream — a
respawned shard's catch-up events are enqueued *before* the shard is
marked live, and FIFO queue ordering then guarantees any later query
sees the caught-up state.

Two distinct failure signals:

* **dead** — the process is gone (``is_alive()`` false).  A SIGKILL,
  an injected torn write, an OOM.
* **stuck** — the process is alive but its heartbeat is stale past the
  deadline (a SIGSTOP freeze, a hard hang).  The supervisor SIGKILLs it
  into the dead path; a merely *slow* shard keeps beating (the
  heartbeat lives on its own thread) and is the hedging policy's
  problem, not the respawn path's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs import DISABLED
from repro.utils.rng import deterministic_rng

#: supervision states
LIVE = "live"
RECOVERING = "recovering"
DEAD = "dead"


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    ``attempts`` counts *re*-sends: a request is sent once and retried
    at most ``attempts`` more times before its partition is given up.
    """

    attempts: int = 2
    timeout_s: float = 2.0
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    jitter: float = 0.25

    def backoff_s(self, attempt: int, rng) -> float:
        """Delay before re-send number *attempt* (1-based)."""
        delay = min(self.base_delay_s * (2 ** (attempt - 1)), self.max_delay_s)
        return delay * (1.0 + self.jitter * rng.random())


@dataclass
class HedgePolicy:
    """Duplicate slow requests to a second shard after a p99 delay.

    Until ``min_samples`` shard latencies are observed the hedge fires
    after ``default_delay_s``; afterwards after ``multiplier`` × the
    observed ``quantile`` latency, floored at ``min_delay_s``.  The
    first answer wins; the loser is ignored.
    """

    enabled: bool = True
    quantile: float = 0.99
    multiplier: float = 2.0
    min_delay_s: float = 0.01
    default_delay_s: float = 0.08
    min_samples: int = 20

    def delay_s(self, sorted_latencies: list[float]) -> float:
        if len(sorted_latencies) < self.min_samples:
            return self.default_delay_s
        index = min(
            int(self.quantile * len(sorted_latencies)),
            len(sorted_latencies) - 1,
        )
        return max(self.min_delay_s, self.multiplier * sorted_latencies[index])


class Supervisor:
    """Heartbeat monitoring + automatic respawn over a shard set.

    Args:
        shards: the :class:`~repro.serving.shard.ShardHandle` list.
        heartbeat_deadline_s: stale-heartbeat threshold past which an
            alive process is declared stuck and killed.
        auto_respawn: respawn dead shards (False = leave them dead, the
            degraded-service study configuration).
        max_respawns: per-shard lifetime respawn budget — a crash-looping
            shard (e.g. corrupt state directory) is eventually left dead
            instead of flapping forever.
        retry / hedge: the request-level policies (the router applies
            them; they live here so one object owns all robustness
            knobs).
        on_respawn: callback ``(shard_id, recovered_version)`` invoked
            when a respawned shard reports ready, *before* it is marked
            live — the router re-drives the missed suffix here.
        stats: optional :class:`~repro.serving.router.ServingStats`.
        seed: jitter RNG seed (deterministic backoff sequences).
    """

    def __init__(
        self,
        shards,
        heartbeat_deadline_s: float = 2.0,
        auto_respawn: bool = True,
        max_respawns: int = 10,
        retry: RetryPolicy | None = None,
        hedge: HedgePolicy | None = None,
        on_respawn=None,
        stats=None,
        obs=None,
        seed: int = 17,
        min_tick_interval_s: float = 0.005,
    ) -> None:
        self.shards = list(shards)
        self.heartbeat_deadline_s = heartbeat_deadline_s
        self.auto_respawn = auto_respawn
        self.max_respawns = max_respawns
        self.retry = retry or RetryPolicy()
        self.hedge = hedge or HedgePolicy()
        self.on_respawn = on_respawn
        self.stats = stats
        self.obs = obs if obs is not None else DISABLED
        self.rng = deterministic_rng(seed, "serving-supervisor")
        self.min_tick_interval_s = min_tick_interval_s
        self._last_tick = 0.0
        #: (shard_id, event, monotonic time) health-event log
        self.events: list[tuple[int, str, float]] = []

    # -- liveness ------------------------------------------------------------

    def tick(self, now: float | None = None, force: bool = False) -> None:
        """One supervision pass; throttled to ``min_tick_interval_s``."""
        now = now if now is not None else time.monotonic()
        if not force and now - self._last_tick < self.min_tick_interval_s:
            return
        self._last_tick = now
        for handle in self.shards:
            if handle.state == DEAD:
                continue
            if not handle.is_alive():
                self._mark_dead(handle, now, "died")
            elif (
                handle.state == LIVE
                and handle.heartbeat_age_s(now) > self.heartbeat_deadline_s
            ):
                # Alive but silent past the deadline: stuck, not slow.
                handle.kill()
                self._mark_dead(handle, now, "stuck")

    def _mark_dead(self, handle, now: float, cause: str) -> None:
        was_recovering = handle.state == RECOVERING
        handle.state = DEAD
        if handle.down_since is None:
            handle.down_since = now
        self.events.append((handle.shard_id, cause, now))
        if self.stats is not None:
            self.stats.shard_deaths += 1
        self.obs.count("repro.serving.shard.dead.count")
        if self.auto_respawn:
            # A shard that keeps dying during recovery burns through the
            # respawn budget and stays dead — no infinite flap loop.
            if was_recovering and handle.spawn_count >= self.max_respawns:
                self.events.append((handle.shard_id, "gave-up", now))
                return
            self.respawn(handle)

    def respawn(self, handle) -> None:
        """Fork a replacement process (state becomes RECOVERING)."""
        handle.spawn()
        self.events.append((handle.shard_id, "respawn", time.monotonic()))
        if self.stats is not None:
            self.stats.respawns += 1
        self.obs.count("repro.serving.respawn.count")

    def on_ready(self, shard_id: int, version: int) -> None:
        """A (re)spawned shard reported ready: re-drive, then go live."""
        handle = self.shards[shard_id]
        if handle.state != RECOVERING:
            return
        if self.on_respawn is not None:
            self.on_respawn(shard_id, version)
        handle.state = LIVE
        now = time.monotonic()
        self.events.append((shard_id, "live", now))
        if handle.down_since is not None:
            healthy_s = now - handle.down_since
            handle.down_since = None
            if self.stats is not None:
                self.stats.time_to_healthy_hist.observe(healthy_s)
            self.obs.observe(
                "repro.serving.time.to.healthy.seconds", healthy_s
            )

    # -- routing helpers -----------------------------------------------------

    def live_ids(self) -> list[int]:
        return [h.shard_id for h in self.shards if h.state == LIVE]

    def pick_other(self, exclude) -> int | None:
        """Lowest-id live shard not in *exclude* (deterministic)."""
        for handle in self.shards:
            if handle.state == LIVE and handle.shard_id not in exclude:
                return handle.shard_id
        return None

    def all_live(self) -> bool:
        return all(h.state == LIVE for h in self.shards)
