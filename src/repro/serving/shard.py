"""One shard: a forked worker process serving the weigh plane.

The child process owns a full streaming replica — store, incremental
block index, delta pair table — built by applying the router's ingest
broadcast in sequence (or recovered from a per-shard WAL + snapshot
directory after a crash), and answers weigh queries for the candidate
partitions it is asked to serve.  A daemon thread beats a shared
heartbeat cell so the supervisor can tell *stuck* (alive, stale
heartbeat) from *slow* (alive, beating, main loop busy) from *dead*.

:class:`ShardHandle` is the parent-side view: it owns the queues,
spawns/kills/respawns the process, and tracks the supervision state.
Queues are remade on every spawn — a SIGKILLed process can leave a torn
pickle in its response stream, and the replacement must start clean.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.blocking.base import Blocker
from repro.serving import messages
from repro.stream.durability import (
    CrashError,
    CrashyFiles,
    Durability,
    recover as recover_state,
)
from repro.stream.index import IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.resolver import weigh_candidates
from repro.stream.store import StreamingEntityStore
from repro.utils.rng import stable_hash_int

#: seconds between heartbeat updates in the child
DEFAULT_HEARTBEAT_INTERVAL_S = 0.05


@dataclass
class ShardConfig:
    """Everything a shard process needs to build (or rebuild) itself."""

    shard_id: int
    n_partitions: int
    sources: tuple[str, ...] = ("kb1", "kb2")
    blocker: Blocker | None = None
    #: per-shard WAL + snapshot directory (None = in-memory only; a
    #: respawned in-memory shard starts empty and is fully re-driven)
    durability_dir: str | None = None
    fsync_every: int = 1
    snapshot_every: int | None = None
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    #: torn-write fault injection: CrashyFiles byte budget for this
    #: spawn's durability I/O (None = plain OS files)
    crash_budget: int | None = None


def _beat(heartbeat, interval_s: float) -> None:
    while True:
        heartbeat.value = time.monotonic()
        time.sleep(interval_s)


def _build_state(config: ShardConfig, files):
    """Fresh or WAL-recovered replica; returns (store, index, pairs,

    durability, recovered_events)."""
    if config.durability_dir is not None:
        try:
            result = recover_state(
                config.durability_dir, blocker=config.blocker, files=files
            )
            store, index, pairs = result.store, result.index, result.pairs
            recovered = store.version
        except FileNotFoundError:
            store = StreamingEntityStore(sources=config.sources)
            index = IncrementalBlockIndex(store, config.blocker)
            pairs = DeltaPairTable(index)
            recovered = 0
        controller = Durability(
            config.durability_dir,
            fsync_every=config.fsync_every,
            snapshot_every=config.snapshot_every,
            files=files,
        )
        controller.bind(store, index, pairs)
        return store, index, pairs, controller, recovered
    store = StreamingEntityStore(sources=config.sources)
    index = IncrementalBlockIndex(store, config.blocker)
    pairs = DeltaPairTable(index)
    return store, index, pairs, None, 0


class _Shutdown(Exception):
    """Raised by the SIGTERM handler to unwind into the clean exit."""


def shard_main(config: ShardConfig, request_queue, response_queue, heartbeat) -> None:
    """The shard process entry point (runs in the forked child).

    Applies ingest messages in arrival order, answers weigh queries for
    the requested partitions, and exits cleanly on a :class:`~repro.
    serving.messages.Stop` pill or SIGTERM (durability synced — the
    supervised-shutdown path is always recovery-clean).  An injected
    :class:`~repro.stream.durability.CrashError` (torn write) kills the
    process like a power cut would: no sync, non-zero exit, recovery
    left to the WAL.
    """

    def _on_sigterm(_signum, _frame):
        raise _Shutdown()

    signal.signal(signal.SIGTERM, _on_sigterm)
    files = (
        CrashyFiles(config.crash_budget)
        if config.crash_budget is not None
        else None
    )
    try:
        store, index, pairs, durability, recovered = _build_state(config, files)
    except CrashError:
        os._exit(1)

    threading.Thread(
        target=_beat,
        args=(heartbeat, config.heartbeat_interval_s),
        daemon=True,
    ).start()
    response_queue.put(
        messages.Ready(config.shard_id, store.version, recovered)
    )

    try:
        while True:
            message = request_queue.get()
            if isinstance(message, messages.Ingest):
                if message.op == "insert":
                    store.insert(message.description, message.source)
                else:
                    store.delete(message.uri)
            elif isinstance(message, messages.Query):
                response_queue.put(_answer(message, config, store, index, pairs))
            elif isinstance(message, messages.Sync):
                response_queue.put(
                    messages.Synced(
                        message.sync_id, config.shard_id, store.version
                    )
                )
            elif isinstance(message, messages.Stall):
                time.sleep(message.seconds)
            elif isinstance(message, messages.Stop):
                if durability is not None:
                    durability.close()
                response_queue.put(messages.Stopped(config.shard_id))
                return
    except _Shutdown:
        if durability is not None:
            durability.close()
        response_queue.put(messages.Stopped(config.shard_id))
    except CrashError:
        # Injected torn write: die like a crash (no durability sync).
        os._exit(1)


def _answer(
    query: messages.Query,
    config: ShardConfig,
    store: StreamingEntityStore,
    index: IncrementalBlockIndex,
    pairs: DeltaPairTable,
) -> messages.Answer:
    """Weigh the query's candidates owned by the requested partitions."""
    entity_id = store.interner.get(query.uri, -1)
    uris = store.interner.uri_table()
    wanted = set(query.partitions)
    if entity_id >= 0:
        owned = [
            candidate_id
            for candidate_id in index.partners_of(entity_id)
            if stable_hash_int(candidate_id, config.n_partitions) in wanted
        ]
        weights = weigh_candidates(
            pairs, uris, query.uri, entity_id, owned, query.scheme
        )
    else:
        weights = {}
    return messages.Answer(
        request_id=query.request_id,
        shard_id=config.shard_id,
        partitions=query.partitions,
        weights=weights,
        entities_placed=pairs.entities_placed,
        total_assignments=pairs.total_assignments,
        version=store.version,
    )


class ShardHandle:
    """Parent-side handle: process lifecycle + queues + liveness probes."""

    def __init__(self, config: ShardConfig, context) -> None:
        self.config = config
        self.context = context
        self.process = None
        self.request_queue = None
        self.response_queue = None
        self.heartbeat = None
        #: supervision state (owned by the Supervisor): "live",
        #: "recovering" or "dead"
        self.state = "dead"
        self.spawn_count = 0
        #: monotonic time the current outage was detected (None = none)
        self.down_since: float | None = None

    @property
    def shard_id(self) -> int:
        return self.config.shard_id

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def spawn(self, crash_budget: int | None = None) -> None:
        """Fork a fresh shard process with fresh queues.

        ``crash_budget`` arms a :class:`~repro.stream.durability.
        CrashyFiles` byte budget in the child (torn-write fault
        injection); it applies to this spawn only — a respawn after the
        injected crash gets plain OS files again.
        """
        self.request_queue = self.context.Queue()
        self.response_queue = self.context.Queue()
        self.heartbeat = self.context.Value("d", time.monotonic())
        # The budget rides on a per-spawn copy so the fault never
        # outlives the spawn it was scheduled for.
        config = ShardConfig(**{**self.config.__dict__, "crash_budget": crash_budget})
        self.process = self.context.Process(
            target=shard_main,
            args=(config, self.request_queue, self.response_queue, self.heartbeat),
            daemon=True,
        )
        self.process.start()
        self.spawn_count += 1
        self.state = "recovering"

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def heartbeat_age_s(self, now: float | None = None) -> float:
        """Seconds since the child last beat (inf before first spawn)."""
        if self.heartbeat is None:
            return float("inf")
        return (now if now is not None else time.monotonic()) - self.heartbeat.value

    def send(self, message) -> None:
        self.request_queue.put(message)

    def kill(self) -> None:
        """SIGKILL the process (fault injection / stuck-shard recovery)."""
        if self.process is not None and self.process.is_alive():
            os.kill(self.process.pid, signal.SIGKILL)
        if self.process is not None:
            self.process.join(timeout=5.0)

    def freeze(self) -> None:
        """SIGSTOP the process: alive but silent (stale heartbeat)."""
        if self.process is not None and self.process.is_alive():
            os.kill(self.process.pid, signal.SIGSTOP)

    def stop(self, timeout_s: float = 10.0) -> bool:
        """Poison-pill shutdown; True when the process exited in time."""
        if self.process is None:
            return True
        if self.process.is_alive():
            try:
                self.send(messages.Stop())
            except (ValueError, OSError):  # pragma: no cover - queue closed
                pass
            self.process.join(timeout=timeout_s)
        if self.process.is_alive():
            self.kill()
            return False
        return True
