"""The queue protocol between the router and its shard processes.

Requests travel on a per-shard request queue (FIFO — ingest-before-
query ordering is the protocol's consistency guarantee), responses on a
per-shard response queue (one writer per queue, so a SIGKILLed shard
can corrupt at most its own stream, which the respawn replaces).  All
message types are plain frozen dataclasses of picklable fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.description import EntityDescription

# -- requests: router → shard -------------------------------------------------


@dataclass(frozen=True)
class Ingest:
    """Apply one store mutation.  ``op`` is ``"insert"`` or ``"delete"``."""

    seq: int
    op: str
    description: EntityDescription | None
    uri: str | None
    source: int


@dataclass(frozen=True)
class Query:
    """Weigh the query's candidates falling into *partitions*."""

    request_id: int
    partitions: tuple[int, ...]
    uri: str
    source: int
    scheme: str


@dataclass(frozen=True)
class Sync:
    """Barrier probe: answer with the shard's applied store version."""

    sync_id: int


@dataclass(frozen=True)
class Stall:
    """Fault injection: block the shard's main loop for *seconds*.

    The heartbeat thread keeps beating, so the shard looks alive but
    slow — the shape hedging exists for.
    """

    seconds: float


@dataclass(frozen=True)
class Stop:
    """Poison pill: close durability cleanly and exit the main loop."""


# -- responses: shard → router ------------------------------------------------


@dataclass(frozen=True)
class Ready:
    """Sent once per (re)spawn after state is (re)built.

    ``version`` is the store version the shard recovered to — the
    router re-drives every logged event past it.
    """

    shard_id: int
    version: int
    recovered_events: int


@dataclass(frozen=True)
class Answer:
    """One query's per-partition weigh result.

    ``weights`` maps candidate entity id → scheme weight for the
    candidates owned by ``partitions``; ``entities_placed`` /
    ``total_assignments`` are the global placement aggregates the
    router's CNP pruning needs (identical on every replica).
    """

    request_id: int
    shard_id: int
    partitions: tuple[int, ...]
    weights: dict[int, float]
    entities_placed: int
    total_assignments: int
    version: int


@dataclass(frozen=True)
class Synced:
    """Barrier acknowledgement for one :class:`Sync` probe."""

    sync_id: int
    shard_id: int
    version: int


@dataclass(frozen=True)
class Stopped:
    """Clean-shutdown acknowledgement to a :class:`Stop` pill."""

    shard_id: int
