"""Entity-id partitioning of the candidate space.

The tier splits query-time work, not state: every shard replicates the
full streaming state (the six weighting schemes all need global
statistics — placements, degrees, block activity, TF-IDF mass — so a
state split would change the weights), and each shard *serves* only the
candidates whose entity id hashes into its partitions.  The hash is the
same process-stable splitmix64 the MapReduce layer partitions by, so
ownership is identical in every process and across runs.

Replication is also what makes failover possible: any live shard can
serve any partition, because it holds the state for all of them.
"""

from __future__ import annotations

from typing import Iterable

from repro.utils.rng import stable_hash_int


def owner_of(entity_id: int, n_partitions: int) -> int:
    """The partition (home shard ordinal) owning *entity_id*."""
    return stable_hash_int(entity_id, n_partitions)


def split_by_owner(
    candidate_ids: Iterable[int], n_partitions: int
) -> dict[int, list[int]]:
    """Group candidate ids by owning partition (order preserved).

    Every partition appears in the result, empty or not — the router's
    coverage accounting counts partitions, not candidates, so "this
    partition answered and had nothing" and "this partition is down"
    must stay distinguishable.
    """
    split: dict[int, list[int]] = {p: [] for p in range(n_partitions)}
    for candidate_id in candidate_ids:
        split[owner_of(candidate_id, n_partitions)].append(candidate_id)
    return split
