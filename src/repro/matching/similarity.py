"""Similarity functions and the corpus-aware similarity index.

Schema-agnostic ER compares descriptions as bags of tokens: set-based
measures (Jaccard, dice, overlap) capture "highly similar" descriptions
with many common tokens, while TF-IDF cosine keeps rare, discriminative
tokens informative for "somehow similar" descriptions that share only a
few.  Character-level measures (Levenshtein, Jaro-Winkler) serve the
value-level comparisons used by some baselines and tests.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from repro.model.collection import EntityCollection
from repro.model.tokenizer import Tokenizer


# -- set-based token measures ---------------------------------------------------


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard coefficient of two token collections (as sets)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union if union else 0.0


def dice(a: Iterable[str], b: Iterable[str]) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = set(a), set(b)
    total = len(set_a) + len(set_b)
    if total == 0:
        return 0.0
    return 2 * len(set_a & set_b) / total


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """Overlap coefficient: intersection over the smaller set."""
    set_a, set_b = set(a), set(b)
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


def weighted_jaccard(a: Counter, b: Counter) -> float:
    """Weighted (multiset) Jaccard: Σ min / Σ max over token counts."""
    if not a and not b:
        return 0.0
    keys = set(a) | set(b)
    minimum = sum(min(a.get(k, 0), b.get(k, 0)) for k in keys)
    maximum = sum(max(a.get(k, 0), b.get(k, 0)) for k in keys)
    return minimum / maximum if maximum else 0.0


def cosine_tfidf(a: Counter, b: Counter, idf: dict[str, float] | None = None) -> float:
    """Cosine similarity of TF(-IDF) vectors built from token counts.

    Args:
        idf: token → inverse document frequency; if None, raw term counts
            are used (plain cosine).
    """
    if not a or not b:
        return 0.0

    def vector(counts: Counter) -> dict[str, float]:
        if idf is None:
            return {t: float(c) for t, c in counts.items()}
        return {t: c * idf.get(t, 0.0) for t, c in counts.items()}

    va, vb = vector(a), vector(b)
    dot = sum(w * vb.get(t, 0.0) for t, w in va.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in va.values()))
    norm_b = math.sqrt(sum(w * w for w in vb.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


# -- character-based measures ------------------------------------------------------


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (iterative two-row DP)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity: ``1 − distance / max(len)``."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity of two strings."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len_b)
        for j in range(start, end):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity (common-prefix boost up to 4 characters)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


# -- corpus-aware index ----------------------------------------------------------------


class SimilarityIndex:
    """Caches token profiles and IDF weights over entity collections.

    Matching runs millions of pairwise similarity calls over the same
    descriptions; tokenizing on every call would dominate the cost.  The
    index tokenizes each description once, precomputes IDF over the indexed
    corpus and exposes pairwise measures by URI.

    Args:
        collections: the collections whose descriptions will be compared.
        tokenizer: shared tokenizer (defaults to the blocking tokenizer so
            "similarity" and "common blocking token" agree).
    """

    def __init__(
        self,
        collections: Iterable[EntityCollection],
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
        self._counts: dict[str, Counter] = {}
        self._sets: dict[str, frozenset[str]] = {}
        document_frequency: Counter = Counter()
        for collection in collections:
            for description in collection:
                counts = self.tokenizer.token_counts(description)
                self._counts[description.uri] = counts
                tokens = frozenset(counts)
                self._sets[description.uri] = tokens
                document_frequency.update(tokens)
        corpus_size = max(len(self._counts), 1)
        # Smoothed IDF (log((1+N)/(1+df)) + 1): a token present in every
        # description keeps a small positive weight instead of zeroing the
        # whole vector — essential on small or homogeneous corpora.
        self._idf = {
            token: math.log((1 + corpus_size) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        # TF-IDF vectors and their norms, computed once per description:
        # cosine() then only needs the sparse dot product, instead of
        # rebuilding both vectors and both norms on every pairwise call.
        self._vectors: dict[str, dict[str, float]] = {}
        self._norms: dict[str, float] = {}
        idf = self._idf
        for uri, counts in self._counts.items():
            vector = {token: count * idf[token] for token, count in counts.items()}
            self._vectors[uri] = vector
            self._norms[uri] = math.sqrt(sum(w * w for w in vector.values()))

    def __contains__(self, uri: str) -> bool:
        return uri in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def tokens_of(self, uri: str) -> frozenset[str]:
        """Distinct tokens of the description with *uri*.

        Raises:
            KeyError: for unindexed URIs.
        """
        return self._sets[uri]

    def idf(self, token: str) -> float:
        """IDF of *token* over the indexed corpus (0.0 if unseen)."""
        return self._idf.get(token, 0.0)

    def jaccard(self, uri_a: str, uri_b: str) -> float:
        """Jaccard similarity of two indexed descriptions."""
        return jaccard(self._sets[uri_a], self._sets[uri_b])

    def weighted_jaccard(self, uri_a: str, uri_b: str) -> float:
        """Multiset Jaccard of two indexed descriptions."""
        return weighted_jaccard(self._counts[uri_a], self._counts[uri_b])

    def cosine(self, uri_a: str, uri_b: str) -> float:
        """TF-IDF cosine of two indexed descriptions.

        Uses the vectors and norms precomputed at construction; the
        result is identical to ``cosine_tfidf`` over the raw counts.
        """
        vector_a, vector_b = self._vectors[uri_a], self._vectors[uri_b]
        if not vector_a or not vector_b:
            return 0.0
        get_b = vector_b.get
        dot = sum(w * get_b(t, 0.0) for t, w in vector_a.items())
        if dot == 0.0:
            return 0.0
        norm_a, norm_b = self._norms[uri_a], self._norms[uri_b]
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)

    def common_tokens(self, uri_a: str, uri_b: str) -> frozenset[str]:
        """Tokens the two descriptions share."""
        return self._sets[uri_a] & self._sets[uri_b]
