"""Similarity functions and the corpus-aware similarity index.

Schema-agnostic ER compares descriptions as bags of tokens: set-based
measures (Jaccard, dice, overlap) capture "highly similar" descriptions
with many common tokens, while TF-IDF cosine keeps rare, discriminative
tokens informative for "somehow similar" descriptions that share only a
few.  Character-level measures (Levenshtein, Jaro-Winkler) serve the
value-level comparisons used by some baselines and tests.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised through cosine_many's fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.model.collection import EntityCollection
from repro.model.tokenizer import Tokenizer


# -- set-based token measures ---------------------------------------------------


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard coefficient of two token collections (as sets)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union if union else 0.0


def dice(a: Iterable[str], b: Iterable[str]) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = set(a), set(b)
    total = len(set_a) + len(set_b)
    if total == 0:
        return 0.0
    return 2 * len(set_a & set_b) / total


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """Overlap coefficient: intersection over the smaller set."""
    set_a, set_b = set(a), set(b)
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


def weighted_jaccard(a: Counter, b: Counter) -> float:
    """Weighted (multiset) Jaccard: Σ min / Σ max over token counts."""
    if not a and not b:
        return 0.0
    keys = set(a) | set(b)
    minimum = sum(min(a.get(k, 0), b.get(k, 0)) for k in keys)
    maximum = sum(max(a.get(k, 0), b.get(k, 0)) for k in keys)
    return minimum / maximum if maximum else 0.0


def cosine_tfidf(a: Counter, b: Counter, idf: dict[str, float] | None = None) -> float:
    """Cosine similarity of TF(-IDF) vectors built from token counts.

    Args:
        idf: token → inverse document frequency; if None, raw term counts
            are used (plain cosine).
    """
    if not a or not b:
        return 0.0

    def vector(counts: Counter) -> dict[str, float]:
        if idf is None:
            return {t: float(c) for t, c in counts.items()}
        return {t: c * idf.get(t, 0.0) for t, c in counts.items()}

    va, vb = vector(a), vector(b)
    dot = sum(w * vb.get(t, 0.0) for t, w in va.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in va.values()))
    norm_b = math.sqrt(sum(w * w for w in vb.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


# -- character-based measures ------------------------------------------------------


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (iterative two-row DP)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity: ``1 − distance / max(len)``."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity of two strings."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len_b)
        for j in range(start, end):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity (common-prefix boost up to 4 characters)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


# -- corpus-aware index ----------------------------------------------------------------


class SimilarityIndex:
    """Caches token profiles and IDF weights over entity collections.

    Matching runs millions of pairwise similarity calls over the same
    descriptions; tokenizing on every call would dominate the cost.  The
    index tokenizes each description once, precomputes IDF over the indexed
    corpus and exposes pairwise measures by URI.

    Args:
        collections: the collections whose descriptions will be compared.
        tokenizer: shared tokenizer (defaults to the blocking tokenizer so
            "similarity" and "common blocking token" agree).
    """

    def __init__(
        self,
        collections: Iterable[EntityCollection],
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
        self._counts: dict[str, Counter] = {}
        self._sets: dict[str, frozenset[str]] = {}
        document_frequency: Counter = Counter()
        for collection in collections:
            for description in collection:
                counts = self.tokenizer.token_counts(description)
                self._counts[description.uri] = counts
                tokens = frozenset(counts)
                self._sets[description.uri] = tokens
                document_frequency.update(tokens)
        corpus_size = max(len(self._counts), 1)
        # Smoothed IDF (log((1+N)/(1+df)) + 1): a token present in every
        # description keeps a small positive weight instead of zeroing the
        # whole vector — essential on small or homogeneous corpora.
        self._idf = {
            token: math.log((1 + corpus_size) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        # TF-IDF vectors and their norms, computed once per description:
        # cosine() then only needs the sparse dot product, instead of
        # rebuilding both vectors and both norms on every pairwise call.
        self._vectors: dict[str, dict[str, float]] = {}
        self._norms: dict[str, float] = {}
        idf = self._idf
        for uri, counts in self._counts.items():
            vector = {token: count * idf[token] for token, count in counts.items()}
            self._vectors[uri] = vector
            self._norms[uri] = math.sqrt(sum(w * w for w in vector.values()))
        # Int-token arrays for the vectorized batch path, built lazily on
        # the first cosine_many() call (None until then).
        self._token_ids: dict[str, int] | None = None
        self._id_vectors: dict[str, tuple] | None = None

    def __contains__(self, uri: str) -> bool:
        return uri in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def tokens_of(self, uri: str) -> frozenset[str]:
        """Distinct tokens of the description with *uri*.

        Raises:
            KeyError: for unindexed URIs.
        """
        return self._sets[uri]

    def idf(self, token: str) -> float:
        """IDF of *token* over the indexed corpus (0.0 if unseen)."""
        return self._idf.get(token, 0.0)

    def jaccard(self, uri_a: str, uri_b: str) -> float:
        """Jaccard similarity of two indexed descriptions."""
        return jaccard(self._sets[uri_a], self._sets[uri_b])

    def weighted_jaccard(self, uri_a: str, uri_b: str) -> float:
        """Multiset Jaccard of two indexed descriptions."""
        return weighted_jaccard(self._counts[uri_a], self._counts[uri_b])

    def cosine(self, uri_a: str, uri_b: str) -> float:
        """TF-IDF cosine of two indexed descriptions.

        Uses the vectors and norms precomputed at construction; the
        result is identical to ``cosine_tfidf`` over the raw counts.
        """
        vector_a, vector_b = self._vectors[uri_a], self._vectors[uri_b]
        if not vector_a or not vector_b:
            return 0.0
        get_b = vector_b.get
        dot = sum(w * get_b(t, 0.0) for t, w in vector_a.items())
        if dot == 0.0:
            return 0.0
        norm_a, norm_b = self._norms[uri_a], self._norms[uri_b]
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)

    def common_tokens(self, uri_a: str, uri_b: str) -> frozenset[str]:
        """Tokens the two descriptions share."""
        return self._sets[uri_a] & self._sets[uri_b]

    # -- batch scoring -------------------------------------------------------

    def _ensure_id_vectors(self):
        """Token-interned (ids, weights) arrays per URI, in vector order.

        The arrays preserve each vector's insertion order — cosine_many
        accumulates dot products in exactly the order :meth:`cosine`
        iterates them, which is what keeps the two bit-identical.
        """
        if self._id_vectors is None:
            token_ids: dict[str, int] = {}
            id_vectors: dict[str, tuple] = {}
            for uri, vector in self._vectors.items():
                ids = [
                    token_ids.setdefault(token, len(token_ids)) for token in vector
                ]
                id_vectors[uri] = (
                    _np.array(ids, dtype=_np.int64),
                    _np.fromiter(
                        vector.values(), dtype=_np.float64, count=len(vector)
                    ),
                )
            self._token_ids = token_ids
            self._id_vectors = id_vectors
        return self._id_vectors

    def cosine_many(self, left: Sequence[str], right: Sequence[str]):
        """TF-IDF cosine of ``zip(left, right)`` pairs in one vectorized pass.

        The hot loop of matching scores every pruned edge; calling
        :meth:`cosine` per pair re-walks two Python dicts each time.
        This method joins all pairs' sparse vectors at once: token ids of
        both sides are matched with one sort + searchsorted, the matched
        products are accumulated per pair with ``bincount`` in each left
        vector's insertion order, so every score is **bit-identical** to
        the scalar :meth:`cosine` result.  Returns a ``float64`` array
        (a plain list when numpy is unavailable).

        Raises:
            ValueError: when the two sequences differ in length.
            KeyError: for unindexed URIs.
        """
        if len(left) != len(right):
            raise ValueError("left and right must have equal length")
        if _np is None:
            return [self.cosine(a, b) for a, b in zip(left, right)]
        count = len(left)
        if count == 0:
            return _np.empty(0, dtype=_np.float64)
        vectors = self._ensure_id_vectors()
        norms = _np.fromiter(
            (self._norms[a] * self._norms[b] for a, b in zip(left, right)),
            _np.float64,
            count,
        )
        assert self._token_ids is not None
        return cosine_many_vectors(
            [vectors[uri] for uri in left],
            [vectors[uri] for uri in right],
            norms,
            len(self._token_ids),
        )


def cosine_many_vectors(left_vecs: list, right_vecs: list, norms, vocab_size: int):
    """Vectorized pairwise sparse cosine over (token-ids, weights) arrays.

    Args:
        left_vecs / right_vecs: per-pair ``(int64 ids, float64 weights)``
            tuples, ids in vector insertion order and distinct within
            each vector.
        norms: per-pair product of the two endpoint norms (float64).
        vocab_size: exclusive upper bound on token ids.

    Tokens being distinct within a vector, each (pair, token) key occurs
    at most once per side; one sorted-side searchsorted join finds every
    match, and ``bincount`` accumulates the matched products in the left
    vector's insertion order — mirroring the scalar dot's running sum
    (whose unmatched terms add exact zeros), which keeps the result
    bit-identical to per-pair scoring.  Requires numpy.
    """
    np = _np
    count = len(left_vecs)
    sizes_l = np.fromiter((len(v[0]) for v in left_vecs), np.int64, count)
    sizes_r = np.fromiter((len(v[0]) for v in right_vecs), np.int64, count)
    pair_l = np.repeat(np.arange(count), sizes_l)
    tok_l = (
        np.concatenate([v[0] for v in left_vecs])
        if len(pair_l)
        else np.empty(0, dtype=np.int64)
    )
    w_l = (
        np.concatenate([v[1] for v in left_vecs])
        if len(pair_l)
        else np.empty(0, dtype=np.float64)
    )
    pair_r = np.repeat(np.arange(count), sizes_r)
    tok_r = (
        np.concatenate([v[0] for v in right_vecs])
        if len(pair_r)
        else np.empty(0, dtype=np.int64)
    )
    w_r = (
        np.concatenate([v[1] for v in right_vecs])
        if len(pair_r)
        else np.empty(0, dtype=np.float64)
    )
    vocab = max(vocab_size, 1)
    key_l = pair_l * vocab + tok_l
    key_r = pair_r * vocab + tok_r
    order_r = np.argsort(key_r, kind="stable")
    sorted_r = key_r[order_r]
    slot = np.searchsorted(sorted_r, key_l)
    slot_clipped = np.minimum(slot, max(len(sorted_r) - 1, 0))
    matched = (
        (sorted_r[slot_clipped] == key_l)
        if len(sorted_r)
        else np.zeros(len(key_l), dtype=bool)
    )
    products = w_l[matched] * w_r[order_r[slot_clipped[matched]]]
    dots = np.bincount(pair_l[matched], weights=products, minlength=count)
    scores = np.zeros(count, dtype=np.float64)
    np.divide(dots, norms, out=scores, where=(dots != 0.0) & (norms != 0.0))
    return scores
