"""Entity matching: similarity computation and match decisions.

The matching phase receives candidate pairs (from blocking/meta-blocking,
ordered by the scheduler) and decides whether each pair co-refers.  The
package provides:

* :mod:`repro.matching.similarity` — schema-agnostic token and string
  similarity functions (Jaccard, TF-IDF cosine, dice, overlap,
  Levenshtein, Jaro-Winkler) plus a corpus-aware :class:`SimilarityIndex`
  that caches token profiles and IDF statistics;
* :mod:`repro.matching.matcher` — threshold-based pairwise matchers and
  the :class:`MatchGraph` accumulating decisions;
* :mod:`repro.matching.clustering` — turning pairwise decisions into
  resolved entities (connected components for dirty ER, unique-mapping
  greedy clustering for clean-clean ER).
"""

from repro.matching.similarity import (
    jaccard,
    weighted_jaccard,
    dice,
    overlap_coefficient,
    cosine_tfidf,
    levenshtein,
    levenshtein_similarity,
    jaro,
    jaro_winkler,
    SimilarityIndex,
)
from repro.matching.matcher import (
    Matcher,
    ThresholdMatcher,
    OracleMatcher,
    EnsembleMatcher,
    MatchGraph,
    MatchDecision,
)
from repro.matching.clustering import (
    connected_components,
    unique_mapping_clustering,
    center_clustering,
    merge_center_clustering,
)

__all__ = [
    "jaccard",
    "weighted_jaccard",
    "dice",
    "overlap_coefficient",
    "cosine_tfidf",
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "SimilarityIndex",
    "Matcher",
    "ThresholdMatcher",
    "MatchGraph",
    "MatchDecision",
    "connected_components",
    "unique_mapping_clustering",
    "center_clustering",
    "merge_center_clustering",
    "OracleMatcher",
    "EnsembleMatcher",
]
