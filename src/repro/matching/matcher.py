"""Pairwise matchers and the match graph.

A :class:`Matcher` maps a candidate pair to a :class:`MatchDecision`
(similarity score + boolean verdict); the :class:`MatchGraph` accumulates
verdicts as matching progresses, maintaining the transitive clustering the
benefit models and the update phase read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.blocking.block import comparison_pair
from repro.matching.similarity import SimilarityIndex
from repro.utils.disjoint_set import DisjointSet


@dataclass(frozen=True)
class MatchDecision:
    """Outcome of comparing one pair."""

    left: str
    right: str
    similarity: float
    is_match: bool

    @property
    def pair(self) -> tuple[str, str]:
        """Canonical pair identity."""
        return comparison_pair(self.left, self.right)


class Matcher(ABC):
    """Base class: decide whether two descriptions co-refer."""

    def bind(self, context) -> None:
        """Hook called by resolution engines before execution starts.

        *context* is a :class:`repro.core.engine.ResolutionContext`;
        matchers that exploit the evolving match state (e.g. the
        neighbour-evidence matcher) capture it here.  The default is a
        no-op so plain value matchers need not care.
        """

    def prime(self, pairs: Iterable[tuple[str, str]]) -> None:
        """Hook: pre-score a known candidate set in one batch.

        Engines call this with the full pruned-edge pair list before the
        progressive loop starts; matchers with a vectorized scoring path
        (TF-IDF cosine) cache the batch scores so the per-pair
        :meth:`similarity` calls inside the loop become lookups.  Scores
        must be bit-identical to the scalar path — priming may never
        change a decision.  The default is a no-op.
        """

    @abstractmethod
    def similarity(self, uri_a: str, uri_b: str) -> float:
        """Similarity score in [0, 1] (best effort) for the pair."""

    @abstractmethod
    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        """Full decision for the pair."""

    def decide_many(self, pairs: list[tuple[str, str]]) -> list[MatchDecision]:
        """Decide a batch of pairs (default: per-pair :meth:`decide`).

        Matchers with a vectorized similarity path override the scoring;
        the decisions are identical to calling :meth:`decide` per pair.
        """
        return [self.decide(a, b) for a, b in pairs]


class ThresholdMatcher(Matcher):
    """Similarity-threshold matcher over a :class:`SimilarityIndex`.

    Args:
        index: pre-built similarity index covering all candidate URIs.
        threshold: minimum similarity for a match verdict.
        measure: which index measure to use — ``"jaccard"``,
            ``"weighted-jaccard"`` or ``"cosine"`` — or any callable
            ``(uri_a, uri_b) -> float``.
    """

    MEASURES = ("jaccard", "weighted-jaccard", "cosine")

    def __init__(
        self,
        index: SimilarityIndex,
        threshold: float = 0.5,
        measure: str | Callable[[str, str], float] = "cosine",
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.index = index
        self.threshold = threshold
        #: batch-scored cache filled by :meth:`prime` (pair → similarity)
        self._primed: dict[tuple[str, str], float] = {}
        #: index epoch the cache was scored against (None = immutable index)
        self._primed_epoch = None
        if callable(measure):
            self._measure = measure
            self.measure_name = getattr(measure, "__name__", "custom")
        elif measure == "jaccard":
            self._measure = index.jaccard
            self.measure_name = measure
        elif measure == "weighted-jaccard":
            self._measure = index.weighted_jaccard
            self.measure_name = measure
        elif measure == "cosine":
            self._measure = index.cosine
            self.measure_name = measure
        else:
            raise ValueError(
                f"unknown measure {measure!r}; choose from {self.MEASURES}"
            )

    def _batch_scores(self, pairs: list[tuple[str, str]]):
        """Vectorized scores for *pairs*, or None without a batch path."""
        if self.measure_name != "cosine" or not hasattr(self.index, "cosine_many"):
            return None
        if any(a not in self.index or b not in self.index for a, b in pairs):
            return None
        return self.index.cosine_many([a for a, _ in pairs], [b for _, b in pairs])

    def _check_primed_epoch(self) -> None:
        """Drop the cache when a mutable index has drifted since priming.

        Immutable indexes have no ``epoch``; a streaming index bumps it
        on every IDF-shifting insert, and primed scores from an older
        epoch would no longer be bit-identical to fresh scoring — the
        one thing priming must never break.
        """
        epoch = getattr(self.index, "epoch", None)
        if self._primed and epoch != self._primed_epoch:
            self._primed.clear()

    def prime(self, pairs: Iterable[tuple[str, str]]) -> None:
        self._check_primed_epoch()
        pair_list = [p for p in pairs if p not in self._primed]
        if not pair_list:
            return
        scores = self._batch_scores(pair_list)
        if scores is None:
            return
        self._primed_epoch = getattr(self.index, "epoch", None)
        self._primed.update(zip(pair_list, (float(s) for s in scores)))

    def similarity(self, uri_a: str, uri_b: str) -> float:
        if self._primed:
            self._check_primed_epoch()
            primed = self._primed.get(comparison_pair(uri_a, uri_b))
            if primed is not None:
                return primed
        return self._measure(uri_a, uri_b)

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        score = self.similarity(uri_a, uri_b)
        return MatchDecision(uri_a, uri_b, score, score >= self.threshold)

    def decide_many(self, pairs: list[tuple[str, str]]) -> list[MatchDecision]:
        scores = self._batch_scores(pairs)
        if scores is None:
            return [self.decide(a, b) for a, b in pairs]
        threshold = self.threshold
        return [
            MatchDecision(a, b, score, score >= threshold)
            for (a, b), score in zip(pairs, (float(s) for s in scores))
        ]


class EnsembleMatcher(Matcher):
    """Weighted combination of several matchers' similarity scores.

    Heterogeneous Web-of-data descriptions rarely yield to one measure:
    names favour character similarity, rich profiles favour TF-IDF cosine,
    sparse ones favour set overlap.  The ensemble scores a pair as the
    weighted mean of its members' similarities and applies one threshold.

    Args:
        members: ``(matcher, weight)`` pairs; weights must be positive.
        threshold: decision threshold on the combined score.
    """

    def __init__(
        self,
        members: list[tuple[Matcher, float]],
        threshold: float = 0.5,
    ) -> None:
        if not members:
            raise ValueError("ensemble requires at least one member")
        if any(weight <= 0 for _, weight in members):
            raise ValueError("member weights must be positive")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.members = list(members)
        self.threshold = threshold
        self._total_weight = sum(weight for _, weight in members)

    def bind(self, context) -> None:
        for matcher, _weight in self.members:
            matcher.bind(context)

    def prime(self, pairs: Iterable[tuple[str, str]]) -> None:
        pair_list = list(pairs)
        for matcher, _weight in self.members:
            matcher.prime(pair_list)

    def similarity(self, uri_a: str, uri_b: str) -> float:
        combined = sum(
            matcher.similarity(uri_a, uri_b) * weight
            for matcher, weight in self.members
        )
        return combined / self._total_weight

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        score = self.similarity(uri_a, uri_b)
        return MatchDecision(uri_a, uri_b, score, score >= self.threshold)


class OracleMatcher(Matcher):
    """Ground-truth matcher used by oracle baselines and tests.

    Args:
        gold: set of canonical matching pairs.
    """

    def __init__(self, gold: set[tuple[str, str]]) -> None:
        self.gold = gold

    def similarity(self, uri_a: str, uri_b: str) -> float:
        return 1.0 if comparison_pair(uri_a, uri_b) in self.gold else 0.0

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        score = self.similarity(uri_a, uri_b)
        return MatchDecision(uri_a, uri_b, score, score >= 1.0)


class MatchGraph:
    """Accumulated match decisions with transitive clustering.

    Tracks every executed comparison (so repeated work can be measured),
    the positive decisions, and a union-find over matched descriptions
    giving the current resolved clusters.
    """

    def __init__(self) -> None:
        self._decisions: dict[tuple[str, str], MatchDecision] = {}
        self._matches: list[MatchDecision] = []
        self._clusters = DisjointSet()
        self._partners: dict[str, set[str]] = {}

    def __len__(self) -> int:
        """Number of comparisons executed."""
        return len(self._decisions)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._decisions

    @property
    def match_count(self) -> int:
        """Number of positive decisions recorded."""
        return len(self._matches)

    def record(self, decision: MatchDecision) -> bool:
        """Store *decision*; returns False if the pair was already decided."""
        pair = decision.pair
        if pair in self._decisions:
            return False
        self._decisions[pair] = decision
        if decision.is_match:
            self._matches.append(decision)
            self._clusters.union(pair[0], pair[1])
            self._partners.setdefault(pair[0], set()).add(pair[1])
            self._partners.setdefault(pair[1], set()).add(pair[0])
        return True

    def decision_for(self, uri_a: str, uri_b: str) -> MatchDecision | None:
        """Previously recorded decision for the pair, if any."""
        return self._decisions.get(comparison_pair(uri_a, uri_b))

    def matches(self) -> Iterator[MatchDecision]:
        """Positive decisions in execution order."""
        return iter(self._matches)

    def matched_pairs(self) -> set[tuple[str, str]]:
        """Canonical pairs decided as matches (directly, not transitively)."""
        return {d.pair for d in self._matches}

    def is_resolved(self, uri: str) -> bool:
        """True if *uri* has been directly matched with some description."""
        return uri in self._partners

    def partners(self, uri: str) -> set[str]:
        """Descriptions directly matched with *uri* (not transitive)."""
        return set(self._partners.get(uri, ()))

    def are_matched(self, uri_a: str, uri_b: str) -> bool:
        """True if the two descriptions are in the same resolved cluster."""
        if uri_a not in self._clusters or uri_b not in self._clusters:
            return False
        return self._clusters.connected(uri_a, uri_b)

    def cluster_of(self, uri: str) -> frozenset[str]:
        """Members of the resolved cluster containing *uri* (singleton if unmatched)."""
        if uri not in self._clusters:
            return frozenset((uri,))
        root = self._clusters.find(uri)
        return frozenset(
            member for member in self._clusters.items()
            if self._clusters.find(member) == root
        )

    def clusters(self) -> list[frozenset[str]]:
        """All non-singleton resolved clusters, deterministic order."""
        return [c for c in self._clusters.to_clusters() if len(c) > 1]

    def transitive_pairs(self) -> set[tuple[str, str]]:
        """All pairs implied by the clustering (transitive closure)."""
        out: set[tuple[str, str]] = set()
        for cluster in self.clusters():
            members = sorted(cluster)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    out.add((members[i], members[j]))
        return out
