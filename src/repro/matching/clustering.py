"""From pairwise decisions to resolved entities.

Dirty ER uses the transitive closure (connected components) of the match
graph.  Clean-clean ER knows each KB is duplicate-free, so a description
can match at most one description of the other KB; **unique-mapping
clustering** enforces that by greedily accepting pairs in decreasing
similarity order, skipping pairs whose endpoint is already mapped.
"""

from __future__ import annotations

from typing import Iterable

from repro.matching.matcher import MatchDecision
from repro.utils.disjoint_set import DisjointSet


def connected_components(
    pairs: Iterable[tuple[str, str]],
) -> list[frozenset[str]]:
    """Transitive closure of the given matched pairs.

    Returns:
        Clusters with at least two members, largest first.
    """
    ds = DisjointSet()
    for left, right in pairs:
        ds.union(left, right)
    return [c for c in ds.to_clusters() if len(c) > 1]


def center_clustering(
    decisions: Iterable[MatchDecision],
) -> list[frozenset[str]]:
    """Center clustering (Haveliwala et al. / Hassanzadeh et al.).

    Edges are scanned in decreasing similarity; the first time a node is
    seen it becomes a cluster **center**; other nodes attach to the first
    center they share an edge with.  Center-to-center and
    member-to-member edges are ignored, which caps cluster diameter at 2
    and prevents the chaining errors connected components suffer from.

    Returns:
        Clusters with at least two members, largest first.
    """
    candidates = [d for d in decisions if d.is_match]
    candidates.sort(key=lambda d: (-d.similarity, d.pair))
    is_center: dict[str, bool] = {}
    assigned_to: dict[str, str] = {}
    clusters: dict[str, set[str]] = {}
    for decision in candidates:
        left, right = decision.pair
        left_free = left not in is_center and left not in assigned_to
        right_free = right not in is_center and right not in assigned_to
        if left_free and right_free:
            is_center[left] = True
            clusters[left] = {left, right}
            assigned_to[right] = left
        elif left_free and right in is_center:
            assigned_to[left] = right
            clusters[right].add(left)
        elif right_free and left in is_center:
            assigned_to[right] = left
            clusters[left].add(right)
        # center-center and member-member edges are skipped
    out = [frozenset(members) for members in clusters.values() if len(members) > 1]
    out.sort(key=lambda c: (-len(c), sorted(c)))
    return out


def merge_center_clustering(
    decisions: Iterable[MatchDecision],
) -> list[frozenset[str]]:
    """Merge-center clustering: like center clustering, but an edge between
    a member and another cluster's center merges the two clusters.

    Returns:
        Clusters with at least two members, largest first.
    """
    candidates = [d for d in decisions if d.is_match]
    candidates.sort(key=lambda d: (-d.similarity, d.pair))
    centers: set[str] = set()
    members: set[str] = set()
    ds = DisjointSet()
    for decision in candidates:
        left, right = decision.pair
        left_free = left not in centers and left not in members
        right_free = right not in centers and right not in members
        if left_free and right_free:
            centers.add(left)
            members.add(right)
            ds.union(left, right)
        elif left_free and right in centers:
            members.add(left)
            ds.union(right, left)
        elif right_free and left in centers:
            members.add(right)
            ds.union(left, right)
        elif left in members and right in centers:
            ds.union(right, left)
        elif right in members and left in centers:
            ds.union(left, right)
    return [c for c in ds.to_clusters() if len(c) > 1]


def unique_mapping_clustering(
    decisions: Iterable[MatchDecision],
    sources: dict[str, str] | None = None,
) -> list[tuple[str, str]]:
    """Greedy one-to-one assignment for clean-clean ER.

    Args:
        decisions: positive match decisions (only ``is_match`` ones are
            considered); processed in decreasing similarity, ties broken by
            canonical pair for determinism.
        sources: optional URI → source map; when provided, pairs whose
            endpoints share a source are rejected (duplicate-free KBs
            cannot match internally).

    Returns:
        Accepted pairs, each endpoint appearing at most once.
    """
    candidates = [d for d in decisions if d.is_match]
    candidates.sort(key=lambda d: (-d.similarity, d.pair))
    taken: set[str] = set()
    accepted: list[tuple[str, str]] = []
    for decision in candidates:
        left, right = decision.pair
        if left in taken or right in taken:
            continue
        if sources is not None and sources.get(left) == sources.get(right):
            continue
        taken.add(left)
        taken.add(right)
        accepted.append((left, right))
    return accepted
