"""The six weighting-scheme formulas, defined exactly once.

Every execution surface — the scalar string path and the id/array fast
paths in :mod:`repro.metablocking.weighting` (which the sequential,
MapReduce and streaming backends all flow through), and the relational
backend's SQL compiler (:mod:`repro.sqlbackend.compile`) — consumes the
definitions in this module, so a formula lives in one place and the
cross-backend bit-identity contract has a single source of truth.

Three kinds of definition per scheme:

* **factor kernels** (:func:`ecbs_log_factors`, :func:`ejs_log_factors`)
  — the per-entity log discounts, computed with ``math.log`` (never
  ``np.log``, which can differ in the last ulp) once per entity;
* **weight kernels** — the per-pair expressions.  Where the expression
  is a plain arithmetic product it is written polymorphically (the same
  function serves python scalars and numpy arrays); where a guard is
  needed (JS's ``union > 0``, χ²'s ``expected > 0``) scalar and array
  variants share the cell/term enumeration;
* **SQL expressions** (:data:`SQL_WEIGHT_EXPRS`) — the identical
  formulas as SQL over a joined pair-statistics row ``ps`` (columns
  ``common``, ``arcs``) and per-entity factor rows ``fa``/``fb``
  (columns ``placements``, ``ecbs``, ``ejs``) with the named parameter
  ``:total_blocks``.  Expression shapes mirror the array kernels
  operator for operator (same associativity, same int→float promotion
  points), which keeps sqlite/DuckDB REAL results bit-identical to the
  numpy float64 path.
"""

from __future__ import annotations

import math

try:  # pragma: no cover - exercised through the array kernels
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

#: canonical scheme names, in the table order used by sweeps
SCHEME_NAMES = ("CBS", "ECBS", "JS", "EJS", "ARCS", "X2")


# -- per-entity factor kernels ----------------------------------------------


def ecbs_log_factor(total_blocks: int, count: int) -> float:
    """ECBS discount for one entity: ``log((B + 1) / |B_i|)``.

    The +1 smoothing keeps entities present in *every* block from
    zeroing the weight outright while preserving the discount ordering.
    """
    return math.log((total_blocks + 1) / count)


def ecbs_log_factors(total_blocks: int, placement_counts) -> list[float]:
    """ECBS discounts for all entities, one ``math.log`` per entity."""
    return [ecbs_log_factor(total_blocks, count) for count in placement_counts]


def ejs_log_factor(edge_count: int, degree: int) -> float:
    """EJS discount for one entity: ``log((E + 1) / deg_i)``.

    Isolated entities (degree 0) fall back to degree 1, matching the
    scalar path's ``.get(uri, 1)`` smoothing.
    """
    return math.log((edge_count + 1) / (degree if degree else 1))


def ejs_log_factors(edge_count: int, degrees) -> list[float]:
    """EJS discounts for all entities, one ``math.log`` per entity."""
    return [ejs_log_factor(edge_count, degree) for degree in degrees]


# -- weight kernels ---------------------------------------------------------


def cbs_weight(common):
    """CBS: the raw common-block count as a float."""
    return float(common)


def cbs_weights(common):
    """CBS, vectorized: float64 view of the common-block counts."""
    return common.astype(_np.float64)


def factor_product(base, factor_a, factor_b):
    """``base · f_a · f_b`` — the ECBS/EJS shape, scalar or array.

    Left-to-right association is part of the bit-identity contract;
    callers must pass ``factor_a`` for the endpoint whose URI sorts
    first.
    """
    return base * factor_a * factor_b


def js_union(count_a, count_b, common):
    """Size of the union of two entities' block sets, scalar or array."""
    return count_a + count_b - common


def js_weight(common, union) -> float:
    """JS scalar: ``common / union`` guarded against an empty union."""
    if union <= 0:
        return 0.0
    return common / union


def js_weights(common, union):
    """JS vectorized: guarded elementwise division (zeros elsewhere)."""
    weights = _np.zeros(len(common), dtype=_np.float64)
    _np.divide(common, union, out=weights, where=union > 0)
    return weights


def arcs_weight(arcs):
    """ARCS: the precomputed reciprocal-cardinality sum, as-is."""
    return arcs


def contingency_cells(in_a, in_b, common, total):
    """χ²'s 2×2 contingency cells as ``(row_sum, col_sum, observed)``.

    Fixed (row, col) iteration order — the accumulation order of the
    four (O−E)²/E terms is observable in the float result, so every
    path iterates these cells identically.  Works elementwise on numpy
    arrays and on python ints alike.
    """
    return (
        (in_a, in_b, common),
        (in_a, total - in_b, in_a - common),
        (total - in_a, in_b, in_b - common),
        (total - in_a, total - in_b, total - in_a - in_b + common),
    )


def chi_square_statistic(common, in_a, in_b, total) -> float:
    """χ² scalar: sum of (O−E)²/E over the contingency cells."""
    statistic = 0.0
    for row, col, observed in contingency_cells(in_a, in_b, common, total):
        expected = row * col / total
        if expected > 0:
            deviation = observed - expected
            statistic += deviation * deviation / expected
    return statistic


def chi_square_weights(common, in_a, in_b, total):
    """χ² vectorized: same cells, same order, terms zeroed where E≤0."""
    statistic = _np.zeros(len(common), dtype=_np.float64)
    for row, col, observed in contingency_cells(in_a, in_b, common, total):
        expected = row * col / total
        term = _np.zeros_like(statistic)
        deviation = observed - expected
        _np.divide(deviation * deviation, expected, out=term, where=expected > 0)
        statistic = statistic + term
    return statistic


# -- SQL expressions --------------------------------------------------------

_JS_UNION_SQL = "(fa.placements + fb.placements - ps.common)"

#: JS as SQL: the CAST promotes the division to REAL before the guard's
#: zero fallback — int/int would truncate on sqlite.
_JS_SQL = (
    f"(CASE WHEN {_JS_UNION_SQL} > 0 "
    f"THEN CAST(ps.common AS REAL) / {_JS_UNION_SQL} ELSE 0.0 END)"
)


class _Sym:
    """Symbolic SQL operand: lets :func:`contingency_cells` itself emit
    the SQL cell expressions, so the SQL cell order provably matches
    the python/numpy kernels."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __add__(self, other: "_Sym") -> "_Sym":
        return _Sym(f"({self.text} + {other.text})")

    def __sub__(self, other: "_Sym") -> "_Sym":
        return _Sym(f"({self.text} - {other.text})")


def _chi_square_sql() -> str:
    """χ² as SQL: four guarded (O−E)²/E terms, summed left-to-right."""
    terms = []
    cells = contingency_cells(
        _Sym("fa.placements"),
        _Sym("fb.placements"),
        _Sym("ps.common"),
        _Sym(":total_blocks"),
    )
    for row, col, observed in cells:
        expected = f"(CAST({row.text} * {col.text} AS REAL) / :total_blocks)"
        deviation = f"({observed.text} - {expected})"
        terms.append(
            f"(CASE WHEN {expected} > 0 "
            f"THEN ({deviation} * {deviation}) / {expected} ELSE 0.0 END)"
        )
    return " + ".join(terms)


#: scheme name → SQL weight expression (see module docstring for the
#: ps/fa/fb alias contract)
SQL_WEIGHT_EXPRS: dict[str, str] = {
    "CBS": "CAST(ps.common AS REAL)",
    "ECBS": "ps.common * fa.ecbs * fb.ecbs",
    "JS": _JS_SQL,
    "EJS": f"{_JS_SQL} * fa.ejs * fb.ejs",
    "ARCS": "ps.arcs",
    "X2": _chi_square_sql(),
}
