"""The blocking graph.

Nodes are description URIs; an (undirected) edge connects every pair
co-occurring in at least one block; the edge weight is computed by a
:class:`~repro.metablocking.weighting.WeightingScheme` from the pair's
co-occurrence statistics.  The graph is materialized lazily from a
:class:`~repro.blocking.block.BlockCollection`: for corpora of the size
this reproduction targets the explicit edge list is affordable and keeps
the pruning schemes straightforward, while the MapReduce implementation in
:mod:`repro.mapreduce.parallel_metablocking` shows the scalable
formulation used on a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, TYPE_CHECKING

from repro.blocking.block import BlockCollection, comparison_pair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metablocking.weighting import WeightingScheme


@dataclass(frozen=True)
class WeightedEdge:
    """A weighted comparison: canonical pair plus its evidence weight."""

    left: str
    right: str
    weight: float

    @property
    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) URI pair."""
        return (self.left, self.right)


class BlockingGraph:
    """Weighted co-occurrence graph over a block collection.

    Args:
        blocks: the (post-processed) block collection.
        scheme: edge-weighting scheme; see
            :mod:`repro.metablocking.weighting`.

    The graph computes, per distinct pair:

    * the set of common blocks (for CBS/ECBS/JS/EJS),
    * the sum over common blocks of ``1 / cardinality(block)`` (for ARCS).
    """

    def __init__(self, blocks: BlockCollection, scheme: "WeightingScheme") -> None:
        self.blocks = blocks
        self.scheme = scheme
        self._edges: dict[tuple[str, str], float] | None = None
        self._adjacency: dict[str, list[tuple[str, float]]] | None = None

    # -- construction ------------------------------------------------------

    def _pair_statistics(self) -> dict[tuple[str, str], tuple[int, float]]:
        """Per-pair (common_blocks, arcs_sum) over the whole collection."""
        stats: dict[tuple[str, str], tuple[int, float]] = {}
        for block in self.blocks:
            cardinality = block.cardinality()
            if cardinality == 0:
                continue
            arcs_contribution = 1.0 / cardinality
            for pair in block.comparisons():
                common, arcs = stats.get(pair, (0, 0.0))
                stats[pair] = (common + 1, arcs + arcs_contribution)
        return stats

    def materialize(self) -> dict[tuple[str, str], float]:
        """Compute (once) and return the pair → weight map."""
        if self._edges is not None:
            return self._edges
        stats = self._pair_statistics()
        self.scheme.prepare(self.blocks, stats)
        edges = {
            pair: self.scheme.weight(pair[0], pair[1], common, arcs)
            for pair, (common, arcs) in stats.items()
        }
        self._edges = edges
        return edges

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct edges (comparisons)."""
        return len(self.materialize())

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over weighted edges in deterministic (pair-sorted) order."""
        edges = self.materialize()
        for pair in sorted(edges):
            yield WeightedEdge(pair[0], pair[1], edges[pair])

    def weight_of(self, uri_a: str, uri_b: str) -> float:
        """Weight of the edge between the two URIs (0.0 when absent)."""
        return self.materialize().get(comparison_pair(uri_a, uri_b), 0.0)

    def nodes(self) -> list[str]:
        """All node URIs, sorted."""
        seen: set[str] = set()
        for left, right in self.materialize():
            seen.add(left)
            seen.add(right)
        return sorted(seen)

    def adjacency(self) -> dict[str, list[tuple[str, float]]]:
        """Node → list of (neighbour, weight), each edge listed on both ends."""
        if self._adjacency is None:
            adjacency: dict[str, list[tuple[str, float]]] = {}
            for (left, right), weight in self.materialize().items():
                adjacency.setdefault(left, []).append((right, weight))
                adjacency.setdefault(right, []).append((left, weight))
            self._adjacency = adjacency
        return self._adjacency

    def neighbors(self, uri: str) -> list[tuple[str, float]]:
        """Weighted neighbours of *uri* (empty when isolated/unknown)."""
        return list(self.adjacency().get(uri, ()))

    def average_weight(self) -> float:
        """Mean edge weight (0.0 for an empty graph)."""
        edges = self.materialize()
        if not edges:
            return 0.0
        return sum(edges.values()) / len(edges)

    def total_weight(self) -> float:
        """Sum of edge weights."""
        return sum(self.materialize().values())

    def top_edges(self, count: int) -> list[WeightedEdge]:
        """The *count* highest-weight edges (weight desc, pair asc)."""
        edges = self.materialize()
        ranked = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
        return [WeightedEdge(p[0], p[1], w) for p, w in ranked[:count]]
