"""The blocking graph.

Nodes are description URIs; an (undirected) edge connects every pair
co-occurring in at least one block; the edge weight is computed by a
:class:`~repro.metablocking.weighting.WeightingScheme` from the pair's
co-occurrence statistics.  The graph is materialized lazily from a
:class:`~repro.blocking.block.BlockCollection`.

Three construction paths produce identical results:

* the **array fast path** (default when numpy is available) expands all
  implied comparisons from the collection's CSR id views into flat
  arrays, packs each pair into a single ``a << 32 | b`` integer, and
  aggregates the ``(common, arcs)`` statistics with one sort plus
  bincounts into a scheme-independent :class:`PairTable` cached on the
  collection.  Weighting schemes that implement the vectorized path (all
  built-ins do) are evaluated as array expressions over per-entity
  factor tables precomputed once; URIs are translated back only when the
  public string-keyed edge map is built.
* the **scalar id fallback** (no numpy) runs the same node-centric
  aggregation in pure Python: within each block's id-array an entity
  emits the pairs it forms with the co-members after it, accumulating
  the packed-pair statistics in flat int-keyed dicts.
* the **reference slow path** (``fast_path=False``) is the original
  string-tuple formulation, retained verbatim as the equivalence oracle
  for tests and for the MapReduce formulation in
  :mod:`repro.mapreduce.parallel_metablocking`.

All paths visit blocks and intra-block pairs in the same order, so the
floating-point ARCS accumulations — and therefore every derived weight —
are bit-identical between them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

try:  # pragma: no cover - exercised through the array fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.blocking.block import BlockCollection, BlockIdArrays, comparison_pair
from repro.model.interner import PAIR_MASK, PAIR_SHIFT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metablocking.weighting import WeightingScheme


def expand_comparison_cells(
    csr: BlockIdArrays,
    start: int = 0,
    stop: int | None = None,
    with_provenance: bool = False,
):
    """Implied comparisons of blocks ``[start, stop)`` as flat arrays.

    Fully vectorized — no Python-level loop over blocks: every block of
    ``n`` side-1 members spans a rectangular grid of ``n x width`` cells
    (``width`` being the side-2 size for bipartite blocks, ``n`` itself
    for dirty blocks), and a single div/mod over the global cell index
    recovers each cell's row and column.  Dirty blocks then keep only the
    triangular ``row < col`` cells and bipartite blocks drop self-pairs.
    The surviving cells appear in exactly the reference enumeration order
    (blocks in insertion order, nested pair order inside each block), so
    downstream float accumulations stay bit-identical to the string path.

    Returns ``(left, right, contribution)`` arrays, plus — when
    *with_provenance* is set — the **global** block ordinal of each kept
    cell and its global kept-cell index (its position in the whole
    collection's comparison enumeration).  Provenance is what lets the
    MapReduce formulation reassemble the exact sequential fold order
    across map-task boundaries.
    """
    np = _np
    if stop is None:
        stop = len(csr.cardinality)
    card = csr.cardinality[start:stop]
    active = np.flatnonzero(card > 0) + start
    off1 = csr.offsets1[active]
    n1 = csr.offsets1[active + 1] - off1
    off2 = csr.offsets2_abs[active]
    bipartite = csr.bipartite[active]
    width = np.where(bipartite, csr.offsets2_abs[active + 1] - off2, n1)
    right_off = np.where(bipartite, off2, off1)
    cells = n1 * width
    cell_offsets = np.zeros(len(active) + 1, dtype=np.int64)
    np.cumsum(cells, out=cell_offsets[1:])
    total = int(cell_offsets[-1])
    cell_block = np.repeat(np.arange(len(active)), cells)
    within = np.arange(total, dtype=np.int64) - cell_offsets[cell_block]
    row, col = np.divmod(within, width[cell_block])
    left = csr.sides[off1[cell_block] + row]
    right = csr.sides[right_off[cell_block] + col]
    keep = np.where(bipartite[cell_block], left != right, row < col)
    contribution = np.repeat(1.0 / csr.cardinality[active], cells)
    if not with_provenance:
        return left[keep], right[keep], contribution[keep]
    ordinals = active[cell_block][keep]
    # Kept cells per block == block cardinality, so the range's first kept
    # cell sits at the cumulative cardinality of the preceding blocks.
    cell_base = int(csr.cardinality[:start].sum())
    cell_index = cell_base + np.arange(int(keep.sum()), dtype=np.int64)
    return left[keep], right[keep], contribution[keep], ordinals, cell_index


def _expand_comparison_cells(csr: BlockIdArrays):
    """Whole-collection cells (the array fast path's historical entry)."""
    return expand_comparison_cells(csr)


class PairTable:
    """Scheme-independent pair statistics of a block collection.

    One row per distinct comparison, in first-occurrence order (matching
    the reference dict's insertion order): the canonical string ``pairs``,
    the endpoint id arrays (``ids_a`` holding the lexicographically
    smaller URI), the common-block counts and the ARCS sums.  Weighting a
    graph is then just a vectorized function over these columns — the
    expensive aggregation and URI translation happen once per collection,
    not once per scheme.
    """

    __slots__ = ("pairs", "ids_a", "ids_b", "common", "arcs", "uri_rank")

    def __init__(self, pairs, ids_a, ids_b, common, arcs, uri_rank) -> None:
        self.pairs = pairs
        self.ids_a = ids_a
        self.ids_b = ids_b
        self.common = common
        self.arcs = arcs
        #: entity id → rank of its URI in lexicographic order (int64);
        #: lets consumers break ties "by URI" with integer compares.
        self.uri_rank = uri_rank


def pack_pair_arrays(left, right):
    """Vectorized canonical ``min << 32 | max`` packing of id pair arrays."""
    return _np.where(
        left < right,
        (left << PAIR_SHIFT) | right,
        (right << PAIR_SHIFT) | left,
    )


def finish_pair_table(blocks: BlockCollection, unique_keys, common, arcs) -> PairTable:
    """Assemble a :class:`PairTable` from aggregated per-pair statistics.

    *unique_keys* must already be in first-seen enumeration order (the
    reference dict's insertion order); this resolves packed keys to URI
    pairs in canonical string order via integer ranks — one O(n log n)
    sort over the n entities instead of a string compare per edge.
    Shared by the sequential array fast path and the MapReduce int-ID
    formulation, which reassembles the same inputs from reducer output.
    """
    np = _np
    uris = np.array(blocks.interner().uri_table(), dtype=object)
    rank = np.empty(len(uris), dtype=np.int64)
    rank[np.argsort(uris)] = np.arange(len(uris))
    ids_a = unique_keys >> PAIR_SHIFT
    ids_b = unique_keys & PAIR_MASK
    swap = rank[ids_a] > rank[ids_b]
    if swap.any():
        ids_a, ids_b = np.where(swap, ids_b, ids_a), np.where(swap, ids_a, ids_b)
    pairs = list(zip(uris[ids_a].tolist(), uris[ids_b].tolist()))
    return PairTable(pairs, ids_a, ids_b, common, arcs, rank)


def _build_pair_table(blocks: BlockCollection) -> PairTable:
    np = _np
    csr = blocks.id_arrays()
    assert csr is not None
    left, right, contribution = _expand_comparison_cells(csr)
    keys = pack_pair_arrays(left, right)
    if not len(keys):
        empty = np.empty(0, dtype=np.int64)
        return PairTable([], empty, empty, empty, np.empty(0, dtype=np.float64), empty)
    # Stable sort -> group boundaries; per-group accumulation via bincount
    # adds weights in input (= enumeration) order, bit-identical to the
    # reference's running sums.  np.add.reduceat would be faster but sums
    # pairwise, which is NOT bit-identical.
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(len(sorted_keys), dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    group_of_sorted = np.cumsum(new_group) - 1
    common = np.diff(np.append(starts, len(sorted_keys)))
    inverse = np.empty(len(keys), dtype=np.int64)
    inverse[order] = group_of_sorted
    arcs = np.bincount(inverse, weights=contribution, minlength=len(starts))
    # Reorder groups to first-seen order so downstream iteration (and any
    # float sums over it) matches the reference exactly.
    first_index = order[starts]
    seen_order = np.argsort(first_index)
    unique_keys = sorted_keys[starts][seen_order]
    common = common[seen_order]
    arcs = arcs[seen_order]
    return finish_pair_table(blocks, unique_keys, common, arcs)


def pair_table_for(blocks: BlockCollection) -> PairTable:
    """The (cached) pair table of *blocks*; requires numpy.

    Cached in ``blocks.derived_cache``: like the entity index, the table
    is a function of the block structure alone and is shared by every
    graph/scheme built over the collection until the blocks mutate.
    """
    table = blocks.derived_cache.get("metablocking.pair_table")
    if table is None:
        table = _build_pair_table(blocks)
        blocks.derived_cache["metablocking.pair_table"] = table
    return table


@dataclass(frozen=True)
class WeightedEdge:
    """A weighted comparison: canonical pair plus its evidence weight."""

    left: str
    right: str
    weight: float

    @property
    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) URI pair."""
        return (self.left, self.right)


class BlockingGraph:
    """Weighted co-occurrence graph over a block collection.

    Args:
        blocks: the (post-processed) block collection.
        scheme: edge-weighting scheme; see
            :mod:`repro.metablocking.weighting`.
        fast_path: build edge weights through the int-id backbone
            (default).  ``False`` selects the retained string-tuple
            reference implementation; results are identical either way.

    The graph computes, per distinct pair:

    * the number of common blocks (for CBS/ECBS/JS/EJS),
    * the sum over common blocks of ``1 / cardinality(block)`` (for ARCS).
    """

    def __init__(
        self,
        blocks: BlockCollection,
        scheme: "WeightingScheme",
        fast_path: bool = True,
    ) -> None:
        self.blocks = blocks
        self.scheme = scheme
        self.fast_path = fast_path
        self._edges: dict[tuple[str, str], float] | None = None
        self._adjacency: dict[str, list[tuple[str, float]]] | None = None
        self._sorted_edges: list[WeightedEdge] | None = None
        self._ranked_edges: list[WeightedEdge] | None = None
        self._pair_table: PairTable | None = None

    # -- construction ------------------------------------------------------

    def _pair_statistics(self) -> dict[tuple[str, str], tuple[int, float]]:
        """Per-pair (common_blocks, arcs_sum): the reference slow path.

        Kept as the equivalence oracle for the int-id fast path (and used
        by the MapReduce tests): allocates a string tuple and a stats
        tuple per implied comparison.
        """
        stats: dict[tuple[str, str], tuple[int, float]] = {}
        for block in self.blocks:
            cardinality = block.cardinality()
            if cardinality == 0:
                continue
            arcs_contribution = 1.0 / cardinality
            for pair in block.comparisons():
                common, arcs = stats.get(pair, (0, 0.0))
                stats[pair] = (common + 1, arcs + arcs_contribution)
        return stats

    def _pair_statistics_ids(self) -> tuple[dict[int, int], dict[int, float]]:
        """Packed-pair → (common, arcs) maps over dense entity ids.

        Node-centric generation: within each block's id-array, entity
        ``ids1[i]`` emits the pairs it forms with the co-members after
        it (dirty blocks) or with the whole opposite side (bipartite
        blocks), in the same order as the reference path — keeping the
        ARCS float accumulation bit-identical.
        """
        common: dict[int, int] = {}
        arcs: dict[int, float] = {}
        common_get = common.get
        arcs_get = arcs.get
        shift = PAIR_SHIFT
        for ids1, ids2, cardinality in self.blocks.id_blocks():
            if cardinality == 0:
                continue
            contribution = 1.0 / cardinality
            if ids2 is None:
                for i in range(len(ids1) - 1):
                    a = ids1[i]
                    for b in ids1[i + 1 :]:
                        key = (a << shift) | b if a < b else (b << shift) | a
                        common[key] = common_get(key, 0) + 1
                        arcs[key] = arcs_get(key, 0.0) + contribution
            else:
                for a in ids1:
                    for b in ids2:
                        if a == b:
                            continue
                        key = (a << shift) | b if a < b else (b << shift) | a
                        common[key] = common_get(key, 0) + 1
                        arcs[key] = arcs_get(key, 0.0) + contribution
        return common, arcs

    def _materialize_arrays(self) -> dict[tuple[str, str], float]:
        from repro.metablocking.weighting import weight_pair_table

        table = pair_table_for(self.blocks)
        self._pair_table = table
        if not table.pairs:
            return {}
        weights = weight_pair_table(self.scheme, self.blocks, table)
        return dict(zip(table.pairs, weights.tolist()))

    def _materialize_slow(self) -> dict[tuple[str, str], float]:
        stats = self._pair_statistics()
        self.scheme.prepare(self.blocks, stats)
        return {
            pair: self.scheme.weight(pair[0], pair[1], common, arcs)
            for pair, (common, arcs) in stats.items()
        }

    def _materialize_ids(self) -> dict[tuple[str, str], float]:
        common, arcs = self._pair_statistics_ids()
        uris = self.blocks.interner().uri_table()
        shift, mask = PAIR_SHIFT, PAIR_MASK
        if not self.scheme.prepare_ids(self.blocks, common):
            # Scheme without an id fast path: translate the statistics to
            # the string API once and weight through the generic hooks.
            stats: dict[tuple[str, str], tuple[int, float]] = {}
            for key, count in common.items():
                uri_a, uri_b = uris[key >> shift], uris[key & mask]
                if uri_b < uri_a:
                    uri_a, uri_b = uri_b, uri_a
                stats[(uri_a, uri_b)] = (count, arcs[key])
            self.scheme.prepare(self.blocks, stats)
            return {
                pair: self.scheme.weight(pair[0], pair[1], count, arc)
                for pair, (count, arc) in stats.items()
            }
        weight_ids = self.scheme.weight_ids
        edges: dict[tuple[str, str], float] = {}
        for key, count in common.items():
            id_a, id_b = key >> shift, key & mask
            uri_a, uri_b = uris[id_a], uris[id_b]
            if uri_b < uri_a:
                uri_a, uri_b = uri_b, uri_a
                id_a, id_b = id_b, id_a
            edges[(uri_a, uri_b)] = weight_ids(id_a, id_b, count, arcs[key])
        return edges

    def materialize(self) -> dict[tuple[str, str], float]:
        """Compute (once) and return the pair → weight map."""
        if self._edges is None:
            if not self.fast_path:
                self._edges = self._materialize_slow()
            elif _np is not None:
                self._edges = self._materialize_arrays()
            else:
                self._edges = self._materialize_ids()
        return self._edges

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct edges (comparisons)."""
        return len(self.materialize())

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over weighted edges in deterministic (pair-sorted) order.

        The sorted view is computed once and cached; repeated calls
        iterate the cache.
        """
        if self._sorted_edges is None:
            edges = self.materialize()
            self._sorted_edges = [
                WeightedEdge(pair[0], pair[1], edges[pair]) for pair in sorted(edges)
            ]
        return iter(self._sorted_edges)

    def weight_of(self, uri_a: str, uri_b: str) -> float:
        """Weight of the edge between the two URIs (0.0 when absent)."""
        return self.materialize().get(comparison_pair(uri_a, uri_b), 0.0)

    def nodes(self) -> list[str]:
        """All node URIs, sorted."""
        seen: set[str] = set()
        for left, right in self.materialize():
            seen.add(left)
            seen.add(right)
        return sorted(seen)

    def pair_table(self) -> PairTable | None:
        """The pair table backing this graph's edges, or None.

        Only set after the array fast path materialized the graph; rows
        align one-to-one with :meth:`materialize` iteration order, which
        is what lets pruning run vectorized over the same arrays.
        """
        self.materialize()
        return self._pair_table

    def adjacency(self) -> dict[str, list[tuple[str, float]]]:
        """Node → list of (neighbour, weight), each edge listed on both ends."""
        if self._adjacency is None:
            adjacency: dict[str, list[tuple[str, float]]] = {}
            for (left, right), weight in self.materialize().items():
                adjacency.setdefault(left, []).append((right, weight))
                adjacency.setdefault(right, []).append((left, weight))
            self._adjacency = adjacency
        return self._adjacency

    def neighbors(self, uri: str) -> list[tuple[str, float]]:
        """Weighted neighbours of *uri* (empty when isolated/unknown)."""
        return list(self.adjacency().get(uri, ()))

    def average_weight(self) -> float:
        """Mean edge weight (0.0 for an empty graph)."""
        edges = self.materialize()
        if not edges:
            return 0.0
        return sum(edges.values()) / len(edges)

    def total_weight(self) -> float:
        """Sum of edge weights."""
        return sum(self.materialize().values())

    def ranked_edges(self) -> list[WeightedEdge]:
        """All edges ranked (weight desc, pair asc); computed once, cached."""
        if self._ranked_edges is None:
            edges = self.materialize()
            ranked = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
            self._ranked_edges = [WeightedEdge(p[0], p[1], w) for p, w in ranked]
        return self._ranked_edges

    def top_edges(self, count: int) -> list[WeightedEdge]:
        """The *count* highest-weight edges (weight desc, pair asc).

        Served from the cached full ranking when available; otherwise a
        top-k heap selection avoids sorting the whole edge set.
        """
        edges = self.materialize()
        if self._ranked_edges is not None or count >= len(edges):
            return self.ranked_edges()[:count]
        top = heapq.nsmallest(count, edges.items(), key=lambda kv: (-kv[1], kv[0]))
        return [WeightedEdge(p[0], p[1], w) for p, w in top]
