"""Pruning schemes over the weighted blocking graph.

Given the weighted graph, a pruning scheme decides which edges survive as
the comparison set handed to matching/scheduling.  The four canonical
algorithms (plus reciprocal node-centric variants):

==========  =================================================================
``WEP``     Weighted Edge Pruning — keep edges above the **global** mean
            weight.
``CEP``     Cardinality Edge Pruning — keep the globally top-``K`` edges,
            ``K = Σ_b ‖b‖ / 2`` block assignments halved (budget-shaped).
``WNP``     Weighted Node Pruning — per node, keep edges above the node
            neighbourhood's mean weight; an edge survives if **either**
            endpoint keeps it.
``CNP``     Cardinality Node Pruning — per node, keep the top-``k`` edges
            with ``k = ⌈Σ_b ‖b‖ / |E|⌉ − 1`` (average blocks per entity);
            an edge survives if either endpoint keeps it.
``ReciprocalWNP/CNP``  — as WNP/CNP but an edge survives only if **both**
            endpoints keep it (higher precision, lower recall).
==========  =================================================================

All schemes return deterministic, weight-then-pair ordered edge lists so
experiment tables are stable across runs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.metablocking.graph import BlockingGraph, WeightedEdge


def _ranked(edges: list[WeightedEdge]) -> list[WeightedEdge]:
    """Weight-descending, pair-ascending deterministic order."""
    return sorted(edges, key=lambda e: (-e.weight, e.pair))


class PruningScheme(ABC):
    """Base class for blocking-graph pruning algorithms."""

    #: short name used in experiment tables
    name = "pruning"

    @abstractmethod
    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        """Return the surviving edges of *graph*, deterministically ordered."""


class WEP(PruningScheme):
    """Weighted Edge Pruning: global mean-weight threshold.

    Args:
        threshold_factor: multiple of the mean used as the cut (1.0 = the
            classic algorithm).
    """

    name = "WEP"

    def __init__(self, threshold_factor: float = 1.0) -> None:
        if threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        self.threshold_factor = threshold_factor

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        threshold = graph.average_weight() * self.threshold_factor
        survivors = [edge for edge in graph.edges() if edge.weight >= threshold]
        return _ranked(survivors)


class CEP(PruningScheme):
    """Cardinality Edge Pruning: keep the globally top-K edges.

    ``K`` defaults to half the total block assignments — the evidence
    budget the literature derives from the blocking collection itself —
    but can be fixed explicitly for budget experiments.
    """

    name = "CEP"

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def budget(self, graph: BlockingGraph) -> int:
        """The K used for *graph*."""
        if self.k is not None:
            return self.k
        return max(1, graph.blocks.total_assignments() // 2)

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        return graph.top_edges(self.budget(graph))


class WNP(PruningScheme):
    """Weighted Node Pruning: per-neighbourhood mean threshold (redefined
    per node); union semantics across endpoints."""

    name = "WNP"

    #: an edge survives when this many endpoints keep it (1=union, 2=both)
    required_votes = 1

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        adjacency = graph.adjacency()
        thresholds: dict[str, float] = {}
        for node, neighbors in adjacency.items():
            if neighbors:
                thresholds[node] = sum(w for _, w in neighbors) / len(neighbors)
        survivors: list[WeightedEdge] = []
        for edge in graph.edges():
            votes = 0
            if edge.weight >= thresholds.get(edge.left, math.inf):
                votes += 1
            if edge.weight >= thresholds.get(edge.right, math.inf):
                votes += 1
            if votes >= self.required_votes:
                survivors.append(edge)
        return _ranked(survivors)


class ReciprocalWNP(WNP):
    """WNP requiring both endpoints to retain the edge."""

    name = "ReciprocalWNP"
    required_votes = 2


class CNP(PruningScheme):
    """Cardinality Node Pruning: per-node top-k retention; union semantics.

    ``k`` defaults to the average number of block assignments per entity
    (rounded up) minus one, floored at 1 — the standard derivation.
    """

    name = "CNP"

    #: votes needed for an edge to survive (1=union, 2=both endpoints)
    required_votes = 1

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def node_budget(self, graph: BlockingGraph) -> int:
        """The per-node k used for *graph*."""
        return self.node_budget_from_blocks(graph.blocks)

    def node_budget_from_blocks(self, blocks) -> int:
        """The per-node k derived from a block collection's statistics."""
        if self.k is not None:
            return self.k
        entities = max(blocks.entity_count(), 1)
        avg_assignments = blocks.total_assignments() / entities
        return max(1, math.ceil(avg_assignments) - 1)

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        k = self.node_budget(graph)
        adjacency = graph.adjacency()
        kept_by_node: dict[str, set[str]] = {}
        for node, neighbors in adjacency.items():
            ranked = sorted(neighbors, key=lambda nw: (-nw[1], nw[0]))
            kept_by_node[node] = {other for other, _ in ranked[:k]}
        survivors: list[WeightedEdge] = []
        for edge in graph.edges():
            votes = 0
            if edge.right in kept_by_node.get(edge.left, ()):
                votes += 1
            if edge.left in kept_by_node.get(edge.right, ()):
                votes += 1
            if votes >= self.required_votes:
                survivors.append(edge)
        return _ranked(survivors)


class ReciprocalCNP(CNP):
    """CNP requiring both endpoints to retain the edge."""

    name = "ReciprocalCNP"
    required_votes = 2


#: registry used by experiment sweeps
PRUNERS: dict[str, type[PruningScheme]] = {
    cls.name: cls for cls in (WEP, CEP, WNP, CNP, ReciprocalWNP, ReciprocalCNP)
}


def make_pruner(name: str) -> PruningScheme:
    """Instantiate a pruning scheme by table name (e.g. ``"WNP"``).

    Raises:
        KeyError: for unknown scheme names.
    """
    for key, cls in PRUNERS.items():
        if key.lower() == name.lower():
            return cls()
    raise KeyError(f"unknown pruning scheme {name!r}; choose from {sorted(PRUNERS)}")
