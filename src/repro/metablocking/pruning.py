"""Pruning schemes over the weighted blocking graph.

Given the weighted graph, a pruning scheme decides which edges survive as
the comparison set handed to matching/scheduling.  The four canonical
algorithms (plus reciprocal node-centric variants):

==========  =================================================================
``WEP``     Weighted Edge Pruning — keep edges above the **global** mean
            weight.
``CEP``     Cardinality Edge Pruning — keep the globally top-``K`` edges,
            ``K = Σ_b ‖b‖ / 2`` block assignments halved (budget-shaped).
``WNP``     Weighted Node Pruning — per node, keep edges above the node
            neighbourhood's mean weight; an edge survives if **either**
            endpoint keeps it.
``CNP``     Cardinality Node Pruning — per node, keep the top-``k`` edges
            with ``k = ⌈Σ_b ‖b‖ / |E|⌉ − 1`` (average blocks per entity);
            an edge survives if either endpoint keeps it.
``ReciprocalWNP/CNP``  — as WNP/CNP but an edge survives only if **both**
            endpoints keep it (higher precision, lower recall).
==========  =================================================================

All schemes return deterministic, weight-then-pair ordered edge lists so
experiment tables are stable across runs.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod

try:  # pragma: no cover - exercised through the vectorized prune paths
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.metablocking.graph import BlockingGraph, WeightedEdge


def _ranked(edges: list[WeightedEdge]) -> list[WeightedEdge]:
    """Weight-descending, pair-ascending deterministic order."""
    # (-w, left, right) orders identically to (-w, pair) without building
    # a pair tuple per key call.
    return sorted(edges, key=lambda e: (-e.weight, e.left, e.right))


def _directed_view(graph: BlockingGraph):
    """Edge arrays plus the interleaved directed layout of a fast graph.

    Returns ``(table, weights, node, weight_directed)`` or None when the
    graph has no pair table (slow path / no numpy).  The directed arrays
    interleave each edge's two endpoints (left at ``2i``, right at
    ``2i+1``), which is exactly the order the adjacency-dict construction
    appends neighbours in — so per-node float accumulations over this
    layout are bit-identical to sums over ``adjacency()`` lists.
    """
    table = graph.pair_table()
    if _np is None or table is None:
        return None
    edges = graph.materialize()
    count = len(edges)
    weights = _np.fromiter(edges.values(), dtype=_np.float64, count=count)
    node = _np.empty(2 * count, dtype=_np.int64)
    node[0::2] = table.ids_a
    node[1::2] = table.ids_b
    weight_directed = _np.repeat(weights, 2)
    return table, weights, node, weight_directed


def _survivor_edges(table, weights, surviving_indices) -> list[WeightedEdge]:
    pairs = table.pairs
    weight_list = weights.tolist()
    return _ranked(
        [
            WeightedEdge(pairs[i][0], pairs[i][1], weight_list[i])
            for i in surviving_indices.tolist()
        ]
    )


class PruningScheme(ABC):
    """Base class for blocking-graph pruning algorithms."""

    #: short name used in experiment tables
    name = "pruning"

    @abstractmethod
    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        """Return the surviving edges of *graph*, deterministically ordered."""


class WEP(PruningScheme):
    """Weighted Edge Pruning: global mean-weight threshold.

    Args:
        threshold_factor: multiple of the mean used as the cut (1.0 = the
            classic algorithm).
    """

    name = "WEP"

    def __init__(self, threshold_factor: float = 1.0) -> None:
        if threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        self.threshold_factor = threshold_factor

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        threshold = graph.average_weight() * self.threshold_factor
        survivors = [edge for edge in graph.edges() if edge.weight >= threshold]
        return _ranked(survivors)


class CEP(PruningScheme):
    """Cardinality Edge Pruning: keep the globally top-K edges.

    ``K`` defaults to half the total block assignments — the evidence
    budget the literature derives from the blocking collection itself —
    but can be fixed explicitly for budget experiments.
    """

    name = "CEP"

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def budget(self, graph: BlockingGraph) -> int:
        """The K used for *graph*."""
        return self.budget_from_blocks(graph.blocks)

    def budget_from_blocks(self, blocks) -> int:
        """The K derived from a block collection's statistics.

        Shared with the parallel formulations so their budget can never
        drift from the sequential derivation.
        """
        if self.k is not None:
            return self.k
        return max(1, blocks.total_assignments() // 2)

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        return graph.top_edges(self.budget(graph))


class WNP(PruningScheme):
    """Weighted Node Pruning: per-neighbourhood mean threshold (redefined
    per node); union semantics across endpoints."""

    name = "WNP"

    #: an edge survives when this many endpoints keep it (1=union, 2=both)
    required_votes = 1

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        view = _directed_view(graph)
        if view is not None:
            return self._prune_arrays(view)
        adjacency = graph.adjacency()
        thresholds: dict[str, float] = {}
        for node, neighbors in adjacency.items():
            if neighbors:
                thresholds[node] = sum(w for _, w in neighbors) / len(neighbors)
        survivors: list[WeightedEdge] = []
        for edge in graph.edges():
            votes = 0
            if edge.weight >= thresholds.get(edge.left, math.inf):
                votes += 1
            if edge.weight >= thresholds.get(edge.right, math.inf):
                votes += 1
            if votes >= self.required_votes:
                survivors.append(edge)
        return _ranked(survivors)

    def _prune_arrays(self, view) -> list[WeightedEdge]:
        """Vectorized WNP: per-node mean thresholds over the int arrays.

        ``bincount`` accumulates in the interleaved directed order, so the
        per-node sums (and hence thresholds) are bit-identical to the
        adjacency-dict formulation above.
        """
        np = _np
        table, weights, node, weight_directed = view
        entities = len(table.uri_rank)
        if not len(weights):
            return []
        sums = np.bincount(node, weights=weight_directed, minlength=entities)
        counts = np.bincount(node, minlength=entities)
        thresholds = np.full(entities, np.inf)
        occupied = counts > 0
        thresholds[occupied] = sums[occupied] / counts[occupied]
        votes = (weights >= thresholds[table.ids_a]).astype(np.int8) + (
            weights >= thresholds[table.ids_b]
        )
        return _survivor_edges(table, weights, np.flatnonzero(votes >= self.required_votes))


class ReciprocalWNP(WNP):
    """WNP requiring both endpoints to retain the edge."""

    name = "ReciprocalWNP"
    required_votes = 2


class CNP(PruningScheme):
    """Cardinality Node Pruning: per-node top-k retention; union semantics.

    ``k`` defaults to the average number of block assignments per entity
    (rounded up) minus one, floored at 1 — the standard derivation.
    """

    name = "CNP"

    #: votes needed for an edge to survive (1=union, 2=both endpoints)
    required_votes = 1

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def node_budget(self, graph: BlockingGraph) -> int:
        """The per-node k used for *graph*."""
        return self.node_budget_from_blocks(graph.blocks)

    def node_budget_from_blocks(self, blocks) -> int:
        """The per-node k derived from a block collection's statistics."""
        if self.k is not None:
            return self.k
        entities = max(blocks.entity_count(), 1)
        avg_assignments = blocks.total_assignments() / entities
        return max(1, math.ceil(avg_assignments) - 1)

    def prune(self, graph: BlockingGraph) -> list[WeightedEdge]:
        k = self.node_budget(graph)
        view = _directed_view(graph)
        if view is not None:
            return self._prune_arrays(view, k)
        adjacency = graph.adjacency()
        kept_by_node: dict[str, set[str]] = {}
        # heapq.nsmallest == sorted(...)[:k] (same key, same ties), but
        # O(n log k) per node instead of a full O(n log n) sort.
        for node, neighbors in adjacency.items():
            top = heapq.nsmallest(k, neighbors, key=lambda nw: (-nw[1], nw[0]))
            kept_by_node[node] = {other for other, _ in top}
        survivors: list[WeightedEdge] = []
        for edge in graph.edges():
            votes = 0
            if edge.right in kept_by_node.get(edge.left, ()):
                votes += 1
            if edge.left in kept_by_node.get(edge.right, ()):
                votes += 1
            if votes >= self.required_votes:
                survivors.append(edge)
        return _ranked(survivors)

    def _prune_arrays(self, view, k: int) -> list[WeightedEdge]:
        """Vectorized CNP: one lexsort ranks every node's neighbourhood.

        Sorting the directed entries by ``(node, -weight, neighbour URI
        rank)`` makes each node's top-k a contiguous prefix of its group —
        the same deterministic order the heap selection above uses, with
        integer ranks standing in for the URI tie-break.
        """
        np = _np
        table, weights, node, weight_directed = view
        if not len(weights):
            return []
        rank = table.uri_rank
        neighbor_rank = np.empty_like(node)
        neighbor_rank[0::2] = rank[table.ids_b]
        neighbor_rank[1::2] = rank[table.ids_a]
        order = np.lexsort((neighbor_rank, -weight_directed, node))
        sorted_nodes = node[order]
        boundary = np.empty(len(sorted_nodes), dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_nodes[1:], sorted_nodes[:-1], out=boundary[1:])
        group_start = np.flatnonzero(boundary)
        position = np.arange(len(sorted_nodes)) - group_start[np.cumsum(boundary) - 1]
        kept = np.empty(len(sorted_nodes), dtype=bool)
        kept[order] = position < k
        votes = kept[0::2].astype(np.int8) + kept[1::2]
        return _survivor_edges(table, weights, np.flatnonzero(votes >= self.required_votes))


class ReciprocalCNP(CNP):
    """CNP requiring both endpoints to retain the edge."""

    name = "ReciprocalCNP"
    required_votes = 2


#: registry used by experiment sweeps
PRUNERS: dict[str, type[PruningScheme]] = {
    cls.name: cls for cls in (WEP, CEP, WNP, CNP, ReciprocalWNP, ReciprocalCNP)
}


def make_pruner(name: str) -> PruningScheme:
    """Instantiate a pruning scheme by table name (e.g. ``"WNP"``).

    Soft-deprecated shim: ``repro.api.registry.create("pruner", name)``
    is the registry-backed path with parameter validation; this helper
    remains for the callers wired before the registry existed.

    Raises:
        KeyError: for unknown scheme names.
    """
    for key, cls in PRUNERS.items():
        if key.lower() == name.lower():
            return cls()
    raise KeyError(f"unknown pruning scheme {name!r}; choose from {sorted(PRUNERS)}")
