"""Edge-weighting schemes for the blocking graph.

Each scheme turns a pair's co-occurrence statistics into a scalar weight —
a proxy for match likelihood computed *without* reading the descriptions'
values (that is the point: weights are nearly free, comparisons are not).
The five canonical schemes of the meta-blocking literature (and of the
parallel meta-blocking paper [4]) are implemented:

==========  ==================================================================
``CBS``     Common Blocks Scheme — raw number of shared blocks.
``ECBS``    Enhanced CBS — CBS discounted by how many blocks each entity
            appears in: ``CBS · log(B/|B_i|) · log(B/|B_j|)``.
``JS``      Jaccard Scheme — shared blocks over the union of both entities'
            blocks.
``EJS``     Enhanced JS — JS boosted by the (inverse) degrees:
            ``JS · log(E/deg_i) · log(E/deg_j)`` with E the edge count.
``ARCS``    Aggregate Reciprocal Comparisons — ``Σ 1/‖b‖`` over common
            blocks b: small (selective) blocks count more.
==========  ==================================================================
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.blocking.block import BlockCollection


class WeightingScheme(ABC):
    """Base class: per-pair weight from co-occurrence statistics.

    :meth:`prepare` is called once with the full statistics so schemes can
    compute global quantities (block counts, node degrees); :meth:`weight`
    is then called per pair.
    """

    #: short name used in experiment tables (overridden per scheme)
    name = "scheme"

    def prepare(
        self,
        blocks: BlockCollection,
        pair_stats: dict[tuple[str, str], tuple[int, float]],
    ) -> None:
        """Hook for global precomputation (default: none)."""

    @abstractmethod
    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        """Weight of the edge (uri_a, uri_b).

        Args:
            common_blocks: number of blocks containing both descriptions.
            arcs: sum of reciprocal block cardinalities over those blocks.
        """


class CBS(WeightingScheme):
    """Common Blocks Scheme: ``w = |common blocks|``."""

    name = "CBS"

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        return float(common_blocks)


class ECBS(WeightingScheme):
    """Enhanced Common Blocks Scheme.

    ``w = CBS · log(B / |B_a|) · log(B / |B_b|)`` where ``B`` is the total
    block count and ``|B_x|`` the number of blocks containing ``x`` — an
    IDF-style discount for promiscuous entities.
    """

    name = "ECBS"

    def __init__(self) -> None:
        self._total_blocks = 1
        self._blocks_per_entity: dict[str, int] = {}

    def prepare(self, blocks, pair_stats) -> None:
        self._total_blocks = max(len(blocks), 1)
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        blocks_a = self._blocks_per_entity.get(uri_a, 1)
        blocks_b = self._blocks_per_entity.get(uri_b, 1)
        # +1 smoothing keeps entities present in *every* block from zeroing
        # the weight outright while preserving the discount's ordering.
        idf_a = math.log((self._total_blocks + 1) / blocks_a)
        idf_b = math.log((self._total_blocks + 1) / blocks_b)
        return common_blocks * idf_a * idf_b


class JS(WeightingScheme):
    """Jaccard Scheme: shared blocks over union of blocks."""

    name = "JS"

    def __init__(self) -> None:
        self._blocks_per_entity: dict[str, int] = {}

    def prepare(self, blocks, pair_stats) -> None:
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        union = (
            self._blocks_per_entity.get(uri_a, 0)
            + self._blocks_per_entity.get(uri_b, 0)
            - common_blocks
        )
        if union <= 0:
            return 0.0
        return common_blocks / union


class EJS(WeightingScheme):
    """Enhanced Jaccard Scheme.

    ``w = JS · log(E / deg_a) · log(E / deg_b)`` with ``E`` the number of
    distinct edges in the blocking graph and ``deg_x`` the number of
    distinct comparisons entity ``x`` participates in.
    """

    name = "EJS"

    def __init__(self) -> None:
        self._js = JS()
        self._edge_count = 1
        self._degrees: dict[str, int] = {}

    def prepare(self, blocks, pair_stats) -> None:
        self._js.prepare(blocks, pair_stats)
        self._edge_count = max(len(pair_stats), 1)
        degrees: dict[str, int] = {}
        for left, right in pair_stats:
            degrees[left] = degrees.get(left, 0) + 1
            degrees[right] = degrees.get(right, 0) + 1
        self._degrees = degrees

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        js = self._js.weight(uri_a, uri_b, common_blocks, arcs)
        deg_a = self._degrees.get(uri_a, 1)
        deg_b = self._degrees.get(uri_b, 1)
        idf_a = math.log((self._edge_count + 1) / deg_a)
        idf_b = math.log((self._edge_count + 1) / deg_b)
        return js * idf_a * idf_b


class ARCS(WeightingScheme):
    """Aggregate Reciprocal Comparisons Scheme: ``w = Σ_b 1/‖b‖``.

    Membership in a two-description block is maximal evidence (weight 1
    from that block); membership in a thousand-pair block adds almost
    nothing.  ARCS is MinoanER's default scheduler signal (ablated in E4).
    """

    name = "ARCS"

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        return arcs


class ChiSquare(WeightingScheme):
    """Pearson's χ² scheme (the BLAST signal of Simonini et al.).

    Tests how far the observed co-occurrence count of a pair deviates from
    what independence of the two entities' block memberships would
    predict.  With ``B`` total blocks, ``|B_a|``/``|B_b|`` per-entity
    block counts and ``O`` observed common blocks, the expectation under
    independence is ``E = |B_a|·|B_b|/B`` and the statistic aggregates the
    (O−E)²/E terms of the 2×2 contingency table.  Strongly co-occurring
    pairs score orders of magnitude above chance-level ones, making χ² a
    sharp pruning signal on skewed corpora.
    """

    name = "X2"

    def __init__(self) -> None:
        self._total_blocks = 1
        self._blocks_per_entity: dict[str, int] = {}

    def prepare(self, blocks, pair_stats) -> None:
        self._total_blocks = max(len(blocks), 1)
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        total = self._total_blocks
        in_a = self._blocks_per_entity.get(uri_a, 0)
        in_b = self._blocks_per_entity.get(uri_b, 0)
        observed = [
            [common_blocks, in_a - common_blocks],
            [in_b - common_blocks, total - in_a - in_b + common_blocks],
        ]
        row_sums = [in_a, total - in_a]
        col_sums = [in_b, total - in_b]
        statistic = 0.0
        for i in range(2):
            for j in range(2):
                expected = row_sums[i] * col_sums[j] / total
                if expected > 0:
                    deviation = observed[i][j] - expected
                    statistic += deviation * deviation / expected
        return statistic


#: registry used by experiment sweeps
SCHEMES: dict[str, type[WeightingScheme]] = {
    cls.name: cls for cls in (CBS, ECBS, JS, EJS, ARCS, ChiSquare)
}


def make_scheme(name: str) -> WeightingScheme:
    """Instantiate a weighting scheme by table name (e.g. ``"ARCS"``).

    Raises:
        KeyError: for unknown scheme names.
    """
    try:
        return SCHEMES[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown weighting scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
