"""Edge-weighting schemes for the blocking graph.

Each scheme turns a pair's co-occurrence statistics into a scalar weight —
a proxy for match likelihood computed *without* reading the descriptions'
values (that is the point: weights are nearly free, comparisons are not).
The five canonical schemes of the meta-blocking literature (and of the
parallel meta-blocking paper [4]) are implemented:

==========  ==================================================================
``CBS``     Common Blocks Scheme — raw number of shared blocks.
``ECBS``    Enhanced CBS — CBS discounted by how many blocks each entity
            appears in: ``CBS · log(B/|B_i|) · log(B/|B_j|)``.
``JS``      Jaccard Scheme — shared blocks over the union of both entities'
            blocks.
``EJS``     Enhanced JS — JS boosted by the (inverse) degrees:
            ``JS · log(E/deg_i) · log(E/deg_j)`` with E the edge count.
``ARCS``    Aggregate Reciprocal Comparisons — ``Σ 1/‖b‖`` over common
            blocks b: small (selective) blocks count more.
==========  ==================================================================

Every scheme supports two evaluation paths with bit-identical results:

* the **string path** — :meth:`~WeightingScheme.prepare` once, then
  :meth:`~WeightingScheme.weight` per URI pair (the original API, used by
  the reference graph construction and the MapReduce jobs);
* the **id fast path** — :meth:`~WeightingScheme.prepare_ids` once
  (precomputing per-entity factors — block counts, degrees and their log
  discounts — as flat lists indexed by dense entity id), then
  :meth:`~WeightingScheme.weight_ids` per packed pair.  Log factors are
  computed once per entity instead of once per edge endpoint visit.

``weight_ids`` must be called with ``id_a`` naming the endpoint whose URI
sorts first, mirroring the canonical argument order of ``weight`` — float
products associate left-to-right, so argument order is part of the
bit-identity contract.

The formulas themselves live in :mod:`repro.metablocking.scheme_defs`
(shared with the SQL compiler); the classes here only orchestrate the
"prepare globals, then weight each pair" dance around those kernels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

try:  # pragma: no cover - exercised through the array fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.blocking.block import BlockCollection
from repro.metablocking import scheme_defs
from repro.model.interner import PAIR_MASK, PAIR_SHIFT


class WeightingScheme(ABC):
    """Base class: per-pair weight from co-occurrence statistics.

    :meth:`prepare` (or :meth:`prepare_ids`) is called once with the full
    statistics so schemes can compute global quantities (block counts,
    node degrees); :meth:`weight` (or :meth:`weight_ids`) is then called
    per pair.
    """

    #: short name used in experiment tables (overridden per scheme)
    name = "scheme"

    def prepare(
        self,
        blocks: BlockCollection,
        pair_stats: dict[tuple[str, str], tuple[int, float]],
    ) -> None:
        """Hook for global precomputation (default: none)."""

    def prepare_ids(
        self,
        blocks: BlockCollection,
        pair_common: dict[int, int],
    ) -> bool:
        """Prepare the int-id fast path from packed-pair statistics.

        Args:
            blocks: the block collection (for its id views).
            pair_common: packed pair → number of common blocks.

        Returns:
            True when the scheme supports :meth:`weight_ids`; the default
            implementation opts out, making the graph fall back to the
            string API.
        """
        return False

    def weight_ids(
        self, id_a: int, id_b: int, common_blocks: int, arcs: float
    ) -> float:
        """Weight of the edge (id_a, id_b); requires :meth:`prepare_ids`.

        ``id_a`` must be the endpoint whose URI is lexicographically
        smaller (see module docstring).
        """
        raise NotImplementedError(f"{self.name} has no id fast path")

    def prepare_arrays(self, blocks: BlockCollection, ids_a, ids_b, common) -> bool:
        """Prepare the vectorized path from distinct-edge endpoint arrays.

        Args:
            blocks: the block collection (for its id views).
            ids_a / ids_b: per-edge endpoint ids (``ids_a`` holding the
                lexicographically smaller URI of each pair).
            common: per-edge common-block counts.

        Returns:
            True when the scheme supports :meth:`weight_array`; the
            default opts out, making the graph fall back to the string
            API.  Requires numpy.
        """
        return False

    def weight_array(self, ids_a, ids_b, common, arcs):
        """Vectorized weights for all edges; requires :meth:`prepare_arrays`.

        Arguments are parallel numpy arrays as in :meth:`prepare_arrays`
        plus per-edge ARCS sums; returns a float64 array.  Expression
        structure mirrors :meth:`weight` exactly, keeping results
        bit-identical elementwise.
        """
        raise NotImplementedError(f"{self.name} has no array fast path")

    @abstractmethod
    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        """Weight of the edge (uri_a, uri_b).

        Args:
            common_blocks: number of blocks containing both descriptions.
            arcs: sum of reciprocal block cardinalities over those blocks.
        """


def _blocks_per_entity_ids(blocks: BlockCollection) -> list[int]:
    """Per-entity placement counts, indexed by dense id."""
    return [len(ordinals) for ordinals in blocks.id_entity_index()]


def _placement_counts_array(blocks: BlockCollection):
    """Per-entity placement counts as an int64 array (numpy path)."""
    csr = blocks.id_arrays()
    assert csr is not None
    return _np.bincount(csr.sides, minlength=len(blocks.interner()))


class CBS(WeightingScheme):
    """Common Blocks Scheme: ``w = |common blocks|``."""

    name = "CBS"

    def prepare_ids(self, blocks, pair_common) -> bool:
        return True

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        return scheme_defs.cbs_weight(common_blocks)

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        return _np is not None

    def weight_array(self, ids_a, ids_b, common, arcs):
        return scheme_defs.cbs_weights(common)

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        return scheme_defs.cbs_weight(common_blocks)


class ECBS(WeightingScheme):
    """Enhanced Common Blocks Scheme.

    ``w = CBS · log(B / |B_a|) · log(B / |B_b|)`` where ``B`` is the total
    block count and ``|B_x|`` the number of blocks containing ``x`` — an
    IDF-style discount for promiscuous entities.
    """

    name = "ECBS"

    def __init__(self) -> None:
        self._total_blocks = 1
        self._blocks_per_entity: dict[str, int] = {}
        self._log_factor: list[float] = []
        self._log_factor_array = None

    def prepare(self, blocks, pair_stats) -> None:
        self._total_blocks = max(len(blocks), 1)
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def prepare_ids(self, blocks, pair_common) -> bool:
        total = max(len(blocks), 1)
        self._total_blocks = total
        # one log per entity, not per edge
        self._log_factor = scheme_defs.ecbs_log_factors(
            total, _blocks_per_entity_ids(blocks)
        )
        return True

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        factor = self._log_factor
        return scheme_defs.factor_product(common_blocks, factor[id_a], factor[id_b])

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        if _np is None:
            return False
        total = max(len(blocks), 1)
        self._total_blocks = total
        counts = _placement_counts_array(blocks)
        # math.log per entity (not np.log: it can differ in the last ulp
        # from the reference's math.log) — still once per entity, not per
        # edge endpoint.
        self._log_factor_array = _np.array(
            scheme_defs.ecbs_log_factors(total, counts.tolist())
        )
        return True

    def weight_array(self, ids_a, ids_b, common, arcs):
        factor = self._log_factor_array
        return scheme_defs.factor_product(common, factor[ids_a], factor[ids_b])

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        blocks_a = self._blocks_per_entity.get(uri_a, 1)
        blocks_b = self._blocks_per_entity.get(uri_b, 1)
        idf_a = scheme_defs.ecbs_log_factor(self._total_blocks, blocks_a)
        idf_b = scheme_defs.ecbs_log_factor(self._total_blocks, blocks_b)
        return scheme_defs.factor_product(common_blocks, idf_a, idf_b)


class JS(WeightingScheme):
    """Jaccard Scheme: shared blocks over union of blocks."""

    name = "JS"

    def __init__(self) -> None:
        self._blocks_per_entity: dict[str, int] = {}
        self._block_counts: list[int] = []
        self._block_counts_array = None

    def prepare(self, blocks, pair_stats) -> None:
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def prepare_ids(self, blocks, pair_common) -> bool:
        self._block_counts = _blocks_per_entity_ids(blocks)
        return True

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        counts = self._block_counts
        union = scheme_defs.js_union(counts[id_a], counts[id_b], common_blocks)
        return scheme_defs.js_weight(common_blocks, union)

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        if _np is None:
            return False
        self._block_counts_array = _placement_counts_array(blocks)
        return True

    def weight_array(self, ids_a, ids_b, common, arcs):
        counts = self._block_counts_array
        union = scheme_defs.js_union(counts[ids_a], counts[ids_b], common)
        return scheme_defs.js_weights(common, union)

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        union = scheme_defs.js_union(
            self._blocks_per_entity.get(uri_a, 0),
            self._blocks_per_entity.get(uri_b, 0),
            common_blocks,
        )
        return scheme_defs.js_weight(common_blocks, union)


class EJS(WeightingScheme):
    """Enhanced Jaccard Scheme.

    ``w = JS · log(E / deg_a) · log(E / deg_b)`` with ``E`` the number of
    distinct edges in the blocking graph and ``deg_x`` the number of
    distinct comparisons entity ``x`` participates in.
    """

    name = "EJS"

    def __init__(self) -> None:
        self._js = JS()
        self._edge_count = 1
        self._degrees: dict[str, int] = {}
        self._log_factor: list[float] = []
        self._log_factor_array = None

    def prepare(self, blocks, pair_stats) -> None:
        self._js.prepare(blocks, pair_stats)
        self._edge_count = max(len(pair_stats), 1)
        degrees: dict[str, int] = {}
        for left, right in pair_stats:
            degrees[left] = degrees.get(left, 0) + 1
            degrees[right] = degrees.get(right, 0) + 1
        self._degrees = degrees

    def prepare_ids(self, blocks, pair_common) -> bool:
        self._js.prepare_ids(blocks, pair_common)
        edge_count = max(len(pair_common), 1)
        degrees = [0] * len(blocks.id_entity_index())
        for key in pair_common:
            degrees[key >> PAIR_SHIFT] += 1
            degrees[key & PAIR_MASK] += 1
        self._set_log_factor(edge_count, degrees)
        return True

    def _set_log_factor(self, edge_count: int, degrees) -> None:
        self._edge_count = edge_count
        self._log_factor = scheme_defs.ejs_log_factors(edge_count, degrees)

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        js = self._js.weight_ids(id_a, id_b, common_blocks, arcs)
        factor = self._log_factor
        return scheme_defs.factor_product(js, factor[id_a], factor[id_b])

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        if _np is None:
            return False
        self._js.prepare_arrays(blocks, ids_a, ids_b, common)
        entities = len(blocks.interner())
        degrees = _np.bincount(ids_a, minlength=entities) + _np.bincount(
            ids_b, minlength=entities
        )
        self._set_log_factor(max(len(common), 1), degrees.tolist())
        self._log_factor_array = _np.asarray(self._log_factor)
        return True

    def weight_array(self, ids_a, ids_b, common, arcs):
        js = self._js.weight_array(ids_a, ids_b, common, arcs)
        factor = self._log_factor_array
        return scheme_defs.factor_product(js, factor[ids_a], factor[ids_b])

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        js = self._js.weight(uri_a, uri_b, common_blocks, arcs)
        idf_a = scheme_defs.ejs_log_factor(self._edge_count, self._degrees.get(uri_a, 1))
        idf_b = scheme_defs.ejs_log_factor(self._edge_count, self._degrees.get(uri_b, 1))
        return scheme_defs.factor_product(js, idf_a, idf_b)


class ARCS(WeightingScheme):
    """Aggregate Reciprocal Comparisons Scheme: ``w = Σ_b 1/‖b‖``.

    Membership in a two-description block is maximal evidence (weight 1
    from that block); membership in a thousand-pair block adds almost
    nothing.  ARCS is MinoanER's default scheduler signal (ablated in E4).
    """

    name = "ARCS"

    def prepare_ids(self, blocks, pair_common) -> bool:
        return True

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        return scheme_defs.arcs_weight(arcs)

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        return _np is not None

    def weight_array(self, ids_a, ids_b, common, arcs):
        return scheme_defs.arcs_weight(arcs)

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        return scheme_defs.arcs_weight(arcs)


class ChiSquare(WeightingScheme):
    """Pearson's χ² scheme (the BLAST signal of Simonini et al.).

    Tests how far the observed co-occurrence count of a pair deviates from
    what independence of the two entities' block memberships would
    predict.  With ``B`` total blocks, ``|B_a|``/``|B_b|`` per-entity
    block counts and ``O`` observed common blocks, the expectation under
    independence is ``E = |B_a|·|B_b|/B`` and the statistic aggregates the
    (O−E)²/E terms of the 2×2 contingency table.  Strongly co-occurring
    pairs score orders of magnitude above chance-level ones, making χ² a
    sharp pruning signal on skewed corpora.
    """

    name = "X2"

    def __init__(self) -> None:
        self._total_blocks = 1
        self._blocks_per_entity: dict[str, int] = {}
        self._block_counts: list[int] = []
        self._block_counts_array = None

    def prepare(self, blocks, pair_stats) -> None:
        self._total_blocks = max(len(blocks), 1)
        self._blocks_per_entity = {
            uri: len(keys) for uri, keys in blocks.entity_index().items()
        }

    def prepare_ids(self, blocks, pair_common) -> bool:
        self._total_blocks = max(len(blocks), 1)
        self._block_counts = _blocks_per_entity_ids(blocks)
        return True

    def weight_ids(self, id_a, id_b, common_blocks, arcs) -> float:
        counts = self._block_counts
        return self._statistic(common_blocks, counts[id_a], counts[id_b])

    def prepare_arrays(self, blocks, ids_a, ids_b, common) -> bool:
        if _np is None:
            return False
        self._total_blocks = max(len(blocks), 1)
        self._block_counts_array = _placement_counts_array(blocks)
        return True

    def weight_array(self, ids_a, ids_b, common, arcs):
        counts = self._block_counts_array
        return scheme_defs.chi_square_weights(
            common, counts[ids_a], counts[ids_b], self._total_blocks
        )

    def weight(self, uri_a: str, uri_b: str, common_blocks: int, arcs: float) -> float:
        in_a = self._blocks_per_entity.get(uri_a, 0)
        in_b = self._blocks_per_entity.get(uri_b, 0)
        return self._statistic(common_blocks, in_a, in_b)

    def _statistic(self, common_blocks: int, in_a: int, in_b: int) -> float:
        return scheme_defs.chi_square_statistic(
            common_blocks, in_a, in_b, self._total_blocks
        )


def weight_pair_table(scheme: WeightingScheme, blocks: BlockCollection, table):
    """Per-row weights of a pair table under *scheme* (float64 array).

    The one place the "prepare globals, then weight each pair" dance is
    spelled out for array-shaped statistics: schemes with a vectorized
    path are evaluated as array expressions; schemes without one fall
    back to the string API row by row.  Shared by the sequential
    :meth:`~repro.metablocking.graph.BlockingGraph.materialize` fast path
    and the MapReduce int-ID formulation, which guarantees both produce
    bit-identical weights from identical statistics.
    """
    assert _np is not None
    if not table.pairs:
        return _np.empty(0, dtype=_np.float64)
    if scheme.prepare_arrays(blocks, table.ids_a, table.ids_b, table.common):
        return scheme.weight_array(table.ids_a, table.ids_b, table.common, table.arcs)
    stats = {
        pair: (count, arc)
        for pair, count, arc in zip(
            table.pairs, table.common.tolist(), table.arcs.tolist()
        )
    }
    scheme.prepare(blocks, stats)
    return _np.array(
        [
            scheme.weight(pair[0], pair[1], count, arc)
            for pair, (count, arc) in stats.items()
        ],
        dtype=_np.float64,
    )


#: registry used by experiment sweeps
SCHEMES: dict[str, type[WeightingScheme]] = {
    cls.name: cls for cls in (CBS, ECBS, JS, EJS, ARCS, ChiSquare)
}


def make_scheme(name: str) -> WeightingScheme:
    """Instantiate a weighting scheme by table name (e.g. ``"ARCS"``).

    Soft-deprecated shim: ``repro.api.registry.create("weighting", name)``
    is the registry-backed path with parameter validation; this helper
    remains for the callers wired before the registry existed.

    Raises:
        KeyError: for unknown scheme names.
    """
    try:
        return SCHEMES[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown weighting scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
