"""Meta-blocking: restructuring a block collection into a pruned comparison set.

Token blocking places highly similar descriptions in *many* common blocks,
so the same pair is compared repeatedly, and most implied comparisons
involve pairs sharing only one or two noisy tokens.  Meta-blocking
(Papadakis et al.; parallelized in the companion IEEE Big Data 2015 paper
[4]) recasts the block collection as a **blocking graph** — nodes are
descriptions, edges connect co-occurring pairs, edge weights aggregate the
co-occurrence evidence — and prunes low-weight edges.  The surviving edges
are exactly the distinct comparisons MinoanER's scheduler then orders.

* :mod:`repro.metablocking.graph` — the (implicit) blocking graph;
* :mod:`repro.metablocking.weighting` — CBS, ECBS, JS, EJS, ARCS schemes;
* :mod:`repro.metablocking.pruning` — WEP, CEP, WNP, CNP (+ reciprocal).
"""

from repro.metablocking.graph import (
    BlockingGraph,
    PairTable,
    WeightedEdge,
    pair_table_for,
)
from repro.metablocking.weighting import (
    WeightingScheme,
    CBS,
    ECBS,
    JS,
    EJS,
    ARCS,
    ChiSquare,
    make_scheme,
    SCHEMES,
)
from repro.metablocking.pruning import (
    PruningScheme,
    WEP,
    CEP,
    WNP,
    CNP,
    ReciprocalWNP,
    ReciprocalCNP,
    make_pruner,
    PRUNERS,
)

__all__ = [
    "BlockingGraph",
    "PairTable",
    "pair_table_for",
    "WeightedEdge",
    "WeightingScheme",
    "CBS",
    "ECBS",
    "JS",
    "EJS",
    "ARCS",
    "ChiSquare",
    "make_scheme",
    "SCHEMES",
    "PruningScheme",
    "WEP",
    "CEP",
    "WNP",
    "CNP",
    "ReciprocalWNP",
    "ReciprocalCNP",
    "make_pruner",
    "PRUNERS",
]
