"""The entity description: URI + attribute–value pairs.

An entity description corresponds to the set of RDF triples sharing a
subject URI.  Values are either literals (strings) or URIs of other
descriptions; the latter induce the *relationship graph* that MinoanER's
update phase exploits as similarity evidence.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class EntityDescription:
    """A single entity description.

    Attributes are multi-valued: the same property may appear with several
    values (common in RDF).  The class is deliberately schema-agnostic — the
    Web-of-data setting means no attribute alignment can be assumed.

    Args:
        uri: the description's identifier.
        attributes: mapping of property → iterable of values.  Values are
            stored as strings; use :meth:`object_references` to find values
            that are themselves URIs of other descriptions.
        source: identifier of the KB this description came from (used by
            clean-clean ER to avoid intra-source comparisons).

    >>> d = EntityDescription("http://ex.org/e1", {"name": ["Alice"]})
    >>> d.values()
    ['Alice']
    """

    __slots__ = ("uri", "source", "_attributes")

    def __init__(
        self,
        uri: str,
        attributes: dict[str, Iterable[str]] | None = None,
        source: str = "",
    ) -> None:
        if not uri:
            raise ValueError("an entity description requires a non-empty URI")
        self.uri = uri
        self.source = source
        self._attributes: dict[str, list[str]] = {}
        if attributes:
            for prop, values in attributes.items():
                for value in values:
                    self.add(prop, value)

    # -- construction ------------------------------------------------------

    def add(self, prop: str, value: str) -> None:
        """Append *value* under *prop* (duplicates are kept once)."""
        if not prop:
            raise ValueError("property name must be non-empty")
        values = self._attributes.setdefault(prop, [])
        if value not in values:
            values.append(value)

    # -- inspection ---------------------------------------------------------

    def __repr__(self) -> str:
        return f"EntityDescription({self.uri!r}, {len(self._attributes)} props)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityDescription):
            return NotImplemented
        return self.uri == other.uri and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self.uri)

    def __len__(self) -> int:
        """Number of attribute–value pairs."""
        return sum(len(v) for v in self._attributes.values())

    def properties(self) -> list[str]:
        """The property names used by this description."""
        return list(self._attributes)

    def get(self, prop: str) -> list[str]:
        """Values of *prop* (empty list if absent)."""
        return list(self._attributes.get(prop, ()))

    def first(self, prop: str, default: str = "") -> str:
        """First value of *prop*, or *default*."""
        values = self._attributes.get(prop)
        return values[0] if values else default

    def values(self) -> list[str]:
        """All attribute values, in property-then-insertion order."""
        out: list[str] = []
        for vals in self._attributes.values():
            out.extend(vals)
        return out

    def pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(property, value)`` pairs."""
        for prop, vals in self._attributes.items():
            for value in vals:
                yield prop, value

    def literal_pairs(self) -> Iterator[tuple[str, str]]:
        """``(property, value)`` pairs whose value is not a URI."""
        for prop, value in self.pairs():
            if not _looks_like_uri(value):
                yield prop, value

    def object_references(self) -> list[str]:
        """Values that look like URIs — candidate links to other descriptions.

        The relationship graph of an :class:`~repro.model.collection.
        EntityCollection` is built from these.
        """
        return [v for v in self.values() if _looks_like_uri(v)]

    def literal_values(self) -> list[str]:
        """Values that are not URIs (the text content used for blocking)."""
        return [v for v in self.values() if not _looks_like_uri(v)]

    def copy(self) -> "EntityDescription":
        """Deep copy (new attribute lists)."""
        clone = EntityDescription(self.uri, source=self.source)
        for prop, vals in self._attributes.items():
            clone._attributes[prop] = list(vals)
        return clone

    def merged_with(self, other: "EntityDescription") -> "EntityDescription":
        """Union of the two descriptions' attributes, keeping this URI.

        Used when consolidating matched descriptions into a resolved entity
        profile (the attribute-completeness benefit counts how much such
        merging enriches profiles).
        """
        merged = self.copy()
        for prop, value in other.pairs():
            merged.add(prop, value)
        return merged


def _looks_like_uri(value: str) -> bool:
    return value.startswith(("http://", "https://", "urn:"))
