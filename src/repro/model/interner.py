"""URI ↔ dense integer id interning.

Every hot loop in blocking and meta-blocking is, at bottom, a loop over
entity identities.  Hashing and comparing full URI strings (and
allocating a tuple per pair) in those loops is the dominant constant
factor, so the platform interns URIs to dense integer ids once and runs
the loops over ints: a pair packs into a single ``a << 32 | b`` integer,
per-entity aggregates become flat lists indexed by id, and URIs are
translated back only at the public-API boundary.

The interner is append-only: ids are assigned in first-seen order and
never change, so any index built against it stays valid as long as the
underlying collection is not mutated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: number of bits reserved for the low id in a packed pair
PAIR_SHIFT = 32
#: mask extracting the low id from a packed pair
PAIR_MASK = (1 << PAIR_SHIFT) - 1


def pack_pair(id_a: int, id_b: int) -> int:
    """Canonical packed identity of an unordered id pair.

    The smaller id occupies the high bits so packed pairs sort like
    ``(min, max)`` tuples.

    >>> pack_pair(3, 1) == pack_pair(1, 3)
    True
    >>> unpack_pair(pack_pair(1, 3))
    (1, 3)
    """
    if id_a < id_b:
        return (id_a << PAIR_SHIFT) | id_b
    return (id_b << PAIR_SHIFT) | id_a


def unpack_pair(key: int) -> tuple[int, int]:
    """Invert :func:`pack_pair` into the ``(min_id, max_id)`` tuple."""
    return key >> PAIR_SHIFT, key & PAIR_MASK


class EntityInterner:
    """A bijection between URIs and dense integer ids.

    Ids are assigned in first-intern order starting at 0, so an interner
    doubles as an ordered set of URIs: iterating yields URIs in id order
    and ``uris()[i]`` is the URI of id ``i``.

    >>> interner = EntityInterner(["a", "b"])
    >>> interner.intern("a")
    0
    >>> interner.intern("c")
    2
    >>> interner.uri_of(1)
    'b'
    """

    __slots__ = ("_ids", "_uris")

    def __init__(self, uris: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._uris: list[str] = []
        for uri in uris:
            self.intern(uri)

    def __len__(self) -> int:
        return len(self._uris)

    def __contains__(self, uri: str) -> bool:
        return uri in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._uris)

    def __repr__(self) -> str:
        return f"EntityInterner({len(self)} entities)"

    def intern(self, uri: str) -> int:
        """Id of *uri*, assigning the next dense id on first sight."""
        existing = self._ids.get(uri)
        if existing is not None:
            return existing
        new_id = len(self._uris)
        self._ids[uri] = new_id
        self._uris.append(uri)
        return new_id

    def id_of(self, uri: str) -> int:
        """Id of an already-interned URI.

        Raises:
            KeyError: if *uri* was never interned.
        """
        return self._ids[uri]

    def get(self, uri: str, default: int = -1) -> int:
        """Id of *uri*, or *default* when unknown."""
        return self._ids.get(uri, default)

    def uri_of(self, entity_id: int) -> str:
        """URI of *entity_id*.

        Raises:
            IndexError: for ids never assigned.
        """
        return self._uris[entity_id]

    def uris(self) -> list[str]:
        """All URIs, indexed by id (the returned list is a copy)."""
        return list(self._uris)

    def uri_table(self) -> list[str]:
        """The internal id → URI table (NOT a copy; do not mutate)."""
        return self._uris
