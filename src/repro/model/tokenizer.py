"""The tokenizer shared by blocking and token-based similarity.

Token blocking and the schema-agnostic similarity functions both view a
description as a bag of normalized tokens drawn from its literal values and
(optionally) its URI infix.  Centralizing tokenization here guarantees the
two stages agree on what a "common token" is — the invariant the
meta-blocking weighting schemes rely on.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.model.description import EntityDescription
from repro.model.namespaces import uri_infix
from repro.utils.text import token_split

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.collection import EntityCollection


class Tokenizer:
    """Configurable description → token-bag mapper.

    Args:
        min_token_length: drop tokens shorter than this many characters.
        include_uri_infix: also emit tokens from the description URI's
            infix (MinoanER: "a common token in their descriptions or
            URIs").
        include_reference_infixes: also emit tokens from the infixes of
            URI-valued attributes — neighbour names often leak entity
            evidence (e.g. ``dbpedia:Stanley_Kubrick`` as director).
        stop_tokens: tokens to suppress entirely (high-frequency noise).
    """

    def __init__(
        self,
        min_token_length: int = 2,
        include_uri_infix: bool = True,
        include_reference_infixes: bool = False,
        stop_tokens: frozenset[str] = frozenset(),
    ) -> None:
        if min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        self.min_token_length = min_token_length
        self.include_uri_infix = include_uri_infix
        self.include_reference_infixes = include_reference_infixes
        self.stop_tokens = frozenset(stop_tokens)

    def tokens(self, description: EntityDescription) -> list[str]:
        """All tokens of *description*, duplicates preserved."""
        out: list[str] = []
        for value in description.literal_values():
            out.extend(token_split(value, self.min_token_length))
        if self.include_uri_infix:
            out.extend(token_split(uri_infix(description.uri), self.min_token_length))
        if self.include_reference_infixes:
            for ref in description.object_references():
                out.extend(token_split(uri_infix(ref), self.min_token_length))
        if self.stop_tokens:
            out = [t for t in out if t not in self.stop_tokens]
        return out

    def token_set(self, description: EntityDescription) -> frozenset[str]:
        """Distinct tokens of *description* (blocking keys)."""
        return frozenset(self.tokens(description))

    def token_counts(self, description: EntityDescription) -> Counter:
        """Token multiplicities (for TF-IDF style similarity)."""
        return Counter(self.tokens(description))

    def with_stop_tokens(self, stop_tokens: Iterable[str]) -> "Tokenizer":
        """A copy of this tokenizer with *stop_tokens* added."""
        return Tokenizer(
            min_token_length=self.min_token_length,
            include_uri_infix=self.include_uri_infix,
            include_reference_infixes=self.include_reference_infixes,
            stop_tokens=self.stop_tokens | frozenset(stop_tokens),
        )


def infer_stop_tokens(
    collections: Iterable["EntityCollection"],
    tokenizer: Tokenizer | None = None,
    max_document_fraction: float = 0.25,
) -> frozenset[str]:
    """Corpus-driven stop tokens: tokens present in too many descriptions.

    A token appearing in more than ``max_document_fraction`` of all
    descriptions discriminates nothing — its block is pure cost.  Purging
    removes such blocks *after* they are built; suppressing the tokens at
    the tokenizer keeps them from being built at all, which also keeps
    them out of similarity vectors.

    Args:
        collections: the corpora to profile.
        tokenizer: token extractor (defaults to the blocking tokenizer).
        max_document_fraction: document-frequency cut-off in (0, 1].

    Raises:
        ValueError: for an out-of-range fraction.
    """
    if not 0.0 < max_document_fraction <= 1.0:
        raise ValueError("max_document_fraction must be in (0, 1]")
    tokenizer = tokenizer or Tokenizer()
    document_frequency: Counter = Counter()
    total = 0
    for collection in collections:
        for description in collection:
            total += 1
            document_frequency.update(tokenizer.token_set(description))
    if total == 0:
        return frozenset()
    limit = max_document_fraction * total
    return frozenset(
        token for token, df in document_frequency.items() if df > limit
    )
