"""Entity description model.

The unit of resolution in the Web of Data is the *entity description*: a URI
plus a set of attribute–value pairs (the subject of a group of RDF triples).
This package defines:

* :class:`~repro.model.description.EntityDescription` — one description;
* :class:`~repro.model.collection.EntityCollection` — a knowledge base (KB)
  of descriptions, with token/statistics indexes and the relationship graph
  connecting descriptions that reference each other (the structure the
  progressive *update* phase walks);
* :class:`~repro.model.interner.EntityInterner` — the URI ↔ dense integer
  id bijection the blocking/meta-blocking hot paths run on;
* URI utilities implementing the prefix/infix/suffix decomposition used by
  URI-aware blocking;
* the tokenizer shared by blocking and matching.
"""

from repro.model.description import EntityDescription
from repro.model.collection import EntityCollection, CollectionStatistics
from repro.model.interner import EntityInterner, pack_pair, unpack_pair
from repro.model.namespaces import split_uri, uri_infix, uri_local_name
from repro.model.tokenizer import Tokenizer, infer_stop_tokens

__all__ = [
    "EntityDescription",
    "EntityCollection",
    "CollectionStatistics",
    "EntityInterner",
    "pack_pair",
    "unpack_pair",
    "split_uri",
    "uri_infix",
    "uri_local_name",
    "Tokenizer",
    "infer_stop_tokens",
]
