"""Entity collections (knowledge bases) and their derived indexes.

An :class:`EntityCollection` holds the descriptions of one KB (or of a union
of KBs for dirty ER) and materializes the two structures the rest of the
platform needs:

* the **relationship graph** — which descriptions reference which (the
  neighbourhood the progressive *update* phase propagates evidence along);
* per-collection **statistics** — the LOD-cloud shape measurements the
  paper's motivation section quotes (property diversity, vocabulary reuse,
  linkage density).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner


@dataclass(frozen=True)
class CollectionStatistics:
    """Shape statistics of a collection (see paper §1's LOD measurements)."""

    description_count: int
    triple_count: int
    property_count: int
    avg_properties_per_description: float
    avg_values_per_description: float
    relationship_count: int
    avg_out_degree: float
    source_count: int

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable rows for reporting."""
        return [
            ("descriptions", str(self.description_count)),
            ("attribute-value pairs", str(self.triple_count)),
            ("distinct properties", str(self.property_count)),
            ("avg properties/description", f"{self.avg_properties_per_description:.2f}"),
            ("avg values/description", f"{self.avg_values_per_description:.2f}"),
            ("relationships", str(self.relationship_count)),
            ("avg out-degree", f"{self.avg_out_degree:.2f}"),
            ("sources", str(self.source_count)),
        ]


class EntityCollection:
    """A set of entity descriptions with lazy relationship/stat indexes.

    Args:
        descriptions: initial content.
        name: label used in reports (e.g. ``"dbpedia-sample"``).

    The collection preserves insertion order, so iteration and the integer
    ids assigned by :meth:`index_of` are deterministic.
    """

    def __init__(
        self,
        descriptions: Iterable[EntityDescription] = (),
        name: str = "collection",
    ) -> None:
        self.name = name
        self._by_uri: dict[str, EntityDescription] = {}
        self._interner = EntityInterner()
        self._neighbors: dict[str, list[str]] | None = None
        self._inverse_neighbors: dict[str, list[str]] | None = None
        for description in descriptions:
            self.add(description)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_uri)

    def __iter__(self) -> Iterator[EntityDescription]:
        by_uri = self._by_uri
        for uri in self._interner:
            description = by_uri.get(uri)
            if description is not None:
                yield description

    def __contains__(self, uri: str) -> bool:
        return uri in self._by_uri

    def __getitem__(self, uri: str) -> EntityDescription:
        return self._by_uri[uri]

    def __repr__(self) -> str:
        return f"EntityCollection({self.name!r}, {len(self)} descriptions)"

    # -- construction ----------------------------------------------------------

    def add(self, description: EntityDescription) -> None:
        """Insert *description*; merges attributes if the URI already exists."""
        existing = self._by_uri.get(description.uri)
        if existing is None:
            self._by_uri[description.uri] = description
            self._interner.intern(description.uri)
        else:
            for prop, value in description.pairs():
                existing.add(prop, value)
        self._invalidate()

    def remove(self, uri: str) -> bool:
        """Retract the description with *uri*; returns True if present.

        The interner entry is kept — ids are append-only and stay stable
        so every structure keyed by dense id survives the retraction —
        but the description leaves the live set: iteration, ``len`` and
        lookups no longer see it, and a later :meth:`add` of the same
        URI starts from an empty description at the original insertion
        rank.
        """
        if self._by_uri.pop(uri, None) is None:
            return False
        self._invalidate()
        return True

    def get(self, uri: str) -> EntityDescription | None:
        """Description with *uri*, or None."""
        return self._by_uri.get(uri)

    def uris(self) -> list[str]:
        """Live URIs in insertion order (removed URIs are skipped)."""
        return [uri for uri in self._interner if uri in self._by_uri]

    def index_of(self, uri: str) -> int:
        """Stable integer id of *uri* (insertion rank).

        Raises:
            KeyError: if the URI is not in the collection.
        """
        return self._interner.id_of(uri)

    @property
    def interner(self) -> EntityInterner:
        """The URI ↔ dense-id bijection backing :meth:`index_of`.

        The interner is live (not a copy): ids stay stable as long as the
        collection only grows.
        """
        return self._interner

    def union(self, other: "EntityCollection", name: str | None = None) -> "EntityCollection":
        """New collection containing both inputs' descriptions (dirty ER)."""
        merged = EntityCollection(name=name or f"{self.name}+{other.name}")
        for description in self:
            merged.add(description.copy())
        for description in other:
            merged.add(description.copy())
        return merged

    def _invalidate(self) -> None:
        self._neighbors = None
        self._inverse_neighbors = None

    # -- relationship graph -----------------------------------------------------

    def neighbors(self, uri: str) -> list[str]:
        """Out-neighbours of *uri*: descriptions it references.

        Only references that resolve to a description inside this
        collection count — dangling URIs are external and carry no
        resolvable evidence.
        """
        self._ensure_graph()
        assert self._neighbors is not None
        return list(self._neighbors.get(uri, ()))

    def inverse_neighbors(self, uri: str) -> list[str]:
        """In-neighbours of *uri*: descriptions that reference it."""
        self._ensure_graph()
        assert self._inverse_neighbors is not None
        return list(self._inverse_neighbors.get(uri, ()))

    def all_neighbors(self, uri: str) -> list[str]:
        """Union of in- and out-neighbours, deduplicated, order-stable."""
        seen: dict[str, None] = {}
        for other in self.neighbors(uri):
            seen.setdefault(other)
        for other in self.inverse_neighbors(uri):
            seen.setdefault(other)
        return list(seen)

    def relationship_edges(self) -> Iterator[tuple[str, str]]:
        """Iterate over directed (subject, object) relationship edges."""
        self._ensure_graph()
        assert self._neighbors is not None
        for subject, objects in self._neighbors.items():
            for obj in objects:
                yield subject, obj

    def _ensure_graph(self) -> None:
        if self._neighbors is not None:
            return
        neighbors: dict[str, list[str]] = {}
        inverse: dict[str, list[str]] = {}
        for description in self:
            targets: list[str] = []
            for ref in description.object_references():
                if ref in self._by_uri and ref != description.uri:
                    targets.append(ref)
                    inverse.setdefault(ref, []).append(description.uri)
            if targets:
                neighbors[description.uri] = targets
        self._neighbors = neighbors
        self._inverse_neighbors = inverse

    # -- statistics ----------------------------------------------------------------

    def statistics(self) -> CollectionStatistics:
        """Compute shape statistics (see :class:`CollectionStatistics`)."""
        self._ensure_graph()
        assert self._neighbors is not None
        properties: set[str] = set()
        triple_count = 0
        prop_occurrences = 0
        sources: set[str] = set()
        for description in self:
            props = description.properties()
            properties.update(props)
            prop_occurrences += len(props)
            triple_count += len(description)
            sources.add(description.source)
        n = len(self) or 1
        relationship_count = sum(len(v) for v in self._neighbors.values())
        return CollectionStatistics(
            description_count=len(self),
            triple_count=triple_count,
            property_count=len(properties),
            avg_properties_per_description=prop_occurrences / n,
            avg_values_per_description=triple_count / n,
            relationship_count=relationship_count,
            avg_out_degree=relationship_count / n,
            source_count=len(sources),
        )
