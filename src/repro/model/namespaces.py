"""URI decomposition utilities.

MinoanER's blocking matches entities "when they feature a common token in
their descriptions **or URIs**".  Following the prefix-infix(-suffix)
technique of Papadakis et al. (used by the companion Big Data 2015 paper),
a URI is decomposed into:

* **prefix** — the domain / namespace part, common to a whole KB and thus
  useless as matching evidence;
* **infix** — the local, entity-specific part, which frequently carries the
  entity name (e.g. ``.../resource/Berlin``);
* **suffix** — a trailing technical qualifier (e.g. ``.html``, a version
  tag), again useless for matching.

Only the infix contributes blocking keys.
"""

from __future__ import annotations

import re

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:(//)?")
_SUFFIX_RE = re.compile(
    r"(\.(html?|php|aspx?|jsp|rdf|xml|json|nt|ttl)|/)$", re.IGNORECASE
)


def split_uri(uri: str) -> tuple[str, str, str]:
    """Split *uri* into ``(prefix, infix, suffix)``.

    The prefix covers the scheme, authority and all path segments but the
    last; the infix is the last meaningful path segment (or fragment); the
    suffix is a recognized technical extension.

    >>> split_uri("http://dbpedia.org/resource/Berlin")
    ('http://dbpedia.org/resource/', 'Berlin', '')
    >>> split_uri("http://ex.org/page/Berlin.html")
    ('http://ex.org/page/', 'Berlin', '.html')
    """
    if not uri:
        return "", "", ""
    working = uri
    suffix = ""
    match = _SUFFIX_RE.search(working)
    if match:
        suffix = match.group(0)
        working = working[: match.start()]
    # Fragments identify the entity more specifically than the path.
    if "#" in working:
        prefix, _, infix = working.rpartition("#")
        return prefix + "#", infix, suffix
    if "/" in working:
        scheme = _SCHEME_RE.match(working)
        body_start = scheme.end() if scheme else 0
        body = working[body_start:]
        if "/" in body:
            prefix_body, _, infix = body.rpartition("/")
            return working[:body_start] + prefix_body + "/", infix, suffix
        return working[:body_start], body, suffix
    return "", working, suffix


def uri_infix(uri: str) -> str:
    """The entity-specific part of *uri* (see :func:`split_uri`)."""
    return split_uri(uri)[1]


def uri_local_name(uri: str) -> str:
    """Human-readable local name: infix with separators turned to spaces.

    >>> uri_local_name("http://dbpedia.org/resource/New_York_City")
    'New York City'
    """
    return re.sub(r"[_\-+]+", " ", uri_infix(uri)).strip()
