"""Canned experiment workflows.

The benchmark harness (E2, E4, E5, …) is useful beyond this repository's
own tables: a user evaluating MinoanER on *their* data wants the same
sweeps without re-writing the loops.  This module packages them as plain
functions over ``(kb1, kb2, gold)`` returning report-ready row dicts
(render with :func:`repro.evaluation.reporting.format_table`) plus the
raw objects for further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.altowim import AltowimProgressiveER
from repro.baselines.ordered import (
    batch_baseline,
    oracle_order_baseline,
    random_order_baseline,
)
from repro.blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.blocking.base import Blocker
from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.core.strategies import dynamic_strategy, static_strategy
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import BlockingQuality, evaluate_blocks, evaluate_comparisons
from repro.evaluation.progressive import ProgressiveCurve
from repro.matching.matcher import Matcher
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import PRUNERS, make_pruner
from repro.metablocking.weighting import SCHEMES, make_scheme
from repro.model.collection import EntityCollection


@dataclass
class WorkflowReport:
    """Rows ready for :func:`format_table` plus the raw measurements."""

    title: str
    rows: list[dict[str, str]] = field(default_factory=list)
    raw: dict = field(default_factory=dict)


def compare_blocking_methods(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    blockers: list[Blocker] | None = None,
) -> WorkflowReport:
    """PC/PQ/RR of several blocking methods on one task (the E2 sweep)."""
    blockers = blockers or [
        TokenBlocking(),
        AttributeClusteringBlocking(),
        PrefixInfixSuffixBlocking(),
    ]
    report = WorkflowReport(title="Blocking methods: PC / PQ / RR")
    sizes = (len(kb1), len(kb2) if kb2 is not None else None)
    for blocker in blockers:
        blocks = blocker.build(kb1, kb2)
        quality = evaluate_blocks(blocks, gold, *sizes)
        row = {"method": blocker.name}
        row.update(quality.as_row())
        report.rows.append(row)
        report.raw[blocker.name] = (blocks, quality)
    return report


def sweep_metablocking(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    weighting: list[str] | None = None,
    pruning: list[str] | None = None,
    platform: MinoanER | None = None,
) -> WorkflowReport:
    """The weighting × pruning matrix on post-processed blocks (E4)."""
    platform = platform or MinoanER()
    weighting = weighting or sorted(SCHEMES)
    pruning = pruning or ["WEP", "CEP", "WNP", "CNP"]
    _, processed = platform.block(kb1, kb2)
    sizes = (len(kb1), len(kb2) if kb2 is not None else None)
    report = WorkflowReport(title="Meta-blocking: weighting x pruning")
    for scheme_name in weighting:
        graph = BlockingGraph(processed, make_scheme(scheme_name))
        for pruner_name in pruning:
            edges = make_pruner(pruner_name).prune(graph)
            quality = evaluate_comparisons({e.pair for e in edges}, gold, *sizes)
            row = {"weighting": scheme_name, "pruning": pruner_name}
            row.update(quality.as_row())
            report.rows.append(row)
            report.raw[(scheme_name, pruner_name)] = edges
    return report


def compare_progressive_strategies(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    matcher: Matcher,
    budget: int,
    platform: MinoanER | None = None,
    include_oracle: bool = True,
    altowim_window: int = 20,
    seed: int = 7,
) -> WorkflowReport:
    """Progressive-recall comparison across strategies (E5) on one task.

    Note: the matcher instance is shared across strategies; each run
    re-binds it to a fresh resolution context.
    """
    platform = platform or MinoanER()
    _, processed = platform.block(kb1, kb2)
    edges = platform.meta_block(processed)
    collections = [kb1] if kb2 is None else [kb1, kb2]
    cost = CostBudget(budget)

    results = {
        "minoan-dynamic": dynamic_strategy(matcher, budget=cost).run(
            edges, collections, gold=gold, label="minoan-dynamic"
        ),
        "minoan-static": static_strategy(matcher, budget=cost).run(
            edges, collections, gold=gold, label="minoan-static"
        ),
        "altowim": AltowimProgressiveER(window_size=altowim_window).run(
            processed, matcher, collections, cost, gold
        ),
        "random": random_order_baseline(edges, matcher, collections, cost, gold, seed=seed),
        "batch": batch_baseline(edges, matcher, collections, cost, gold),
    }
    if include_oracle:
        results["oracle"] = oracle_order_baseline(edges, matcher, collections, gold, cost)

    report = WorkflowReport(title=f"Progressive strategies (budget={budget})")
    for name, result in results.items():
        report.rows.append(
            {
                "strategy": name,
                "AUC": f"{result.curve.auc('recall', budget):.3f}",
                "final recall": f"{result.curve.final('recall'):.3f}",
                "comparisons": str(result.comparisons_executed),
            }
        )
        report.raw[name] = result
    return report


def sweep_budgets(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    budgets: list[int],
    platform: MinoanER | None = None,
) -> WorkflowReport:
    """Final recall/F1 of the full pipeline at several budgets.

    Uses a fresh pipeline per budget so runs are independent.
    """
    from repro.evaluation.metrics import evaluate_matches

    base = platform or MinoanER()
    report = WorkflowReport(title="Budget sweep")
    for budget in budgets:
        run_platform = MinoanER(
            blocker=base.blocker,
            purging=base.purging,
            filtering=base.filtering,
            weighting=base.weighting,
            pruning=base.pruning,
            match_threshold=base.match_threshold,
            budget=CostBudget(budget),
            benefit=base.benefit,
            update_phase=base.updater is not None,
        )
        result = run_platform.resolve(kb1, kb2, gold=gold)
        quality = evaluate_matches(result.matched_pairs(), gold)
        row = {"budget": str(budget)}
        row.update(quality.as_row())
        row["comparisons"] = str(result.progressive.comparisons_executed)
        report.rows.append(row)
        report.raw[budget] = result
    return report
