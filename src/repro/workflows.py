"""Canned experiment workflows, driven through the declarative facade.

The benchmark harness (E2, E4, E5, …) is useful beyond this repository's
own tables: a user evaluating MinoanER on *their* data wants the same
sweeps without re-writing the loops.  This module packages them as plain
functions over ``(kb1, kb2, gold)`` returning report-ready row dicts
(render with :func:`repro.evaluation.reporting.format_table`) plus the
raw objects for further analysis.

Component wiring goes through :mod:`repro.api`: a sweep is a base
:class:`~repro.api.spec.PipelineSpec` whose component nodes are swapped
per cell, so the same sweep definition can target any backend and the
name tables are the registry's — not copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Pipeline, PipelineSpec, registry
from repro.baselines.altowim import AltowimProgressiveER
from repro.baselines.ordered import (
    batch_baseline,
    oracle_order_baseline,
    random_order_baseline,
)
from repro.blocking.base import Blocker
from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.core.strategies import dynamic_strategy, static_strategy
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import evaluate_blocks, evaluate_comparisons
from repro.matching.matcher import Matcher
from repro.model.collection import EntityCollection


@dataclass
class WorkflowReport:
    """Rows ready for :func:`format_table` plus the raw measurements."""

    title: str
    rows: list[dict[str, str]] = field(default_factory=list)
    raw: dict = field(default_factory=dict)


def _spec_from_platform(platform: MinoanER) -> PipelineSpec:
    """Translate a legacy ``MinoanER`` construction into a spec.

    Back-compat shim: sweeps historically took a ``platform`` argument;
    the declarative path re-expresses its component choices as a
    :class:`PipelineSpec` so both construction styles drive the same
    facade.  Only name-addressable choices translate — the platform's
    concrete blocker/purging/filtering *instances* (which may carry
    custom parameters or subclasses) cannot be expressed as registry
    names, so the sweeps below run the blocking stage through the
    platform itself whenever one is given.
    """
    return PipelineSpec.from_dict(
        {
            "weighting": platform.weighting.name,
            "pruning": platform.pruning.name,
            "matching": {
                "matcher": {
                    "name": "threshold",
                    "params": {"threshold": platform.match_threshold},
                },
                "budget": platform.budget.max_cost,
                "benefit": platform.benefit.name,
                "update_phase": platform.updater is not None,
            },
        }
    )


def compare_blocking_methods(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    blockers: list[Blocker] | None = None,
) -> WorkflowReport:
    """PC/PQ/RR of several blocking methods on one task (the E2 sweep)."""
    if blockers is None:
        blockers = [
            registry.create("blocker", name)
            for name in ("token", "attribute-clustering", "prefix-infix-suffix")
        ]
    report = WorkflowReport(title="Blocking methods: PC / PQ / RR")
    sizes = (len(kb1), len(kb2) if kb2 is not None else None)
    for blocker in blockers:
        blocks = blocker.build(kb1, kb2)
        quality = evaluate_blocks(blocks, gold, *sizes)
        row = {"method": blocker.name}
        row.update(quality.as_row())
        report.rows.append(row)
        report.raw[blocker.name] = (blocks, quality)
    return report


def sweep_metablocking(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    weighting: list[str] | None = None,
    pruning: list[str] | None = None,
    platform: MinoanER | None = None,
    spec: PipelineSpec | None = None,
) -> WorkflowReport:
    """The weighting × pruning matrix on post-processed blocks (E4).

    Defaults sweep every registered weighting scheme against the four
    canonical pruning algorithms.  *spec* carries blocking and matching
    settings (defaults match ``repro resolve``); the legacy *platform*
    argument is still honoured by translating it to a spec.
    """
    if spec is None:
        spec = (
            _spec_from_platform(platform) if platform is not None else PipelineSpec()
        )
    weighting = weighting or registry.names("weighting")
    pruning = pruning or ["WEP", "CEP", "WNP", "CNP"]
    # A legacy platform's blocking components are instances the spec
    # cannot name; honour them directly.
    if platform is not None:
        _, processed = platform.block(kb1, kb2)
    else:
        _, processed = Pipeline(spec).block(kb1, kb2)
    sizes = (len(kb1), len(kb2) if kb2 is not None else None)
    report = WorkflowReport(title="Meta-blocking: weighting x pruning")
    for scheme_name in weighting:
        for pruner_name in pruning:
            cell = Pipeline(
                spec.with_components(weighting=scheme_name, pruning=pruner_name)
            )
            edges = cell.meta_block(processed)
            quality = evaluate_comparisons({e.pair for e in edges}, gold, *sizes)
            row = {"weighting": scheme_name, "pruning": pruner_name}
            row.update(quality.as_row())
            report.rows.append(row)
            report.raw[(scheme_name, pruner_name)] = edges
    return report


def compare_progressive_strategies(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    matcher: Matcher,
    budget: int,
    platform: MinoanER | None = None,
    spec: PipelineSpec | None = None,
    include_oracle: bool = True,
    altowim_window: int = 20,
    seed: int = 7,
) -> WorkflowReport:
    """Progressive-recall comparison across strategies (E5) on one task.

    Note: the matcher instance is shared across strategies; each run
    re-binds it to a fresh resolution context.
    """
    if platform is not None:
        _, processed = platform.block(kb1, kb2)
        edges = platform.meta_block(processed)
    else:
        pipeline = Pipeline(spec or PipelineSpec())
        _, processed = pipeline.block(kb1, kb2)
        edges = pipeline.meta_block(processed)
    collections = [kb1] if kb2 is None else [kb1, kb2]
    cost = CostBudget(budget)

    results = {
        "minoan-dynamic": dynamic_strategy(matcher, budget=cost).run(
            edges, collections, gold=gold, label="minoan-dynamic"
        ),
        "minoan-static": static_strategy(matcher, budget=cost).run(
            edges, collections, gold=gold, label="minoan-static"
        ),
        "altowim": AltowimProgressiveER(window_size=altowim_window).run(
            processed, matcher, collections, cost, gold
        ),
        "random": random_order_baseline(edges, matcher, collections, cost, gold, seed=seed),
        "batch": batch_baseline(edges, matcher, collections, cost, gold),
    }
    if include_oracle:
        results["oracle"] = oracle_order_baseline(edges, matcher, collections, gold, cost)

    report = WorkflowReport(title=f"Progressive strategies (budget={budget})")
    for name, result in results.items():
        report.rows.append(
            {
                "strategy": name,
                "AUC": f"{result.curve.auc('recall', budget):.3f}",
                "final recall": f"{result.curve.final('recall'):.3f}",
                "comparisons": str(result.comparisons_executed),
            }
        )
        report.raw[name] = result
    return report


def sweep_budgets(
    kb1: EntityCollection,
    kb2: EntityCollection | None,
    gold: GoldStandard,
    budgets: list[int],
    platform: MinoanER | None = None,
    spec: PipelineSpec | None = None,
) -> WorkflowReport:
    """Final recall/F1 of the full pipeline at several budgets.

    Each budget is an independent facade run of the same spec with only
    the matching budget replaced.  A legacy *platform* argument keeps
    its exact component instances (blocker, matcher, post-processing)
    through per-budget ``MinoanER`` runs, as before.
    """
    from repro.evaluation.metrics import evaluate_matches

    report = WorkflowReport(title="Budget sweep")
    if platform is not None and spec is None:
        for budget in budgets:
            run_platform = MinoanER(
                blocker=platform.blocker,
                purging=platform.purging,
                filtering=platform.filtering,
                weighting=platform.weighting,
                pruning=platform.pruning,
                matcher=platform.matcher,
                match_threshold=platform.match_threshold,
                budget=CostBudget(budget),
                benefit=platform.benefit,
                update_phase=platform.updater is not None,
            )
            result = run_platform.resolve(kb1, kb2, gold=gold)
            quality = evaluate_matches(result.matched_pairs(), gold)
            row = {"budget": str(budget)}
            row.update(quality.as_row())
            row["comparisons"] = str(result.progressive.comparisons_executed)
            report.rows.append(row)
            report.raw[budget] = result
        return report

    spec = spec or PipelineSpec()
    for budget in budgets:
        result = Pipeline.run(
            spec.with_matching(budget=budget), kb1, kb2, gold=gold
        )
        row = {"budget": str(budget)}
        if result.match_quality is not None:
            row.update(result.match_quality.as_row())
        row["comparisons"] = str(result.progressive.comparisons_executed)
        report.rows.append(row)
        report.raw[budget] = result
    return report
