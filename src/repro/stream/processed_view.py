"""The incrementally-maintained processed (purged + filtered) view.

:meth:`~repro.stream.index.IncrementalBlockIndex.snapshot_processed`
pays batch prices at query time: purging and filtering thresholds are
global functions of the whole block-size distribution, so every
post-insert call re-runs both operators over a fresh snapshot.  This
module maintains the surviving block set **under inserts** instead:

* the block-cardinality distribution is tracked in a mergeable
  histogram (one level update per touched key), so the adaptive purging
  threshold is recomputed from the histogram — never from the blocks —
  and is **exact at all times**;
* filtering ratios are re-applied **per touched entity**: the inserted
  entity's retained (most selective) key set is recomputed from live
  cardinalities, while untouched entities keep their last ranking;
* the resulting view is therefore *approximate between reconciliations*
  — drift comes only from the per-entity filtering rankings of
  untouched entities — with a **bounded staleness counter** (inserts
  since the last reconciliation) and an exact
  :meth:`~IncrementalProcessedView.reconcile` that diffs the view
  against ``snapshot_processed()`` and repairs the drift in place,
  every K inserts (see :attr:`~IncrementalProcessedView.due`) or on
  demand.

Consumers (:class:`SurvivorPairTable`) receive placement-level deltas
as survivors enter and leave, so pair statistics follow the processed
view the same way :class:`~repro.stream.pairs.DeltaPairTable` follows
the raw index.

**Contract:** immediately after :meth:`reconcile`, the view is
bit-identical to ``snapshot_processed(purging, filtering)`` — same
blocks, members, cardinalities and id views — and attached survivor
statistics equal a batch graph built over that processed collection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering, retained_keys
from repro.blocking.purging import BlockPurging, threshold_from_histogram
from repro.model.interner import pack_pair
from repro.obs import DISABLED
from repro.stream.index import DeltaConsumer, IncrementalBlockIndex
from repro.stream.pairs import PairStatsView


class ViewConsumer:
    """Interface for structures maintained from processed-view deltas.

    Hooks fire as survivors enter or leave the view, during insert
    application and during reconciliation repair alike — a consumer that
    folds them in is always consistent with the view's current content.
    ``delta`` is always ``+1`` or ``-1``.
    """

    __slots__ = ()

    def on_view_cell(self, id_a: int, id_b: int, delta: int) -> None:
        """One comparison cell between distinct survivors (dis)appeared."""

    def on_view_placement(self, entity_id: int, delta: int) -> None:
        """One placement of an entity in a surviving block (dis)appeared."""

    def on_view_block(self, key: str, delta: int) -> None:
        """A block entered (+1) or left (-1) the surviving set."""


@dataclass(frozen=True)
class ReconcileReport:
    """Outcome of one exact reconciliation pass."""

    #: inserts the view absorbed approximately since the last reconcile
    staleness: int
    wall_s: float
    blocks_added: int
    blocks_removed: int
    placements_added: int
    placements_removed: int
    #: surviving blocks after the repair
    exact_blocks: int
    #: ``"full"`` (snapshot diff over every block) or ``"partial"``
    #: (key-partitioned repair over the dirty blocks/entities only)
    mode: str = "full"
    #: entities whose retained sets the pass recomputed
    entities_repaired: int = 0

    @property
    def drift(self) -> int:
        """Total structural difference repaired (blocks + placements)."""
        return (
            self.blocks_added
            + self.blocks_removed
            + self.placements_added
            + self.placements_removed
        )


class IncrementalProcessedView(DeltaConsumer):
    """Purge/filter-surviving block set maintained under inserts.

    Args:
        index: the incremental block index to subscribe to.  Attach
            before the first insert (or replay the store afterwards, as
            :class:`~repro.stream.resolver.StreamResolver` does).
        purging: the purging operator whose policy the view enforces
            (adaptive threshold by default; ``max_cardinality`` pins it).
        filtering: the filtering operator (ratio) applied per entity.
        reconcile_every: reconcile cadence in inserts; ``None`` (the
            default) adapts the cadence to the corpus —
            ``max(16, keys // 4)`` — which keeps the *amortized*
            per-query reconciliation cost flat as the stream grows.
    """

    def __init__(
        self,
        index: IncrementalBlockIndex,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
        reconcile_every: int | None = None,
    ) -> None:
        if reconcile_every is not None and reconcile_every < 1:
            raise ValueError("reconcile_every must be >= 1 (or None for adaptive)")
        self.index = index
        self.purging = purging or BlockPurging()
        self.filtering = filtering or BlockFiltering()
        self.reconcile_every = reconcile_every
        #: observability handle (the owning resolver re-points this)
        self.obs = DISABLED
        #: exact reconciliations performed so far
        self.reconcile_count = 0
        #: pending-buffer drains performed so far (always counted, so
        #: traced span counts can be cross-checked against it)
        self.drain_count = 0
        #: report of the most recent :meth:`reconcile` (None before any)
        self.last_report: ReconcileReport | None = None
        #: keys touched since the last application (ordered, deduplicated)
        self._pending_keys: dict[str, None] = {}
        #: entities touched since the last application
        self._pending_entities: dict[int, None] = {}
        #: key → (cardinality, assignments) for currently-active keys
        self._card: dict[str, tuple[int, int]] = {}
        #: cardinality level → [total assignments, keys at this level];
        #: the mergeable histogram the purging threshold is derived from
        self._hist: dict[int, list] = {}
        self._threshold = (
            self.purging.max_cardinality
            if self.purging.max_cardinality is not None
            else 1
        )
        self._threshold_dirty = False
        #: entity id → retained key set, as of the entity's last touch
        self._retained: dict[int, frozenset[str]] = {}
        #: key → per-side candidate member sets (entities retaining it)
        self._members: dict[str, tuple[set[int], set[int]]] = {}
        #: keys currently exposed by the view (purge + member floors met)
        self._present: set[str] = set()
        #: entity id → {key: side bitmask} over present blocks only
        self._entity_keys: dict[int, dict[str, int]] = {}
        #: keys whose cardinality or purge-eligibility may have changed
        #: since the last reconciliation (drives the partial repair)
        self._dirty_keys: set[str] = set()
        #: entities touched (inserted/deleted under any key) since the
        #: last reconciliation
        self._dirty_entities: set[int] = set()
        #: the first reconcile must be full — before it, untouched
        #: entities have never had their retained sets computed at all
        self._reconciled_once = False
        self._consumers: list[ViewConsumer] = []
        #: notified when a non-empty pending buffer is about to drain
        #: (the durability layer's write-ahead hook)
        self._apply_listeners: list = []
        self._reconciled_version = index.store.version
        self._exact: tuple[int, BlockCollection] | None = None
        self._approx: tuple[int, BlockCollection] | None = None
        index.attach(self)

    # -- wiring --------------------------------------------------------------

    def attach(self, consumer: ViewConsumer) -> None:
        """Attach a view-delta consumer (attach before inserting)."""
        self._consumers.append(consumer)

    def subscribe_apply(self, listener) -> None:
        """Call *listener* just before a non-empty pending drain.

        The position of each drain in the event stream determines what
        the approximate survivor state computes, so crash recovery logs
        and replays drains like any other event.
        """
        self._apply_listeners.append(listener)

    def on_key_update(self, key: str, entity_id: int, source: int) -> None:
        """Index hook: buffer the touched key/entity for lazy application."""
        self._pending_keys[key] = None
        self._pending_entities[entity_id] = None

    # -- staleness contract --------------------------------------------------

    @property
    def staleness(self) -> int:
        """Inserts absorbed since the last reconciliation (0 = exact)."""
        return self.index.store.version - self._reconciled_version

    @property
    def reconcile_interval(self) -> int:
        """The staleness bound that makes the view :attr:`due`."""
        if self.reconcile_every is not None:
            return self.reconcile_every
        return max(16, len(self.index) // 4)

    @property
    def due(self) -> bool:
        """True when the staleness bound is reached."""
        return self.staleness >= self.reconcile_interval

    @property
    def threshold(self) -> int:
        """The current (histogram-exact) purging cardinality threshold."""
        self._apply_pending()
        return self._current_threshold()

    # -- histogram maintenance -----------------------------------------------

    def _hist_add(self, key: str, cardinality: int, assignments: int) -> None:
        entry = self._hist.get(cardinality)
        if entry is None:
            entry = [0, set()]
            self._hist[cardinality] = entry
        entry[0] += assignments
        entry[1].add(key)

    def _hist_remove(self, key: str, cardinality: int, assignments: int) -> None:
        entry = self._hist[cardinality]
        entry[0] -= assignments
        entry[1].discard(key)
        if not entry[1]:
            del self._hist[cardinality]

    def _histogram_now(self) -> dict[int, tuple[int, int]]:
        """The maintained histogram projected to batch shape (no apply)."""
        return {
            level: (level * len(keys), assigns)
            for level, (assigns, keys) in self._hist.items()
        }

    def histogram(self) -> dict[int, tuple[int, int]]:
        """Level → (comparisons, assignments), batch-comparable.

        Equals :func:`repro.blocking.purging.cardinality_histogram` over
        the raw snapshot at all times (the exactness invariant the
        property suite asserts).
        """
        self._apply_pending()
        return self._histogram_now()

    def _current_threshold(self) -> int:
        if self.purging.max_cardinality is not None:
            # Pinned policy: keep the presence checks' threshold in sync
            # (they read self._threshold, not the operator).
            self._threshold = self.purging.max_cardinality
            return self._threshold
        if self._threshold_dirty:
            self._threshold = threshold_from_histogram(
                self._histogram_now(), self.purging.smoothing
            )
            self._threshold_dirty = False
        return self._threshold

    # -- delta application ---------------------------------------------------

    def _retained_for(self, entity_id: int, threshold: int) -> list[str]:
        """The entity's retained keys under the live cardinalities."""
        card = self._card
        eligible = [
            key
            for key in self.index.keys_of(entity_id)
            if key in card and card[key][0] <= threshold
        ]
        return retained_keys(
            eligible, lambda key: card[key][0], self.filtering.ratio
        )

    def _member_mask(self, key: str, entity_id: int) -> int:
        sides = self._members.get(key)
        if sides is None:
            return 0
        mask = 1 if entity_id in sides[0] else 0
        if entity_id in sides[1]:
            mask |= 2
        return mask

    def _present_now(self, key: str) -> bool:
        entry = self._card.get(key)
        if entry is None or entry[0] > self._threshold:
            return False
        sides = self._members.get(key)
        if sides is None:
            return False
        if self.index.two_sided:
            return bool(sides[0]) and bool(sides[1])
        return len(sides[0]) >= 2

    def _view_of(self, key: str) -> tuple[frozenset, frozenset] | None:
        """The view's current content for *key* (None when not exposed)."""
        if key not in self._present:
            return None
        sides = self._members.get(key) or (set(), set())
        return (frozenset(sides[0]), frozenset(sides[1]))

    def _apply_pending(self) -> None:
        """Fold buffered key/entity touches into the survivor state.

        O(touched keys + touched entities' keys + membership deltas):
        histogram levels update per touched key, the threshold comes
        from the histogram, retained sets are recomputed only for the
        touched entities, and presence is re-evaluated only for keys
        whose inputs changed (touched, threshold-crossing, or
        membership-diffed).
        """
        if not self._pending_keys and not self._pending_entities:
            return
        # Write-ahead hook: draining the buffer transitions the
        # approximate survivor state, and *when* the drain happens
        # (relative to the insert stream) changes what it computes — so
        # crash recovery must replay applies at their original
        # positions.  Listeners (the durability controller) log the
        # event before any state moves.
        for listener in self._apply_listeners:
            listener()
        self.drain_count += 1
        if not self.obs.enabled:
            self._drain()
            return
        with self.obs.span(
            "stream.view.drain",
            keys=len(self._pending_keys),
            entities=len(self._pending_entities),
        ):
            self._drain()

    def _drain(self) -> None:
        """The drain body: fold the buffered touches (see above)."""
        index = self.index
        pending_keys = list(self._pending_keys)
        pending_entities = list(self._pending_entities)
        self._pending_keys = {}
        self._pending_entities = {}

        # 1. exact histogram + per-key cardinality bookkeeping
        for key in pending_keys:
            old = self._card.get(key)
            new = (
                (index.cardinality_of(key), index.members_of(key))
                if index.is_active(key)
                else None
            )
            if new == old:
                continue
            if old is not None:
                self._hist_remove(key, old[0], old[1])
            if new is not None:
                self._hist_add(key, new[0], new[1])
                self._card[key] = new
            else:
                self._card.pop(key, None)
            self._threshold_dirty = True

        # 2. threshold from the histogram; collect crossing keys
        old_threshold = self._threshold
        new_threshold = self._current_threshold()
        crossing: set[str] = set()
        if new_threshold != old_threshold:
            low, high = sorted((old_threshold, new_threshold))
            for level, (_assigns, keys) in self._hist.items():
                if low < level <= high:
                    crossing.update(keys)

        # 3. retained-set recompute for touched entities → membership deltas
        affected: dict[str, None] = dict.fromkeys(pending_keys)
        affected.update(dict.fromkeys(crossing))
        mem_delta = self._retained_deltas(pending_entities, new_threshold, affected)

        # 4. presence transitions, key by key, in deterministic order
        self._apply_transitions(affected, mem_delta)

        # Partial-reconcile bookkeeping: everything whose survivor
        # inputs this drain may have shifted stays dirty until the next
        # exact repair.
        self._dirty_keys.update(affected)
        self._dirty_entities.update(pending_entities)

    def _retained_deltas(
        self,
        entities,
        threshold: int,
        affected: dict[str, None],
    ) -> dict[str, list[tuple[int, int, int]]]:
        """Recompute *entities*' retained sets; collect membership deltas.

        Updates ``_retained`` in place, marks every key whose candidate
        membership changed in *affected*, and returns the per-key
        placement deltas to feed :meth:`_apply_transitions`.
        """
        index = self.index
        mem_delta: dict[str, list[tuple[int, int, int]]] = {}
        for entity_id in entities:
            old_r = self._retained.get(entity_id, frozenset())
            new_r = frozenset(self._retained_for(entity_id, threshold))
            self._retained[entity_id] = new_r
            masks = index.keys_of(entity_id)
            for key in old_r | new_r:
                desired = masks.get(key, 0) if key in new_r else 0
                current = self._member_mask(key, entity_id)
                if desired == current:
                    continue
                for source in (0, 1):
                    bit = 1 << source
                    if desired & bit and not current & bit:
                        mem_delta.setdefault(key, []).append(
                            (entity_id, source, 1)
                        )
                    elif current & bit and not desired & bit:
                        mem_delta.setdefault(key, []).append(
                            (entity_id, source, -1)
                        )
                affected[key] = None
        return mem_delta

    def _apply_transitions(
        self,
        affected: dict[str, None],
        mem_delta: dict[str, list[tuple[int, int, int]]],
    ) -> tuple[int, int, int, int]:
        """Fold membership deltas and re-evaluate presence per key.

        Keys are visited in sorted order (deterministic delta stream for
        the attached consumers).  Returns ``(blocks_added,
        blocks_removed, placements_added, placements_removed)``.
        """
        blocks_added = blocks_removed = 0
        placements_added = placements_removed = 0
        for key in sorted(affected):
            old_view = self._view_of(key)
            for entity_id, source, delta in mem_delta.get(key, ()):
                sides = self._members.get(key)
                if sides is None:
                    sides = (set(), set())
                    self._members[key] = sides
                if delta > 0:
                    sides[source].add(entity_id)
                else:
                    sides[source].discard(entity_id)
            new_view = (
                self._view_of_members(key) if self._present_now(key) else None
            )
            if old_view is None and new_view is not None:
                blocks_added += 1
            elif old_view is not None and new_view is None:
                blocks_removed += 1
            added, removed = self._transition(key, old_view, new_view)
            placements_added += added
            placements_removed += removed
        return blocks_added, blocks_removed, placements_added, placements_removed

    def _view_of_members(self, key: str) -> tuple[frozenset, frozenset]:
        sides = self._members[key]
        return (frozenset(sides[0]), frozenset(sides[1]))

    def _transition(
        self,
        key: str,
        old_view: tuple[frozenset, frozenset] | None,
        new_view: tuple[frozenset, frozenset] | None,
    ) -> tuple[int, int]:
        """Move the view's content for *key* from *old_view* to *new_view*.

        Emits placement/cell/block deltas to the attached consumers by
        replaying the difference one placement at a time (removals
        first), so incremental cell counting stays exact; updates the
        ``_present`` set and the per-entity present-key masks.

        Returns:
            ``(placements_added, placements_removed)``.
        """
        if old_view == new_view:
            return (0, 0)
        consumers = self._consumers
        two_sided = self.index.two_sided
        work0 = set(old_view[0]) if old_view is not None else set()
        work1 = set(old_view[1]) if old_view is not None else set()
        new0 = new_view[0] if new_view is not None else frozenset()
        new1 = new_view[1] if new_view is not None else frozenset()
        removals = [(entity, 0) for entity in work0 - new0]
        removals += [(entity, 1) for entity in work1 - new1]
        additions = [(entity, 0) for entity in new0 - work0]
        additions += [(entity, 1) for entity in new1 - work1]
        removals.sort(key=lambda placement: (placement[1], placement[0]))
        additions.sort(key=lambda placement: (placement[1], placement[0]))

        if old_view is None and new_view is not None:
            self._present.add(key)
            for consumer in consumers:
                consumer.on_view_block(key, 1)

        for entity_id, side in removals:
            partners = (work1 if side == 0 else work0) if two_sided else work0
            for partner in sorted(partners):
                if partner != entity_id:
                    for consumer in consumers:
                        consumer.on_view_cell(entity_id, partner, -1)
            (work0 if side == 0 else work1).discard(entity_id)
            self._entity_key_clear(entity_id, key, 1 << side)
            for consumer in consumers:
                consumer.on_view_placement(entity_id, -1)
        for entity_id, side in additions:
            partners = (work1 if side == 0 else work0) if two_sided else work0
            for partner in sorted(partners):
                if partner != entity_id:
                    for consumer in consumers:
                        consumer.on_view_cell(entity_id, partner, 1)
            (work0 if side == 0 else work1).add(entity_id)
            self._entity_key_set(entity_id, key, 1 << side)
            for consumer in consumers:
                consumer.on_view_placement(entity_id, 1)

        if new_view is None and old_view is not None:
            self._present.discard(key)
            for consumer in consumers:
                consumer.on_view_block(key, -1)
        return (len(additions), len(removals))

    def _entity_key_set(self, entity_id: int, key: str, bit: int) -> None:
        keys = self._entity_keys.setdefault(entity_id, {})
        keys[key] = keys.get(key, 0) | bit

    def _entity_key_clear(self, entity_id: int, key: str, bit: int) -> None:
        keys = self._entity_keys.get(entity_id)
        if keys is None:
            return
        mask = keys.get(key, 0) & ~bit
        if mask:
            keys[key] = mask
        else:
            keys.pop(key, None)
            if not keys:
                self._entity_keys.pop(entity_id, None)

    # -- serving -------------------------------------------------------------

    def keys_of(self, entity_id: int) -> dict[str, int]:
        """Key → side-bitmask map over *present* blocks (live view)."""
        self._apply_pending()
        return self._entity_keys.get(entity_id, {})

    def cardinality_of(self, key: str) -> int:
        """Comparisons the view's (filtered) block implies (0 if absent)."""
        if key not in self._present:
            return 0
        sides = self._members[key]
        if self.index.two_sided:
            return len(sides[0]) * len(sides[1]) - len(sides[0] & sides[1])
        count = len(sides[0])
        return count * (count - 1) // 2

    def cells_between(self, key: str, id_a: int, id_b: int) -> int:
        """Comparison cells of the pair inside the view's *key* block."""
        if id_a == id_b:
            return 0
        mask_a = self._entity_keys.get(id_a, {}).get(key, 0)
        mask_b = self._entity_keys.get(id_b, {}).get(key, 0)
        if not mask_a or not mask_b:
            return 0
        if not self.index.two_sided:
            return 1
        return int(bool(mask_a & 1) and bool(mask_b & 2)) + int(
            bool(mask_b & 1) and bool(mask_a & 2)
        )

    def partners_of(self, entity_id: int) -> list[int]:
        """Candidate partners of the entity through surviving blocks only.

        The processed-view counterpart of
        :meth:`~repro.stream.index.IncrementalBlockIndex.partners_of`:
        purging and filtering are already enforced (approximately,
        between reconciliations), so no per-query caps are needed.
        """
        self._apply_pending()
        keys = self._entity_keys.get(entity_id)
        if not keys:
            return []
        seen: dict[int, None] = {}
        two_sided = self.index.two_sided
        for key in sorted(keys):
            mask = keys[key]
            sides = self._members[key]
            if not two_sided:
                for member in sorted(sides[0]):
                    if member != entity_id:
                        seen.setdefault(member)
            else:
                if mask & 1:
                    for member in sorted(sides[1]):
                        if member != entity_id:
                            seen.setdefault(member)
                if mask & 2:
                    for member in sorted(sides[0]):
                        if member != entity_id:
                            seen.setdefault(member)
        return list(seen)

    # -- materialization -----------------------------------------------------

    def materialize(self) -> BlockCollection:
        """The view as a ``BlockCollection``.

        Exact (the ``snapshot_processed`` result itself) right after a
        reconciliation with no inserts since; the approximate survivor
        state otherwise.  Cached per store version.
        """
        self._apply_pending()
        version = self.index.store.version
        if self._exact is not None and self._exact[0] == version:
            return self._exact[1]
        if self._approx is not None and self._approx[0] == version:
            return self._approx[1]
        blocks = self._build_collection()
        self._approx = (version, blocks)
        return blocks

    def _build_collection(self) -> BlockCollection:
        """Materialize the survivor state (batch-identical shape/order)."""
        index = self.index
        uris = index.store.interner.uri_table()
        names = [collection.name for collection in index.store.collections]
        if index.two_sided:
            raw_name = f"{index.blocker.name}({names[0]},{names[1]})"
        else:
            raw_name = f"{index.blocker.name}({names[0]})"
        out = BlockCollection(name=f"filtered(purged({raw_name}))")
        for key in sorted(self._present):
            sides = self._members[key]
            ids1 = sorted(sides[0], key=lambda e: index.arrival_rank(e, 0))
            entities1 = [uris[e] for e in ids1]
            if index.two_sided:
                ids2 = sorted(sides[1], key=lambda e: index.arrival_rank(e, 1))
                out.add(Block(key, entities1, [uris[e] for e in ids2]))
            else:
                out.add(Block(key, entities1))
        return out

    # -- reconciliation ------------------------------------------------------

    def reconcile(self, full: bool = False) -> ReconcileReport:
        """Repair the view's drift; leave it exact for the current version.

        Two repair strategies behind the same contract (the view is
        bit-identical to ``snapshot_processed`` afterwards):

        * **full** — diff the view against the exact processed snapshot
          and rebuild every retained set.  Cost is proportional to the
          whole corpus.  Forced on the first reconciliation (and the
          first after a durability restore), when no dirty bookkeeping
          exists yet, or when *full* is passed.
        * **partial** — key-partitioned repair.  Between reconciles the
          only entities whose retained sets can have drifted are those
          touched directly or sharing a key whose cardinality or
          threshold-eligibility changed (the drains keep everything
          else exact).  Recompute just that dirty closure and
          re-transition the affected keys.  Cost is proportional to the
          churn, not the corpus.

        Emits corrective deltas to attached consumers for every block
        and placement the approximation got wrong, and caches the exact
        collection so :meth:`materialize` returns it bit-identically
        until the next insert.
        """
        # Metric-only timing (no span: the resolver's query path owns the
        # reconcile span); the measured wall feeds both the report and
        # the registry, so legacy stats and metrics.txt agree exactly.
        timer = self.obs.timed(metric="repro.stream.view.reconcile.seconds")
        timer.__enter__()
        self._apply_pending()
        index = self.index
        staleness = self.staleness
        if full or not self._reconciled_once:
            mode = "full"
            exact, counts, entities_repaired = self._reconcile_full()
        else:
            mode = "partial"
            exact, counts, entities_repaired = self._reconcile_partial()
        blocks_added, blocks_removed, placements_added, placements_removed = counts

        version = index.store.version
        self._exact = (version, exact)
        self._approx = None
        self._reconciled_version = version
        self._reconciled_once = True
        self._dirty_keys.clear()
        self._dirty_entities.clear()
        self.reconcile_count += 1
        timer.__exit__(None, None, None)
        report = ReconcileReport(
            staleness=staleness,
            wall_s=timer.duration_s,
            blocks_added=blocks_added,
            blocks_removed=blocks_removed,
            placements_added=placements_added,
            placements_removed=placements_removed,
            exact_blocks=len(exact),
            mode=mode,
            entities_repaired=entities_repaired,
        )
        self.last_report = report
        return report

    def _reconcile_full(self):
        """Snapshot-diff repair over the whole corpus."""
        index = self.index
        exact = index.snapshot_processed(self.purging, self.filtering)
        interner = index.store.interner
        exact_members: dict[str, tuple[frozenset, frozenset]] = {}
        for block in exact:
            side0 = frozenset(interner.id_of(uri) for uri in block.entities1)
            side1 = (
                frozenset(interner.id_of(uri) for uri in block.entities2)
                if block.entities2 is not None
                else frozenset()
            )
            exact_members[block.key] = (side0, side1)

        blocks_added = blocks_removed = 0
        placements_added = placements_removed = 0
        for key in sorted(set(self._present) | set(exact_members)):
            old_view = self._view_of(key)
            new_view = exact_members.get(key)
            if old_view is None and new_view is not None:
                blocks_added += 1
            elif old_view is not None and new_view is None:
                blocks_removed += 1
            added, removed = self._transition(key, old_view, new_view)
            placements_added += added
            placements_removed += removed

        # Wholesale repair of the approximate bookkeeping: with the
        # threshold exact (histogram invariant) and every retained set
        # recomputed, the candidate state matches batch filtering.
        threshold = self._current_threshold()
        self._retained = {}
        self._members = {}
        entities_repaired = 0
        for entity_id in index.entity_ids():
            entities_repaired += 1
            new_r = frozenset(self._retained_for(entity_id, threshold))
            self._retained[entity_id] = new_r
            masks = index.keys_of(entity_id)
            for key in new_r:
                mask = masks[key]
                sides = self._members.get(key)
                if sides is None:
                    sides = (set(), set())
                    self._members[key] = sides
                if mask & 1:
                    sides[0].add(entity_id)
                if mask & 2:
                    sides[1].add(entity_id)
        counts = (
            blocks_added,
            blocks_removed,
            placements_added,
            placements_removed,
        )
        return exact, counts, entities_repaired

    def _reconcile_partial(self):
        """Key-partitioned repair over the dirty closure only.

        The dirty closure: entities touched since the last reconcile,
        plus the current members (posting lists) of every key whose
        cardinality or threshold-eligibility changed.  Only those
        entities' per-entity filtering rankings can have drifted, so
        recomputing exactly them restores the batch-exact state.
        """
        index = self.index
        threshold = self._current_threshold()
        dirty_entities = set(self._dirty_entities)
        for key in self._dirty_keys:
            side0, side1 = index.postings(key)
            dirty_entities.update(int(e) for e in side0)
            dirty_entities.update(int(e) for e in side1)
        affected: dict[str, None] = dict.fromkeys(sorted(self._dirty_keys))
        mem_delta = self._retained_deltas(
            sorted(dirty_entities), threshold, affected
        )
        counts = self._apply_transitions(affected, mem_delta)
        return self._build_collection(), counts, len(dirty_entities)


class SurvivorPairTable(PairStatsView, ViewConsumer):
    """Pair statistics over the processed view's surviving blocks.

    The processed-view counterpart of
    :class:`~repro.stream.pairs.DeltaPairTable`: per-pair common counts
    and the global scheme factors follow the *survivors* — placements
    and cells enter and leave as purging/filtering decisions shift —
    so query-time weighting matches a batch graph built over the
    processed collection (exactly so right after a reconciliation).

    Args:
        view: the processed view to attach to.  Attach before the first
            insert — view deltas are not replayed.
    """

    __slots__ = (
        "view",
        "common",
        "placements",
        "degrees",
        "active_blocks",
        "total_assignments",
        "entities_placed",
        "edge_count",
    )

    def __init__(self, view: IncrementalProcessedView) -> None:
        self.view = view
        #: packed pair → cells in common surviving blocks
        self.common: dict[int, int] = {}
        #: entity id → placements in surviving blocks
        self.placements: dict[int, int] = {}
        #: entity id → distinct surviving partners (EJS degrees)
        self.degrees: dict[int, int] = {}
        #: number of surviving blocks
        self.active_blocks = 0
        #: total surviving placements (the CEP/CNP budget numerator)
        self.total_assignments = 0
        #: entities with at least one surviving placement
        self.entities_placed = 0
        #: number of distinct surviving pairs
        self.edge_count = 0
        view.attach(self)

    # -- view-delta hooks ----------------------------------------------------

    def on_view_cell(self, id_a: int, id_b: int, delta: int) -> None:
        key = pack_pair(id_a, id_b)
        old = self.common.get(key, 0)
        count = old + delta
        if old == 0 and count > 0:
            self.edge_count += 1
            self.degrees[id_a] = self.degrees.get(id_a, 0) + 1
            self.degrees[id_b] = self.degrees.get(id_b, 0) + 1
        elif old > 0 and count == 0:
            self.edge_count -= 1
            for entity_id in (id_a, id_b):
                remaining = self.degrees.get(entity_id, 0) - 1
                if remaining:
                    self.degrees[entity_id] = remaining
                else:
                    self.degrees.pop(entity_id, None)
        if count:
            self.common[key] = count
        else:
            self.common.pop(key, None)

    def on_view_placement(self, entity_id: int, delta: int) -> None:
        old = self.placements.get(entity_id, 0)
        count = old + delta
        if old == 0 and count > 0:
            self.entities_placed += 1
        elif old > 0 and count == 0:
            self.entities_placed -= 1
        self.total_assignments += delta
        if count:
            self.placements[entity_id] = count
        else:
            self.placements.pop(entity_id, None)

    def on_view_block(self, key: str, delta: int) -> None:
        self.active_blocks += delta

    # -- statistics ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct surviving pairs tracked."""
        return len(self.common)

    def interner(self):
        """The store's URI ↔ dense-id mapping."""
        return self.view.index.store.interner

    def _common_items(self):
        return self.common.items()

    def common_of(self, id_a: int, id_b: int) -> int:
        """Common surviving-block cells of the pair (0 when none)."""
        if id_a == id_b:
            return 0
        return self.common.get(pack_pair(id_a, id_b), 0)

    def arcs_of(self, id_a: int, id_b: int) -> float:
        """Lazy ARCS over surviving blocks, batch-identical at reconcile.

        Walks the pair's shared surviving keys in sorted order, reading
        each *filtered* block's current cardinality — the same terms, in
        the same order, as a batch graph enumeration over the processed
        collection.
        """
        if id_a == id_b:
            return 0.0
        view = self.view
        keys_a = view.keys_of(id_a)
        keys_b = view.keys_of(id_b)
        if len(keys_b) < len(keys_a):
            keys_a, keys_b = keys_b, keys_a
        shared = [key for key in keys_a if key in keys_b]
        if not shared:
            return 0.0
        shared.sort()
        arcs = 0.0
        for key in shared:
            cells = view.cells_between(key, id_a, id_b)
            if not cells:
                continue
            cardinality = view.cardinality_of(key)
            if not cardinality:
                continue
            contribution = 1.0 / cardinality
            for _ in range(cells):
                arcs += contribution
        return arcs
