"""The streaming entity store.

One store owns the live corpus of a streaming ER deployment: one
:class:`~repro.model.collection.EntityCollection` per source (one for
dirty ER, two for clean-clean), a **global**
:class:`~repro.model.interner.EntityInterner` assigning each URI a dense
id on first sight, and a subscriber list notified after every insert —
that is how the incremental block index, the delta pair table and the
similarity cache stay current without polling.

Inserts follow collection semantics: re-inserting a URI merges the new
attribute–value pairs into the existing description (subscribers see the
*merged* description), so duplicate and out-of-order arrivals converge
to the same final state the batch pipeline would load.

Deletions are first-class events: :meth:`StreamingEntityStore.delete`
retracts a URI from every source holding it and notifies the delete
subscribers per source, so derived structures shed the entity's
postings, statistics and survivors by delta.  Ids are never reused —
the interner is append-only — which keeps every id-keyed structure
stable across retraction and re-insert (a re-inserted URI regains its
original arrival rank).

When a durability controller is attached (see
:mod:`repro.stream.durability`), every insert and delete is logged to
the write-ahead log **before** it is applied, and the controller is
offered a snapshot opportunity after the event has fully propagated.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner

#: subscriber signature: (merged description, source ordinal, entity id,
#: was_present) — ``was_present`` is True for merge inserts.
InsertListener = Callable[[EntityDescription, int, int, bool], None]

#: delete-subscriber signature: (uri, source ordinal, entity id) —
#: fired once per source the URI was retracted from.
DeleteListener = Callable[[str, int, int], None]


class StreamingEntityStore:
    """Mutable wrapper over per-source entity collections.

    Args:
        sources: collection names, one per KB — ``("kb",)`` for dirty ER
            (default), ``("kb1", "kb2")`` for clean-clean.
        name: store label used in reports.

    Ids are stable for the lifetime of the store (the interner is
    append-only even under deletion), which is what lets every derived
    index be maintained by delta.
    """

    def __init__(
        self,
        sources: Sequence[str] = ("stream",),
        name: str = "stream",
    ) -> None:
        if not 1 <= len(sources) <= 2:
            raise ValueError("a streaming store serves one or two sources")
        self.name = name
        self.collections: list[EntityCollection] = [
            EntityCollection(name=source) for source in sources
        ]
        self.interner = EntityInterner()
        self._listeners: list[InsertListener] = []
        self._delete_listeners: list[DeleteListener] = []
        #: total mutations (inserts + deletes) accepted; doubles as the
        #: snapshot cache version, so a delete invalidates caches too
        self.version = 0
        #: attached durability controller (None = in-memory only); set
        #: via :meth:`repro.stream.durability.Durability.bind`
        self.durability = None

    @property
    def clean_clean(self) -> bool:
        """True when the store serves two individually duplicate-free KBs."""
        return len(self.collections) == 2

    def __len__(self) -> int:
        """Distinct live descriptions across all sources."""
        return sum(len(collection) for collection in self.collections)

    def __repr__(self) -> str:
        return f"StreamingEntityStore({self.name!r}, {len(self)} descriptions)"

    def subscribe(self, listener: InsertListener, replay: bool = False) -> None:
        """Register *listener* for future inserts.

        With ``replay=True`` the listener is first fed every description
        already in the store (per source, in insertion order, one
        notification per URI with its merged description) — how derived
        structures attach to a non-empty store without missing state.
        """
        self._listeners.append(listener)
        if replay:
            for source, collection in enumerate(self.collections):
                for description in collection:
                    listener(
                        description,
                        source,
                        self.interner.id_of(description.uri),
                        False,
                    )

    def subscribe_delete(self, listener: DeleteListener) -> None:
        """Register *listener* for future deletions (no replay)."""
        self._delete_listeners.append(listener)

    def collection(self, source: int = 0) -> EntityCollection:
        """The live collection of *source* (do not mutate it directly)."""
        return self.collections[source]

    def get(self, uri: str) -> EntityDescription | None:
        """Description with *uri* from whichever source holds it."""
        for collection in self.collections:
            description = collection.get(uri)
            if description is not None:
                return description
        return None

    def insert(self, description: EntityDescription, source: int = 0) -> int:
        """Ingest one description into *source*; returns its entity id.

        Re-inserting a known URI merges attributes (collection
        semantics); subscribers always receive the merged description.

        Raises:
            IndexError: for an unknown source ordinal.
        """
        collection = self.collections[source]
        if self.durability is not None:
            self.durability.log_insert(description, source)
        was_present = description.uri in collection
        collection.add(description)
        entity_id = self.interner.intern(description.uri)
        self.version += 1
        merged = collection[description.uri]
        for listener in self._listeners:
            listener(merged, source, entity_id, was_present)
        if self.durability is not None:
            self.durability.maybe_snapshot()
        return entity_id

    def insert_batch(
        self, descriptions: Iterable[EntityDescription], source: int = 0
    ) -> list[int]:
        """Ingest a micro-batch; equivalent to :meth:`insert` per item.

        Micro-batching amortizes the caller's overhead only — the
        resulting state is identical to one-at-a-time ingestion.
        """
        return [self.insert(description, source) for description in descriptions]

    def delete(self, uri: str) -> bool:
        """Retract *uri* from every source holding it.

        Returns True when at least one source held the URI.  Delete
        subscribers are notified once per source the URI left, after
        the retraction — the delta mirror of the insert notification.
        The store version is bumped exactly once per accepted delete
        (the cache-invalidation epoch), and the event is write-ahead
        logged when durability is attached.
        """
        entity_id = self.interner.get(uri, -1)
        if entity_id < 0 or all(uri not in c for c in self.collections):
            return False
        if self.durability is not None:
            self.durability.log_delete(uri)
        self.version += 1
        for source, collection in enumerate(self.collections):
            if collection.remove(uri):
                for listener in self._delete_listeners:
                    listener(uri, source, entity_id)
        if self.durability is not None:
            self.durability.maybe_snapshot()
        return True
