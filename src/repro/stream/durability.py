"""Crash safety for the streaming layer: write-ahead log + snapshots.

The streaming structures (store, block index, pair table, processed
view) are maintained by delta and live purely in memory — kill the
process and the serving state is gone.  This module makes a streaming
deployment restartable:

* :class:`WriteAheadLog` — an append-only record stream, one line per
  event (``crc32 <json>``), written **before** the event is applied.
  Records carry a monotonically increasing LSN; a versioned header
  record (LSN 0) pins the format and the store configuration.  On open
  the log is scanned and the **torn tail** — a partially-written or
  CRC-corrupt final stretch — is truncated, so a crash mid-write never
  poisons recovery.  An ``fsync`` batching knob trades durability
  window for insert latency.
* Snapshots — the full serialized component state (store, posting
  arrays, pair statistics, processed-view histogram and survivor
  bookkeeping) written atomically (tmp + ``os.replace``) under the same
  CRC envelope.  Restoring a snapshot is deserialization, not replay,
  so :func:`recover` only re-applies the WAL *suffix* past the latest
  valid snapshot — strictly fewer events than the full history.
* :class:`Durability` — the controller gluing both to a live
  :class:`~repro.stream.store.StreamingEntityStore`: logs
  insert/delete/reconcile events write-ahead and snapshots every
  ``snapshot_every`` records.
* :func:`recover` — rebuilds ``(store, index, pairs, view,
  view_pairs)`` bit-identical to the uninterrupted run at the last
  durable event: latest valid snapshot (skipping torn or corrupt ones)
  plus WAL-suffix replay.

Fault injection is a first-class seam: all file I/O goes through a
:class:`OsFiles` object, and :class:`CrashyFiles` is a byte-budgeted
variant that tears the over-budget write and raises
:class:`CrashError` — the shape a power cut leaves behind — so the
test harness can kill a replay at any byte offset, including mid-
snapshot.

Not recovered (documented limitations): the resolver's match-decision
graph (query results are serving artifacts, not store state) and the
similarity cache (rebuilt from the live store on re-wire, which yields
identical scores).
"""

from __future__ import annotations

import json
import os
import zlib
from array import array
from dataclasses import dataclass

from repro.blocking.base import Blocker
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.model.description import EntityDescription
from repro.obs import DISABLED, Observability
from repro.stream.index import _POSTING_TYPECODE, IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.processed_view import IncrementalProcessedView, SurvivorPairTable
from repro.stream.store import StreamingEntityStore

WAL_FORMAT = "repro-wal"
WAL_VERSION = 1
SNAPSHOT_FORMAT = "repro-snapshot"
SNAPSHOT_VERSION = 1
WAL_NAME = "wal.log"
_SNAPSHOT_SUFFIX = ".json"
_SNAPSHOT_PREFIX = "snapshot-"


class CrashError(RuntimeError):
    """Raised by fault-injecting file layers to simulate a crash."""


class OsFiles:
    """Plain-OS file operations; the injection seam for fault tests."""

    def open_append(self, path: str):
        """Unbuffered append handle: every write is one OS-level write."""
        return open(path, "ab", buffering=0)

    def write_bytes(self, path: str, payload: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, source: str, destination: str) -> None:
        os.replace(source, destination)

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())


class _CrashyHandle:
    """Append-handle proxy that tears the write exceeding the budget."""

    def __init__(self, inner, owner: "CrashyFiles") -> None:
        self._inner = inner
        self._owner = owner

    def write(self, payload: bytes) -> int:
        allowed = self._owner.consume(payload)
        if allowed is not payload:
            if allowed:
                self._inner.write(allowed)
            self._inner.close()
            raise CrashError("injected crash mid-append")
        return self._inner.write(payload)

    def fileno(self) -> int:
        return self._inner.fileno()

    def close(self) -> None:
        if not self._inner.closed:
            self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class CrashyFiles(OsFiles):
    """Byte-budgeted file layer: the write crossing the budget is torn.

    The first *budget* bytes reach the OS; the write that would exceed
    it is cut short (a torn record or a partial snapshot temp file) and
    :class:`CrashError` is raised.  Every later write fails immediately
    — the process is "dead".  ``fsync`` is a no-op so a crashed handle
    never double-faults.
    """

    def __init__(self, budget: int) -> None:
        self.budget = budget

    def consume(self, payload: bytes) -> bytes:
        if self.budget < 0:
            raise CrashError("injected crash: process already dead")
        if len(payload) <= self.budget:
            self.budget -= len(payload)
            return payload
        allowed = payload[: self.budget]
        self.budget = -1
        return allowed

    def open_append(self, path: str):
        return _CrashyHandle(super().open_append(path), self)

    def write_bytes(self, path: str, payload: bytes) -> None:
        allowed = self.consume(payload)
        if allowed is not payload:
            with open(path, "wb") as handle:
                handle.write(allowed)
            raise CrashError("injected crash mid-snapshot")
        super().write_bytes(path, payload)

    def fsync(self, handle) -> None:  # pragma: no cover - trivial
        pass


def _encode_record(lsn: int, kind: str, payload) -> bytes:
    body = json.dumps([lsn, kind, payload], separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(body), body)


def _decode_line(line: bytes):
    """``(lsn, kind, payload)`` of a complete WAL line, or None if bad."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    body = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body) != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    if not (isinstance(record, list) and len(record) == 3):
        return None
    return record[0], record[1], record[2]


class WriteAheadLog:
    """Append-only CRC-framed event log with torn-tail truncation.

    One line per record: ``crc32(body) <space> body``, where the body is
    compact JSON ``[lsn, kind, payload]``.  LSN 0 is the header record
    (format name, version, store configuration); event records follow
    with consecutive LSNs.  Opening an existing log scans it, keeps the
    longest valid prefix (CRC-good, newline-terminated, consecutive
    LSNs) and truncates the rest — the torn-tail rule.

    Args:
        path: log file path (created on first append).
        fsync_every: fsync after every N appends; 1 (default) is the
            durable-per-event setting, 0 defers to :meth:`close`.
        files: file-operation layer (fault-injection seam).
    """

    def __init__(
        self, path: str, fsync_every: int = 1, files: OsFiles | None = None
    ) -> None:
        self.path = path
        self.files = files or OsFiles()
        self.fsync_every = max(int(fsync_every), 0)
        #: observability handle (the owning controller re-points this)
        self.obs = DISABLED
        self.header: dict | None = None
        #: event records surviving the open-time scan (header excluded)
        self._records: list[tuple[int, str, object]] = []
        self._next_lsn = 0
        self._since_fsync = 0
        self._scan_and_truncate()
        self._file = None

    # -- open-time scan ------------------------------------------------------

    def _scan_and_truncate(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        offset = 0
        valid_bytes = 0
        expected_lsn = 0
        while offset < len(raw):
            end = raw.find(b"\n", offset)
            if end < 0:
                break  # torn final record: no newline ever made it out
            decoded = _decode_line(raw[offset:end])
            if decoded is None:
                break
            lsn, kind, payload = decoded
            if lsn != expected_lsn:
                break
            if lsn == 0:
                if kind != "header" or not isinstance(payload, dict):
                    break
                if payload.get("format") != WAL_FORMAT:
                    break
                if payload.get("version") != WAL_VERSION:
                    break
                self.header = payload
            else:
                self._records.append((lsn, kind, payload))
            expected_lsn += 1
            offset = end + 1
            valid_bytes = offset
        self._next_lsn = expected_lsn
        if valid_bytes < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)

    # -- append path ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the last valid record (0 = header only or empty)."""
        return max(self._next_lsn - 1, 0)

    @property
    def record_count(self) -> int:
        """Event records in the log (header excluded)."""
        return len(self._records)

    def records(self, after_lsn: int = 0):
        """Event records with ``lsn > after_lsn``, in LSN order."""
        return [record for record in self._records if record[0] > after_lsn]

    def _handle(self):
        if self._file is None or getattr(self._file, "closed", False):
            self._file = self.files.open_append(self.path)
        return self._file

    def write_header(self, config: dict) -> None:
        """Write the versioned header record (must be the first write)."""
        if self._next_lsn != 0:
            raise ValueError("WAL already has a header")
        payload = {"format": WAL_FORMAT, "version": WAL_VERSION, **config}
        self._handle().write(_encode_record(0, "header", payload))
        self.header = payload
        self._next_lsn = 1
        self.sync()

    def append(self, kind: str, payload) -> int:
        """Append one event record; returns its LSN.

        The record reaches the OS before this returns (unbuffered
        write); it reaches the platter per the ``fsync_every`` batching.
        """
        if self._next_lsn == 0:
            raise ValueError("write the WAL header before appending events")
        lsn = self._next_lsn
        encoded = _encode_record(lsn, kind, payload)
        self._handle().write(encoded)
        if self.obs.enabled:
            self.obs.count("repro.durability.wal.append.count")
            self.obs.count("repro.durability.wal.append.bytes", len(encoded))
        self._next_lsn = lsn + 1
        self._records.append((lsn, kind, payload))
        self._since_fsync += 1
        if self.fsync_every and self._since_fsync >= self.fsync_every:
            self.sync()
        return lsn

    def sync(self) -> None:
        """Force the log to stable storage now."""
        if self._file is not None and not getattr(self._file, "closed", True):
            with self.obs.timed(metric="repro.durability.wal.fsync.seconds"):
                self.files.fsync(self._file)
        self._since_fsync = 0

    def close(self) -> None:
        """Sync and close — the clean-shutdown path."""
        if self._file is not None and not getattr(self._file, "closed", True):
            self.files.fsync(self._file)
            self._file.close()
        self._file = None

    def abandon(self) -> None:
        """Close without syncing — simulates dying with the OS cache warm."""
        if self._file is not None and not getattr(self._file, "closed", True):
            self._file.close()
        self._file = None


# -- component-state serialization ------------------------------------------


def _describe(description: EntityDescription) -> list:
    attributes: dict[str, list[str]] = {}
    for prop, value in description.pairs():
        attributes.setdefault(prop, []).append(value)
    return [description.uri, attributes, description.source]


def _restore_description(payload: list) -> EntityDescription:
    return EntityDescription(payload[0], payload[1], source=payload[2])


def _capture_pairs(table) -> dict:
    return {
        "common": {str(key): count for key, count in table.common.items()},
        "placements": {str(k): v for k, v in table.placements.items()},
        "degrees": {str(k): v for k, v in table.degrees.items()},
        "active_blocks": table.active_blocks,
        "total_assignments": table.total_assignments,
        "entities_placed": table.entities_placed,
        "edge_count": table.edge_count,
    }


def _restore_pairs(table, state: dict) -> None:
    table.common = {int(k): v for k, v in state["common"].items()}
    table.placements = {int(k): v for k, v in state["placements"].items()}
    table.degrees = {int(k): v for k, v in state["degrees"].items()}
    table.active_blocks = state["active_blocks"]
    table.total_assignments = state["total_assignments"]
    table.entities_placed = state["entities_placed"]
    table.edge_count = state["edge_count"]


def capture_state(
    store: StreamingEntityStore,
    index: IncrementalBlockIndex,
    pairs: DeltaPairTable,
    view: IncrementalProcessedView | None = None,
    view_pairs: SurvivorPairTable | None = None,
) -> dict:
    """The full serializable state of the streaming component stack.

    JSON-safe and canonical (sets are sorted), so two captures compare
    with ``==`` — the bit-identity check the crash-recovery gate uses —
    and a capture rebuilt by :func:`restore_components` captures back
    equal.  Derived caches (snapshots, vectors) are intentionally
    excluded: they are recomputed on demand and never observable.
    """
    state: dict = {
        "store": {
            "name": store.name,
            "version": store.version,
            "interner": store.interner.uris(),
            "collections": [
                {
                    "name": collection.name,
                    "interner": collection.interner.uris(),
                    "live": [
                        _describe(description) for description in collection
                    ],
                }
                for collection in store.collections
            ],
        },
        "index": {
            "postings": {
                key: [sides[0].tolist(), sides[1].tolist()]
                for key, sides in index._postings.items()
            },
            "unsorted": dict(index._unsorted),
            "resort_count": index.resort_count,
            "key_mask": {
                str(entity): dict(masks)
                for entity, masks in index._key_mask.items()
            },
            "side_seq": [
                {str(entity): rank for entity, rank in seq.items()}
                for seq in index._side_seq
            ],
            "overlap": dict(index._overlap),
        },
        "pairs": _capture_pairs(pairs),
        "view": None,
        "view_pairs": None,
    }
    if view is not None:
        state["view"] = {
            "purging": {
                "max_cardinality": view.purging.max_cardinality,
                "smoothing": view.purging.smoothing,
            },
            "filtering": {"ratio": view.filtering.ratio},
            "reconcile_every": view.reconcile_every,
            "reconcile_count": view.reconcile_count,
            "pending_keys": list(view._pending_keys),
            "pending_entities": [str(e) for e in view._pending_entities],
            "card": {key: list(entry) for key, entry in view._card.items()},
            "hist": {
                str(level): [assigns, sorted(keys)]
                for level, (assigns, keys) in view._hist.items()
            },
            "threshold": view._threshold,
            "threshold_dirty": view._threshold_dirty,
            "retained": {
                str(entity): sorted(keys)
                for entity, keys in view._retained.items()
            },
            "members": {
                key: [sorted(sides[0]), sorted(sides[1])]
                for key, sides in view._members.items()
            },
            "present": sorted(view._present),
            "entity_keys": {
                str(entity): dict(masks)
                for entity, masks in view._entity_keys.items()
            },
            "reconciled_version": view._reconciled_version,
        }
    if view_pairs is not None:
        state["view_pairs"] = _capture_pairs(view_pairs)
    return state


def restore_components(
    state: dict, blocker: Blocker | None = None
) -> tuple[
    StreamingEntityStore,
    IncrementalBlockIndex,
    DeltaPairTable,
    IncrementalProcessedView | None,
    SurvivorPairTable | None,
]:
    """Rebuild the component stack from a :func:`capture_state` dict.

    The inverse of :func:`capture_state`: no events are replayed — every
    structure is deserialized field by field, so restoring costs O(state
    size) regardless of how long the history that produced it was.
    """
    s = state["store"]
    store = StreamingEntityStore(
        sources=[c["name"] for c in s["collections"]], name=s["name"]
    )
    for uri in s["interner"]:
        store.interner.intern(uri)
    for collection, captured in zip(store.collections, s["collections"]):
        for uri in captured["interner"]:
            collection.interner.intern(uri)
        for payload in captured["live"]:
            collection._by_uri[payload[0]] = _restore_description(payload)
    store.version = s["version"]

    index = IncrementalBlockIndex(store, blocker)
    i = state["index"]
    index._postings = {
        key: (
            array(_POSTING_TYPECODE, sides[0]),
            array(_POSTING_TYPECODE, sides[1]),
        )
        for key, sides in i["postings"].items()
    }
    index._unsorted = dict(i["unsorted"])
    index.resort_count = i["resort_count"]
    index._key_mask = {
        int(entity): dict(masks) for entity, masks in i["key_mask"].items()
    }
    index._side_seq = [
        {int(entity): rank for entity, rank in seq.items()}
        for seq in i["side_seq"]
    ]
    index._overlap = dict(i["overlap"])

    pairs = DeltaPairTable(index)
    _restore_pairs(pairs, state["pairs"])

    view = None
    view_pairs = None
    if state.get("view") is not None:
        v = state["view"]
        view = IncrementalProcessedView(
            index,
            BlockPurging(
                max_cardinality=v["purging"]["max_cardinality"],
                smoothing=v["purging"]["smoothing"],
            ),
            BlockFiltering(ratio=v["filtering"]["ratio"]),
            reconcile_every=v["reconcile_every"],
        )
        view.reconcile_count = v["reconcile_count"]
        view._pending_keys = dict.fromkeys(v["pending_keys"])
        view._pending_entities = dict.fromkeys(
            int(entity) for entity in v["pending_entities"]
        )
        view._card = {key: tuple(entry) for key, entry in v["card"].items()}
        view._hist = {
            int(level): [assigns, set(keys)]
            for level, (assigns, keys) in v["hist"].items()
        }
        view._threshold = v["threshold"]
        view._threshold_dirty = v["threshold_dirty"]
        view._retained = {
            int(entity): frozenset(keys)
            for entity, keys in v["retained"].items()
        }
        view._members = {
            key: (set(sides[0]), set(sides[1]))
            for key, sides in v["members"].items()
        }
        view._present = set(v["present"])
        view._entity_keys = {
            int(entity): dict(masks)
            for entity, masks in v["entity_keys"].items()
        }
        view._reconciled_version = v["reconciled_version"]
        if state.get("view_pairs") is not None:
            view_pairs = SurvivorPairTable(view)
            _restore_pairs(view_pairs, state["view_pairs"])
    return store, index, pairs, view, view_pairs


# -- snapshots ---------------------------------------------------------------


def _snapshot_path(directory: str, lsn: int) -> str:
    return os.path.join(
        directory, f"{_SNAPSHOT_PREFIX}{lsn:012d}{_SNAPSHOT_SUFFIX}"
    )


def write_snapshot(
    directory: str,
    lsn: int,
    state: dict,
    config: dict,
    files: OsFiles | None = None,
) -> str:
    """Atomically write a CRC-framed snapshot at *lsn*; returns its path.

    The document lands in a ``.tmp`` file first and is renamed into
    place only when complete — a crash mid-write leaves a temp file
    recovery ignores, never a half-readable snapshot.
    """
    files = files or OsFiles()
    body = json.dumps(
        {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "lsn": lsn,
            "config": config,
            "state": state,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    payload = b"%08x %s" % (zlib.crc32(body), body)
    path = _snapshot_path(directory, lsn)
    temp = path + ".tmp"
    files.write_bytes(temp, payload)
    files.replace(temp, path)
    return path


def load_snapshot(path: str) -> dict | None:
    """Parse + CRC-verify one snapshot file; None when invalid."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return None
    if len(raw) < 10 or raw[8:9] != b" ":
        return None
    body = raw[9:]
    try:
        if zlib.crc32(body) != int(raw[:8], 16):
            return None
        document = json.loads(body)
    except ValueError:
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format") != SNAPSHOT_FORMAT:
        return None
    if document.get("version") != SNAPSHOT_VERSION:
        return None
    return document


def list_snapshots(directory: str) -> list[str]:
    """Snapshot file paths in the directory, newest (highest LSN) first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    names = [
        name
        for name in names
        if name.startswith(_SNAPSHOT_PREFIX)
        and name.endswith(_SNAPSHOT_SUFFIX)
    ]
    return [os.path.join(directory, name) for name in sorted(names, reverse=True)]


# -- the durability controller ----------------------------------------------


class Durability:
    """Write-ahead logging + periodic snapshots for one component stack.

    Args:
        directory: where the WAL and snapshots live (created if absent).
        fsync_every: WAL fsync batching (1 = durable per event).
        snapshot_every: snapshot after this many WAL records since the
            last snapshot; None disables periodic snapshots (the WAL
            alone still recovers, by replaying the full history).
        keep_snapshots: retained snapshot generations (older pruned).
        files: file-operation layer (fault-injection seam).

    Attach to a live stack with :meth:`bind`; from then on the store
    logs every insert/delete through :meth:`log_insert` /
    :meth:`log_delete` *before* applying it, and offers
    :meth:`maybe_snapshot` after each event has fully propagated.
    """

    def __init__(
        self,
        directory: str,
        fsync_every: int = 1,
        snapshot_every: int | None = None,
        keep_snapshots: int = 2,
        files: OsFiles | None = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1 (or None)")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.files = files or OsFiles()
        self.wal = WriteAheadLog(
            os.path.join(directory, WAL_NAME), fsync_every, self.files
        )
        self.snapshot_every = snapshot_every
        self.keep_snapshots = max(keep_snapshots, 1)
        self.snapshots_written = 0
        self.last_snapshot_lsn = 0
        for path in list_snapshots(directory):
            document = load_snapshot(path)
            if document is not None:
                self.last_snapshot_lsn = document["lsn"]
                break
        self._components = None
        self._obs = DISABLED

    @property
    def obs(self) -> Observability:
        """Observability handle; assigning propagates it into the WAL."""
        return self._obs

    @obs.setter
    def obs(self, value: Observability) -> None:
        self._obs = value if value is not None else DISABLED
        self.wal.obs = self._obs

    def bind(
        self,
        store: StreamingEntityStore,
        index: IncrementalBlockIndex | None = None,
        pairs: DeltaPairTable | None = None,
        view: IncrementalProcessedView | None = None,
        view_pairs: SurvivorPairTable | None = None,
    ) -> None:
        """Wire the controller to a live stack and claim the store.

        Writes the versioned WAL header on a fresh log.  The store must
        be empty or recovered from this directory — binding a populated
        store to a fresh WAL would leave its history unlogged.
        """
        self._components = (store, index, pairs, view, view_pairs)
        store.durability = self
        if self.wal.header is None:
            config: dict = {
                "name": store.name,
                "sources": [c.name for c in store.collections],
                "view": None,
            }
            if view is not None:
                config["view"] = {
                    "max_cardinality": view.purging.max_cardinality,
                    "smoothing": view.purging.smoothing,
                    "ratio": view.filtering.ratio,
                    "reconcile_every": view.reconcile_every,
                }
            self.wal.write_header(config)
        if view is not None:
            view.subscribe_apply(self.log_apply)

    # -- event logging (called by the store, write-ahead) --------------------

    def log_insert(self, description: EntityDescription, source: int) -> int:
        return self.wal.append("insert", [_describe(description), source])

    def log_delete(self, uri: str) -> int:
        return self.wal.append("delete", [uri])

    def log_reconcile(self) -> int:
        """Log a processed-view reconciliation point.

        Reconciles mutate the view's survivor state, so recovery replays
        them at the same event positions to land on bit-identical view
        bookkeeping without re-running any query.  Written ahead like
        every record — the caller runs ``view.reconcile()`` after this
        returns, then offers :meth:`maybe_snapshot` (a snapshot at this
        LSN must already contain the reconcile's effects).
        """
        return self.wal.append("reconcile", [])

    def log_apply(self) -> int:
        """Log a processed-view pending-buffer drain.

        The approximate survivor state depends on *when* the buffer
        drains relative to the insert stream (a view read triggers it),
        so recovery replays drains at their original positions to land
        on bit-identical approximate state.
        """
        return self.wal.append("apply", [])

    # -- snapshots -----------------------------------------------------------

    def maybe_snapshot(self) -> str | None:
        """Snapshot when the cadence knob says the WAL suffix is long enough."""
        if self.snapshot_every is None or self._components is None:
            return None
        if self.wal.last_lsn - self.last_snapshot_lsn < self.snapshot_every:
            return None
        return self.snapshot_now()

    def snapshot_now(self) -> str:
        """Capture + atomically write a snapshot at the current LSN."""
        if self._components is None:
            raise ValueError("bind() the durability controller first")
        store, index, pairs, view, view_pairs = self._components
        obs = self._obs
        with obs.span("durability.snapshot", lsn=self.wal.last_lsn):
            with obs.timed(
                metric="repro.durability.snapshot.capture.seconds"
            ):
                state = capture_state(store, index, pairs, view, view_pairs)
            path = write_snapshot(
                self.directory,
                self.wal.last_lsn,
                state,
                dict(self.wal.header or {}),
                self.files,
            )
        obs.count("repro.durability.snapshot.count")
        self.last_snapshot_lsn = self.wal.last_lsn
        self.snapshots_written += 1
        self._prune_snapshots()
        return path

    def _prune_snapshots(self) -> None:
        for path in list_snapshots(self.directory)[self.keep_snapshots:]:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: sync + close the WAL (recovery-ready)."""
        self.wal.close()

    def abandon(self) -> None:
        """Simulated crash: drop the WAL handle without syncing."""
        self.wal.abandon()


# -- recovery ----------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """How a :func:`recover` call rebuilt the state."""

    #: LSN of the snapshot restored (0 = recovered from the WAL alone)
    snapshot_lsn: int
    #: last valid WAL record (the recovered state reflects LSNs <= this)
    last_lsn: int
    #: WAL records re-applied (strictly fewer than the history when a
    #: snapshot was restored)
    replayed_events: int
    #: total event records in the WAL (the full history length)
    wal_records: int
    #: path of the snapshot used, if any
    snapshot_path: str | None


@dataclass(frozen=True)
class RecoveryResult:
    """The rebuilt component stack plus the recovery accounting."""

    store: StreamingEntityStore
    index: IncrementalBlockIndex
    pairs: DeltaPairTable
    view: IncrementalProcessedView | None
    view_pairs: SurvivorPairTable | None
    report: RecoveryReport


def _fresh_components(config: dict, blocker: Blocker | None):
    store = StreamingEntityStore(
        sources=config.get("sources", ("stream",)),
        name=config.get("name", "stream"),
    )
    index = IncrementalBlockIndex(store, blocker)
    pairs = DeltaPairTable(index)
    view = None
    view_pairs = None
    view_config = config.get("view")
    if view_config is not None:
        view = IncrementalProcessedView(
            index,
            BlockPurging(
                max_cardinality=view_config["max_cardinality"],
                smoothing=view_config["smoothing"],
            ),
            BlockFiltering(ratio=view_config["ratio"]),
            reconcile_every=view_config["reconcile_every"],
        )
        view_pairs = SurvivorPairTable(view)
    return store, index, pairs, view, view_pairs


def recover(
    directory: str,
    blocker: Blocker | None = None,
    files: OsFiles | None = None,
    from_scratch: bool = False,
    obs: Observability | None = None,
) -> RecoveryResult:
    """Rebuild the streaming state from *directory*'s snapshot + WAL.

    Picks the newest snapshot that is CRC-valid **and** not ahead of the
    (torn-tail-truncated) WAL, restores it by deserialization, then
    replays only the WAL records past the snapshot LSN — strictly fewer
    events than the full history whenever a snapshot was restored.
    ``from_scratch=True`` ignores snapshots and replays the whole WAL
    (the independent reference the fault-injection harness diffs
    against).

    Raises:
        FileNotFoundError: when the directory holds no usable WAL.
    """
    obs = obs if obs is not None else DISABLED
    wal = WriteAheadLog(os.path.join(directory, WAL_NAME), 0, files)
    if wal.header is None:
        raise FileNotFoundError(f"no usable write-ahead log in {directory!r}")

    with obs.span("durability.recover") as recover_span:
        snapshot_lsn = 0
        snapshot_path = None
        components = None
        if not from_scratch:
            for path in list_snapshots(directory):
                document = load_snapshot(path)
                if document is None or document["lsn"] > wal.last_lsn:
                    continue
                with obs.timed(
                    metric="repro.durability.snapshot.restore.seconds"
                ):
                    components = restore_components(document["state"], blocker)
                snapshot_lsn = document["lsn"]
                snapshot_path = path
                break
        if components is None:
            components = _fresh_components(wal.header, blocker)
        store, index, pairs, view, view_pairs = components

        replayed = 0
        for _lsn, kind, payload in wal.records(after_lsn=snapshot_lsn):
            if kind == "insert":
                store.insert(_restore_description(payload[0]), payload[1])
            elif kind == "delete":
                store.delete(payload[0])
            elif kind == "reconcile":
                if view is not None:
                    view.reconcile()
            elif kind == "apply":
                if view is not None:
                    view._apply_pending()
            else:
                raise ValueError(f"unknown WAL record kind {kind!r}")
            replayed += 1
        obs.count("repro.durability.recover.replayed.count", replayed)
        recover_span.set(snapshot_lsn=snapshot_lsn, replayed=replayed)
    wal.close()
    return RecoveryResult(
        store=store,
        index=index,
        pairs=pairs,
        view=view,
        view_pairs=view_pairs,
        report=RecoveryReport(
            snapshot_lsn=snapshot_lsn,
            last_lsn=wal.last_lsn,
            replayed_events=replayed,
            wal_records=wal.record_count,
            snapshot_path=snapshot_path,
        ),
    )
