"""The incremental inverted blocking index.

The batch blocker groups a frozen corpus by key in one pass; this index
maintains the same grouping under inserts.  Each insert computes the
description's blocking keys (token keys by default; pass a q-grams or
composite blocker for other key spaces), appends the entity to the
touched posting lists, and emits the **delta** — new comparison cells,
placements and block activations — to attached consumers (the
:class:`~repro.stream.pairs.DeltaPairTable`).

Per-insert work is proportional to the delta the entity generates (its
keys plus the co-members it newly pairs with), never to the corpus.
Global concerns are deferred, not dropped:

* posting lists are kept in per-source arrival order; an entity that
  gains a key *late* (attribute merge) is re-sorted **lazily, only for
  the touched key**, on the next snapshot;
* purging/filtering thresholds are global functions of the whole
  collection, so they are enforced lazily at :meth:`snapshot_processed`
  time (and, per-query, via the resolver's selectivity caps) rather
  than on every insert.

:meth:`snapshot` materializes a
:class:`~repro.blocking.block.BlockCollection` **bit-identical** to
``blocker.build(...)`` over the store's final collections — same keys,
same member order, same primed id views.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.blocking.base import Blocker
from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner
from repro.stream.store import StreamingEntityStore


#: typecode of the posting-list arrays (signed 64-bit entity ids)
_POSTING_TYPECODE = "q"


def _posting_pair() -> tuple[array, array]:
    """A fresh (side-0, side-1) pair of array-backed posting lists.

    Postings are contiguous C int64 buffers (``array('q')``) with
    amortized-doubling appends — 8 bytes per entry instead of a pointer
    plus a boxed int, and iteration/`.tolist()` run at C speed.  Dirty
    stores use side 0 only.
    """
    return (array(_POSTING_TYPECODE), array(_POSTING_TYPECODE))


class DeltaConsumer:
    """Interface for delta-maintained structures attached to the index.

    The index calls these hooks *during* each insert or delete, in a
    fixed order: cells first (so pair statistics see the partner set as
    it was before the entity joined or after it left), then
    placements/activations.  The ``*_removed``/``*_deactivated`` hooks
    mirror the insert hooks exactly — a delete emits the negation of
    the deltas the corresponding inserts emitted.
    """

    __slots__ = ()

    def on_cell(self, id_a: int, id_b: int) -> None:
        """One new comparison cell between two distinct entities."""

    def on_placement(self, entity_id: int) -> None:
        """One new placement of an entity in a comparison-bearing block."""

    def on_block_activated(self, key: str) -> None:
        """A block crossed from singleton/one-sided to comparison-bearing."""

    def on_cell_removed(self, id_a: int, id_b: int) -> None:
        """One comparison cell between two distinct entities vanished."""

    def on_placement_removed(self, entity_id: int) -> None:
        """One placement in a comparison-bearing block vanished."""

    def on_block_deactivated(self, key: str) -> None:
        """A block fell back below the comparison-bearing floor."""

    def on_key_update(self, key: str, entity_id: int, source: int) -> None:
        """The entity's posting under *key* on side *source* changed.

        Fired once per (event, key, side) **after** the posting append
        or removal and the cell/placement hooks, so a consumer reading
        the index back sees the post-event state of the key.  This is
        the hook cardinality-sensitive maintainers (the incremental
        processed view) subscribe to; pair-statistics consumers can
        ignore it.
        """


class IncrementalBlockIndex(DeltaConsumer):
    """Mutable inverted index: blocking key → per-source posting lists.

    Args:
        store: the streaming store to index; the index subscribes itself
            and reflects every insert from then on.
        blocker: key extractor (default: token blocking, the paper's
            stage-1 choice).  Any :class:`~repro.blocking.base.Blocker`
            whose ``keys_for`` grows monotonically under attribute
            merges is supported (token, q-grams, prefix-infix-suffix,
            composites thereof).
    """

    def __init__(
        self,
        store: StreamingEntityStore,
        blocker: Blocker | None = None,
    ) -> None:
        self.store = store
        self.blocker = blocker or TokenBlocking()
        self.two_sided = store.clean_clean
        #: key → (side-0 ids, side-1 ids) array-backed posting lists;
        #: dirty stores use side 0 only
        self._postings: dict[str, tuple[array, array]] = {}
        #: key → bitmask of sides needing a lazy re-sort (merge
        #: stragglers); cleared per side once that side is sorted, so a
        #: snapshot never re-sorts a key no straggler touched
        self._unsorted: dict[str, int] = {}
        #: posting-list sorts performed so far (observability: the
        #: no-redundant-sorts property test reads this)
        self.resort_count = 0
        #: entity id → {key: side bitmask}
        self._key_mask: dict[int, dict[str, int]] = {}
        #: per-source arrival rank of each entity id
        self._side_seq: list[dict[int, int]] = [{} for _ in store.collections]
        #: key → number of ids present on both sides (bipartite overlap)
        self._overlap: dict[str, int] = {}
        self._consumers: list[DeltaConsumer] = []
        #: snapshot cache: "raw" or ("processed", purge sig, filter sig)
        #: → (store version, collection); cleared on every insert
        self._snapshots: dict[object, tuple[int, BlockCollection]] = {}
        #: key → (Block, side-0 store ids, side-1 store ids | None,
        #: cardinality) reused across snapshots until the key is touched
        self._block_cache: dict[
            str, tuple[Block, list[int], list[int] | None, int]
        ] = {}
        store.subscribe(self._on_insert)
        store.subscribe_delete(self._on_delete)

    # -- wiring --------------------------------------------------------------

    def attach(self, consumer: DeltaConsumer) -> None:
        """Attach a delta consumer (no replay: attach before inserting)."""
        self._consumers.append(consumer)

    def replay_store(self) -> None:
        """Index everything already in the store (attach consumers first).

        Idempotent: descriptions whose keys are already posted are
        skipped by the per-(entity, side, key) guard, so replaying after
        live inserts cannot double-count.  Called by the resolver when
        it wires onto a non-empty store.
        """
        store = self.store
        for source, collection in enumerate(store.collections):
            for description in collection:
                self._on_insert(
                    description,
                    source,
                    store.interner.id_of(description.uri),
                    False,
                )

    # -- insert path ---------------------------------------------------------

    def _on_insert(
        self,
        description: EntityDescription,
        source: int,
        entity_id: int,
        was_present: bool,
    ) -> None:
        seq = self._side_seq[source]
        if entity_id not in seq:
            seq[entity_id] = len(seq)
        my_seq = seq[entity_id]
        mask = self._key_mask.setdefault(entity_id, {})
        bit = 1 << source
        self._snapshots.clear()
        consumers = self._consumers
        for key in self.blocker.keys_for(description):
            if mask.get(key, 0) & bit:
                continue  # already posted on this side
            self._block_cache.pop(key, None)
            sides = self._postings.get(key)
            if sides is None:
                sides = _posting_pair()
                self._postings[key] = sides
            side = sides[source]
            if side and seq[side[-1]] > my_seq:
                # A merge granted this key after later arrivals claimed
                # it; ordering is restored lazily at snapshot time.
                self._unsorted[key] = self._unsorted.get(key, 0) | bit
            had_mask = mask.get(key, 0)
            mask[key] = had_mask | bit
            if had_mask:
                self._overlap[key] = self._overlap.get(key, 0) + 1

            if self.two_sided:
                other = sides[1 - source]
                was_active = bool(side) and bool(other)
                side.append(entity_id)
                for partner in other:
                    if partner != entity_id:
                        for consumer in consumers:
                            consumer.on_cell(entity_id, partner)
                if not was_active and side and other:
                    # The block just became comparison-bearing: every
                    # member (this one included) gains its placement now.
                    for consumer in consumers:
                        consumer.on_block_activated(key)
                        for member in sides[0]:
                            consumer.on_placement(member)
                        for member in sides[1]:
                            consumer.on_placement(member)
                elif was_active:
                    for consumer in consumers:
                        consumer.on_placement(entity_id)
            else:
                was_active = len(side) >= 2
                for partner in side:
                    for consumer in consumers:
                        consumer.on_cell(entity_id, partner)
                side.append(entity_id)
                if len(side) == 2:
                    for consumer in consumers:
                        consumer.on_block_activated(key)
                        consumer.on_placement(side[0])
                        consumer.on_placement(side[1])
                elif was_active:
                    for consumer in consumers:
                        consumer.on_placement(entity_id)
            for consumer in consumers:
                consumer.on_key_update(key, entity_id, source)

    # -- delete path ---------------------------------------------------------

    def _on_delete(self, uri: str, source: int, entity_id: int) -> None:
        """Shed the entity's side-*source* postings, emitting removal deltas.

        The mirror of :meth:`_on_insert`: for every key the entity held
        on this side, the cells it contributed vanish first, then its
        placement (or the whole block's placements, when the removal
        drops the block below the comparison-bearing floor), and finally
        ``on_key_update`` fires so cardinality-sensitive consumers
        re-read the post-delete state.  The per-source arrival rank is
        **kept** — a re-inserted URI regains its original position, so
        snapshots stay bit-identical to a batch build over the final
        live corpus.
        """
        mask = self._key_mask.get(entity_id)
        if mask is None:
            return
        bit = 1 << source
        touched = [key for key, key_mask in mask.items() if key_mask & bit]
        if not touched:
            return
        self._snapshots.clear()
        consumers = self._consumers
        for key in touched:
            self._block_cache.pop(key, None)
            sides = self._postings[key]
            side = sides[source]
            remaining_mask = mask[key] & ~bit
            if remaining_mask:
                mask[key] = remaining_mask
                # The entity no longer sits on both sides: one overlap
                # unit (added when the second side was claimed) unwinds.
                overlap = self._overlap.get(key, 0) - 1
                if overlap:
                    self._overlap[key] = overlap
                else:
                    self._overlap.pop(key, None)
            else:
                del mask[key]

            if self.two_sided:
                other = sides[1 - source]
                was_active = bool(other)  # side holds the entity, so nonempty
                side.remove(entity_id)
                for partner in other:
                    if partner != entity_id:
                        for consumer in consumers:
                            consumer.on_cell_removed(entity_id, partner)
                if was_active and not (side and other):
                    # The block just lost comparison-bearing status:
                    # every member (this one included) loses its
                    # placement now — the negation of activation.
                    for consumer in consumers:
                        consumer.on_placement_removed(entity_id)
                        for member in sides[0]:
                            consumer.on_placement_removed(member)
                        for member in sides[1]:
                            consumer.on_placement_removed(member)
                        consumer.on_block_deactivated(key)
                elif was_active:
                    for consumer in consumers:
                        consumer.on_placement_removed(entity_id)
            else:
                side.remove(entity_id)
                for partner in side:
                    for consumer in consumers:
                        consumer.on_cell_removed(entity_id, partner)
                if len(side) == 1:
                    for consumer in consumers:
                        consumer.on_placement_removed(entity_id)
                        consumer.on_placement_removed(side[0])
                        consumer.on_block_deactivated(key)
                elif len(side) >= 2:
                    for consumer in consumers:
                        consumer.on_placement_removed(entity_id)

            if not sides[0] and not sides[1]:
                del self._postings[key]
                self._unsorted.pop(key, None)
                self._overlap.pop(key, None)
            for consumer in consumers:
                consumer.on_key_update(key, entity_id, source)
        if not mask:
            del self._key_mask[entity_id]

    # -- interrogation -------------------------------------------------------

    def __len__(self) -> int:
        """Number of keys with at least one posting (active or not)."""
        return len(self._postings)

    def keys_of(self, entity_id: int) -> dict[str, int]:
        """Key → side-bitmask map of *entity_id* (live; do not mutate)."""
        return self._key_mask.get(entity_id, {})

    def entity_ids(self) -> list[int]:
        """Ids of every entity posted under at least one key."""
        return list(self._key_mask)

    def arrival_rank(self, entity_id: int, source: int) -> int:
        """Per-source arrival rank of the entity (the snapshot sort key)."""
        return self._side_seq[source][entity_id]

    def postings(self, key: str) -> tuple[array, array]:
        """The live posting lists of *key* (empty arrays when absent).

        Returned values are the index's own int64 arrays — iterate or
        copy, do not mutate.
        """
        return self._postings.get(key) or _posting_pair()

    def members_of(self, key: str) -> int:
        """Total postings of *key* across sides."""
        sides = self._postings.get(key)
        if sides is None:
            return 0
        return len(sides[0]) + len(sides[1])

    def is_active(self, key: str) -> bool:
        """True when *key*'s block would survive ``drop_singletons``."""
        sides = self._postings.get(key)
        if sides is None:
            return False
        if self.two_sided:
            return bool(sides[0]) and bool(sides[1])
        return len(sides[0]) >= 2

    def cardinality_of(self, key: str) -> int:
        """Comparisons the key's block implies right now (0 when absent).

        Matches :meth:`repro.blocking.block.Block.cardinality` — the
        bipartite product is corrected by the cross-side overlap.
        """
        sides = self._postings.get(key)
        if sides is None:
            return 0
        if self.two_sided:
            if not sides[0] or not sides[1]:
                return 0
            return len(sides[0]) * len(sides[1]) - self._overlap.get(key, 0)
        n = len(sides[0])
        return n * (n - 1) // 2 if n >= 2 else 0

    def cells_between(self, key: str, id_a: int, id_b: int) -> int:
        """Comparison cells of the (distinct) pair inside *key*'s block.

        0, 1 — or 2 for bipartite blocks holding both entities on both
        sides, matching the repetition count the batch enumeration
        yields.
        """
        if id_a == id_b:
            return 0
        mask_a = self._key_mask.get(id_a, {}).get(key, 0)
        mask_b = self._key_mask.get(id_b, {}).get(key, 0)
        if not mask_a or not mask_b:
            return 0
        if not self.two_sided:
            return 1
        return int(bool(mask_a & 1) and bool(mask_b & 2)) + int(
            bool(mask_b & 1) and bool(mask_a & 2)
        )

    def partners_of(
        self,
        entity_id: int,
        max_key_cardinality: int | None = None,
        key_ratio: float | None = None,
    ) -> list[int]:
        """Candidate co-occurring entities of *entity_id*, id-deduplicated.

        The lazy per-query counterparts of block post-processing bound
        the work: *max_key_cardinality* skips oversized (stop-token-like)
        blocks the way purging would, and *key_ratio* keeps only that
        fraction of the entity's most selective keys the way filtering
        keeps an entity's smallest blocks.  Both default to off.
        """
        keys = self._key_mask.get(entity_id, {})
        selected: Iterator[str] | list[str] = list(keys)
        if key_ratio is not None:
            limit = max(1, int(key_ratio * len(keys) + 0.5))
            selected = sorted(
                selected, key=lambda key: (self.cardinality_of(key), key)
            )[:limit]
        seen: dict[int, None] = {}
        for key in selected:
            if not self.is_active(key):
                continue
            if (
                max_key_cardinality is not None
                and self.cardinality_of(key) > max_key_cardinality
            ):
                continue
            mask = keys[key]
            sides = self._postings[key]
            if not self.two_sided:
                for member in sides[0]:
                    if member != entity_id:
                        seen.setdefault(member)
            else:
                # Valid partners sit on the opposite side of any side the
                # entity occupies.
                if mask & 1:
                    for member in sides[1]:
                        if member != entity_id:
                            seen.setdefault(member)
                if mask & 2:
                    for member in sides[0]:
                        if member != entity_id:
                            seen.setdefault(member)
        return list(seen)

    # -- snapshots -----------------------------------------------------------

    def _resort_lazy(self) -> None:
        """Restore arrival order on straggler-touched posting sides.

        Only the sides a merge straggler actually disturbed are sorted;
        each marker is cleared once its side is sorted, so repeated
        snapshots never repeat the work (``resort_count`` counts real
        sorts for the property test asserting exactly that).
        """
        if not self._unsorted:
            return
        for key, stale in self._unsorted.items():
            sides = self._postings.get(key)
            if sides is None:
                continue
            self._block_cache.pop(key, None)
            for source, seq in enumerate(self._side_seq):
                if not stale & (1 << source):
                    continue
                side = sides[source]
                side[:] = array(
                    _POSTING_TYPECODE, sorted(side, key=seq.__getitem__)
                )
                self.resort_count += 1
        self._unsorted.clear()

    def _block_for(
        self, key: str, sides: tuple[array, array], uris: list[str]
    ) -> tuple[Block, list[int], list[int] | None, int]:
        """The key's (block, store ids, cardinality) entry, cache-reused.

        Untouched keys keep their entry across snapshots — URI
        translation and cardinality run again only for keys that gained
        members (or were re-sorted) since the last snapshot.
        """
        entry = self._block_cache.get(key)
        if entry is None:
            ids1 = sides[0].tolist()
            if self.two_sided:
                ids2 = sides[1].tolist()
                block = Block(key, [uris[i] for i in ids1], [uris[i] for i in ids2])
            else:
                ids2 = None
                block = Block(key, [uris[i] for i in ids1])
            entry = (block, ids1, ids2, block.cardinality())
            self._block_cache[key] = entry
        return entry

    def snapshot(self) -> BlockCollection:
        """The current blocks as a batch-identical ``BlockCollection``.

        Bit-identical to ``self.blocker.build(*store.collections)`` over
        the store's present state: sorted keys, members in per-source
        arrival order, singletons dropped, id views primed in
        first-placement order.  Cached until the next insert; per-key
        blocks survive across snapshots until their key is touched, and
        the primed id views are remapped with integer lookups instead of
        re-interning a URI per placement.
        """
        cached = self._snapshots.get("raw")
        if cached is not None and cached[0] == self.store.version:
            return cached[1]
        self._resort_lazy()
        uris = self.store.interner.uri_table()
        names = [collection.name for collection in self.store.collections]
        if self.two_sided:
            name = f"{self.blocker.name}({names[0]},{names[1]})"
        else:
            name = f"{self.blocker.name}({names[0]})"
        blocks = BlockCollection(name=name)
        # Store id → snapshot id, assigned in first-placement order over
        # the key-sorted traversal — the same dense ids the batch blocker
        # primes, recovered without hashing a URI string per placement.
        snap_ids: dict[int, int] = {}
        ordered_uris: list[str] = []

        def remap(store_ids: list[int]) -> list[int]:
            out = []
            for store_id in store_ids:
                snapped = snap_ids.get(store_id)
                if snapped is None:
                    snapped = len(ordered_uris)
                    snap_ids[store_id] = snapped
                    ordered_uris.append(uris[store_id])
                out.append(snapped)
            return out

        id_blocks: list[tuple[list[int], list[int] | None, int]] = []
        for key in sorted(self._postings):
            sides = self._postings[key]
            if self.two_sided:
                if not sides[0] or not sides[1]:
                    continue
            elif len(sides[0]) < 2:
                continue
            block, ids1, ids2, cardinality = self._block_for(key, sides, uris)
            blocks.add(block)
            # Side 1 before side 2 — first-placement id order, matching
            # what the batch blocker primes.
            id_blocks.append(
                (remap(ids1), remap(ids2) if ids2 is not None else None, cardinality)
            )
        blocks.prime_id_views(EntityInterner(ordered_uris), id_blocks)
        self._snapshots["raw"] = (self.store.version, blocks)
        return blocks

    def snapshot_processed(
        self,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
    ) -> BlockCollection:
        """Post-processed snapshot: the lazily-enforced global thresholds.

        Purging and filtering thresholds depend on the *whole* block-size
        distribution, so exact enforcement per insert is impossible; they
        are applied here, on demand, over the raw snapshot — which is
        precisely what the batch pipeline's ``MinoanER.block()`` does,
        keeping the result bit-identical.  Cached until the next insert,
        **per operator parameterization**: the cache is keyed by the
        operators' ``signature()`` tuples, so non-default purging or
        filtering arguments get their own correctly-invalidated entry
        instead of a recompute (or, worse, a stale default-keyed hit).
        """
        purging = purging or BlockPurging()
        filtering = filtering or BlockFiltering()
        cache_key = ("processed", purging.signature(), filtering.signature())
        cached = self._snapshots.get(cache_key)
        if cached is not None and cached[0] == self.store.version:
            return cached[1]
        processed = filtering.process(purging.process(self.snapshot()))
        self._snapshots[cache_key] = (self.store.version, processed)
        return processed
