"""Streaming entity resolution.

The batch pipeline freezes its inputs: blocks, the pair table and the
blocking graph are all built once from a finished
:class:`~repro.model.collection.EntityCollection`, so a single new
description forces a full rebuild.  This package makes the same
structures *maintainable under inserts*:

* :class:`~repro.stream.store.StreamingEntityStore` — append-only entity
  store accepting descriptions one at a time or in micro-batches;
* :class:`~repro.stream.index.IncrementalBlockIndex` — a mutable
  inverted blocking index whose posting lists are updated per insert
  instead of re-running the blocker;
* :class:`~repro.stream.pairs.DeltaPairTable` — packed-pair
  ``(common, arcs)`` statistics maintained from the delta pairs each
  insert generates, keeping all six weighting schemes evaluable per
  pair without a global rebuild;
* :class:`~repro.stream.processed_view.IncrementalProcessedView` — the
  purge/filter-surviving block set maintained under inserts (exact
  histogram-derived purging threshold, per-touched-entity filtering,
  periodic exact reconciliation), with
  :class:`~repro.stream.processed_view.SurvivorPairTable` keeping pair
  statistics aligned with the survivors;
* :class:`~repro.stream.resolver.StreamResolver` — query-time
  resolution of one incoming description against the live index, with
  latency accounting;
* :mod:`~repro.stream.workload` — a dbworkload-style driver replaying
  synthetic arrival + query scenarios (including the ``churn`` and
  ``erasure`` deletion regimes);
* :mod:`~repro.stream.durability` — crash safety: a CRC-framed
  write-ahead log, periodic atomic snapshots, and
  :func:`~repro.stream.durability.recover`, which rebuilds the whole
  component stack bit-identical to the uninterrupted run from the
  latest snapshot plus the WAL suffix.

**Equivalence contract:** after ingesting a corpus stream-wise — in any
arrival order, with duplicates merged — the snapshot blocks, the pair
statistics and the pruned edges are *bit-identical* to the batch
pipeline run over the same final corpus.  The streaming layer changes
*when* work happens, never *what* is computed.  Deletions extend the
contract: after retractions the state equals a fresh build over the
surviving corpus minus arrival-rank artifacts (ids and ranks stay
pinned to first arrival so a re-insert converges).
"""

from repro.stream.durability import (
    CrashError,
    CrashyFiles,
    Durability,
    OsFiles,
    RecoveryReport,
    RecoveryResult,
    WriteAheadLog,
    capture_state,
    recover,
    restore_components,
)
from repro.stream.index import IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.processed_view import (
    IncrementalProcessedView,
    ReconcileReport,
    SurvivorPairTable,
)
from repro.stream.resolver import StreamMatch, StreamQueryResult, StreamResolver
from repro.stream.similarity import StreamingSimilarityIndex
from repro.stream.store import StreamingEntityStore
from repro.stream.workload import (
    WorkloadDriver,
    WorkloadEvent,
    WorkloadStats,
    bursty_workload,
    churn_workload,
    erasure_workload,
    skewed_workload,
    uniform_workload,
)

__all__ = [
    "CrashError",
    "CrashyFiles",
    "DeltaPairTable",
    "Durability",
    "IncrementalBlockIndex",
    "IncrementalProcessedView",
    "OsFiles",
    "ReconcileReport",
    "RecoveryReport",
    "RecoveryResult",
    "SurvivorPairTable",
    "StreamMatch",
    "StreamQueryResult",
    "StreamResolver",
    "StreamingEntityStore",
    "StreamingSimilarityIndex",
    "WorkloadDriver",
    "WorkloadEvent",
    "WorkloadStats",
    "WriteAheadLog",
    "bursty_workload",
    "capture_state",
    "churn_workload",
    "erasure_workload",
    "recover",
    "restore_components",
    "skewed_workload",
    "uniform_workload",
]
