"""Incrementally-maintained similarity state for query-time matching.

The batch :class:`~repro.matching.similarity.SimilarityIndex` tokenizes
the whole corpus and freezes IDF at construction — useless under a
stream, where every insert shifts document frequencies.  This index
maintains the cheap global state incrementally (token counts per
description, document frequencies, corpus size) and derives TF-IDF
vectors **lazily for the handful of descriptions a query touches**,
always against the *current* IDF.

It is measure-compatible with the batch index (``cosine``, ``jaccard``,
``weighted_jaccard``, ``cosine_many``, ``__contains__``), so the
existing :class:`~repro.matching.matcher.ThresholdMatcher` — and its
vectorized ``decide_many`` path — work on it unchanged.
"""

from __future__ import annotations

import math
from collections import Counter

try:  # pragma: no cover - exercised through cosine_many's fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.matching.similarity import (
    cosine_many_vectors,
    jaccard,
    weighted_jaccard,
)
from repro.model.description import EntityDescription
from repro.model.tokenizer import Tokenizer
from repro.stream.store import StreamingEntityStore


class StreamingSimilarityIndex:
    """Token/IDF state maintained under inserts.

    Args:
        store: the streaming store to follow; the index subscribes
            itself and reflects every insert (including merges, which
            re-tokenize the merged description).
        tokenizer: shared tokenizer (defaults to the blocking tokenizer
            so "similarity" and "common blocking token" agree).
    """

    def __init__(
        self,
        store: StreamingEntityStore,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
        self._counts: dict[str, Counter] = {}
        self._sets: dict[str, frozenset[str]] = {}
        self._document_frequency: Counter = Counter()
        #: bumped on every change that shifts IDF; versions cached vectors
        self._epoch = 0
        #: uri → (epoch, vector dict, norm); valid only at the same epoch
        self._vector_cache: dict[str, tuple[int, dict[str, float], float]] = {}
        self._token_ids: dict[str, int] = {}
        store.subscribe(self._on_insert, replay=True)
        store.subscribe_delete(self._on_delete)

    def _on_insert(
        self,
        description: EntityDescription,
        source: int,
        entity_id: int,
        was_present: bool,
    ) -> None:
        uri = description.uri
        counts = self.tokenizer.token_counts(description)
        tokens = frozenset(counts)
        previous = self._sets.get(uri)
        if previous is not None:
            if counts == self._counts[uri]:
                return  # pure duplicate: nothing shifted
            for token in previous - tokens:
                self._document_frequency[token] -= 1
        new_tokens = tokens if previous is None else tokens - previous
        self._document_frequency.update(new_tokens)
        self._counts[uri] = counts
        self._sets[uri] = tokens
        self._epoch += 1

    def _on_delete(self, uri: str, source: int, entity_id: int) -> None:
        """Retract the description's tokens and document frequencies.

        The store notifies once per source the URI left; the similarity
        state is per-URI, so only the first notification does work.
        Every deletion shifts IDF, so the epoch bump invalidates all
        cached vectors — stale TF-IDF weights cannot survive a
        retraction.
        """
        tokens = self._sets.pop(uri, None)
        if tokens is None:
            return
        del self._counts[uri]
        self._vector_cache.pop(uri, None)
        df = self._document_frequency
        for token in tokens:
            df[token] -= 1
            if not df[token]:
                del df[token]
        self._epoch += 1

    # -- lookups -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone corpus-state version; bumped when IDF shifts.

        Consumers caching derived scores (e.g. a primed matcher) compare
        epochs to detect staleness.
        """
        return self._epoch

    def __contains__(self, uri: str) -> bool:
        return uri in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def tokens_of(self, uri: str) -> frozenset[str]:
        """Distinct tokens of the description with *uri*.

        Raises:
            KeyError: for unindexed URIs.
        """
        return self._sets[uri]

    def idf(self, token: str) -> float:
        """Smoothed IDF of *token* under the current corpus.

        Same formula as the batch index — ``log((1+N)/(1+df)) + 1`` —
        evaluated against the live document frequencies.
        """
        corpus_size = max(len(self._counts), 1)
        df = self._document_frequency.get(token, 0)
        return math.log((1 + corpus_size) / (1 + df)) + 1.0

    def _vector(self, uri: str) -> tuple[dict[str, float], float]:
        """Current-epoch TF-IDF vector and norm of *uri* (cached)."""
        cached = self._vector_cache.get(uri)
        if cached is not None and cached[0] == self._epoch:
            return cached[1], cached[2]
        corpus_size = max(len(self._counts), 1)
        df = self._document_frequency
        log = math.log
        vector = {
            token: count * (log((1 + corpus_size) / (1 + df[token])) + 1.0)
            for token, count in self._counts[uri].items()
        }
        norm = math.sqrt(sum(w * w for w in vector.values()))
        self._vector_cache[uri] = (self._epoch, vector, norm)
        return vector, norm

    # -- measures ------------------------------------------------------------

    def jaccard(self, uri_a: str, uri_b: str) -> float:
        """Jaccard similarity of two indexed descriptions."""
        return jaccard(self._sets[uri_a], self._sets[uri_b])

    def weighted_jaccard(self, uri_a: str, uri_b: str) -> float:
        """Multiset Jaccard of two indexed descriptions."""
        return weighted_jaccard(self._counts[uri_a], self._counts[uri_b])

    def cosine(self, uri_a: str, uri_b: str) -> float:
        """TF-IDF cosine under the current corpus statistics."""
        vector_a, norm_a = self._vector(uri_a)
        vector_b, norm_b = self._vector(uri_b)
        if not vector_a or not vector_b:
            return 0.0
        get_b = vector_b.get
        dot = sum(w * get_b(t, 0.0) for t, w in vector_a.items())
        if dot == 0.0:
            return 0.0
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)

    def cosine_many(self, left, right):
        """Vectorized pairwise cosine, bit-identical to :meth:`cosine`.

        Typically called with a constant left side (the query) against
        its candidate list; vectors are derived once per URI per call.
        """
        if len(left) != len(right):
            raise ValueError("left and right must have equal length")
        if _np is None:
            return [self.cosine(a, b) for a, b in zip(left, right)]
        count = len(left)
        if count == 0:
            return _np.empty(0, dtype=_np.float64)
        token_ids = self._token_ids
        id_vectors: dict[str, tuple] = {}
        norms: dict[str, float] = {}
        for uri in {*left, *right}:
            vector, norm = self._vector(uri)
            ids = [token_ids.setdefault(token, len(token_ids)) for token in vector]
            id_vectors[uri] = (
                _np.array(ids, dtype=_np.int64),
                _np.fromiter(vector.values(), dtype=_np.float64, count=len(vector)),
            )
            norms[uri] = norm
        norm_products = _np.fromiter(
            (norms[a] * norms[b] for a, b in zip(left, right)),
            _np.float64,
            count,
        )
        return cosine_many_vectors(
            [id_vectors[uri] for uri in left],
            [id_vectors[uri] for uri in right],
            norm_products,
            len(token_ids),
        )
